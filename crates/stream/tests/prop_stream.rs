//! Property tests: delta/snapshot equivalence under arbitrary
//! workloads, through every engine, and across the WAL crash-recovery
//! boundary.
//!
//! The deterministic differential tests pin fixed seeds; these runs
//! draw workload shape (size, distribution, speed, extent, seed) and
//! service knobs from strategies, so the delta-replay invariant is
//! exercised across the parameter space rather than at one point.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use cij_core::{
    BxEngine, ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, PairKey,
    TcEngine,
};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{IngestOutcome, ResultDelta, StreamConfig, StreamService};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, Distribution, MovingObject, Params, UpdateStream};
use proptest::prelude::*;

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(128),
    )
}

fn arb_params() -> impl Strategy<Value = Params> {
    (
        30usize..70,
        prop_oneof![
            Just(Distribution::Uniform),
            Just(Distribution::Gaussian),
            Just(Distribution::Battlefield)
        ],
        1.0f64..4.0,
        0.5f64..2.5,
        any::<u64>(),
    )
        .prop_map(|(n, distribution, max_speed, size_pct, seed)| Params {
            dataset_size: n,
            distribution,
            max_speed,
            object_size_pct: size_pct,
            space: 150.0,
            seed,
            ..Params::default()
        })
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EngineKind {
    Naive,
    Tc,
    Etp,
    Mtb,
    Bx,
}

fn arb_kind() -> impl Strategy<Value = EngineKind> {
    prop_oneof![
        Just(EngineKind::Naive),
        Just(EngineKind::Tc),
        Just(EngineKind::Etp),
        Just(EngineKind::Mtb),
        Just(EngineKind::Bx),
    ]
}

fn build_engine(
    kind: EngineKind,
    params: &Params,
    config: &EngineConfig,
    set_a: &[MovingObject],
    set_b: &[MovingObject],
    start: Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    Ok(match kind {
        EngineKind::Naive => Box::new(NaiveEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Tc => Box::new(TcEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Etp => Box::new(EtpEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Mtb => Box::new(MtbEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Bx => {
            let bx_config = cij_bx::BxConfig {
                t_m: params.maximum_update_interval,
                space: params.space,
                max_speed: params.max_speed,
                max_extent: params.object_side(),
                ..Default::default()
            };
            Box::new(BxEngine::new(
                pool(),
                *config,
                bx_config,
                set_a,
                set_b,
                start,
            )?)
        }
    })
}

fn replay(set: &mut HashSet<PairKey>, delta: &ResultDelta) -> Result<(), String> {
    match delta {
        ResultDelta::PairAdded { pair, .. } => {
            if !set.insert(*pair) {
                return Err(format!("duplicate add {pair:?}"));
            }
        }
        ResultDelta::PairRemoved { pair } => {
            if !set.remove(pair) {
                return Err(format!("removal of absent {pair:?}"));
            }
        }
    }
    Ok(())
}

fn sorted(set: &HashSet<PairKey>) -> Vec<PairKey> {
    let mut v: Vec<PairKey> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Scratch WAL path, removed on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: u64) -> Self {
        let path =
            std::env::temp_dir().join(format!("cij-stream-prop-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any engine, any workload: replaying the delta stream from the
    /// empty set equals the snapshot answer at every tick of a 45-tick
    /// run.
    #[test]
    fn delta_replay_equals_snapshots(
        params in arb_params(),
        kind in arb_kind(),
    ) {
        let (a, b) = generate_pair(&params, 0.0);
        let factory = |cfg: &EngineConfig,
                       sa: &[MovingObject],
                       sb: &[MovingObject],
                       start: Time|
         -> TprResult<Box<dyn ContinuousJoinEngine>> {
            build_engine(kind, &params, cfg, sa, sb, start)
        };
        let config = StreamConfig::builder().batch_capacity(1 << 16).build();
        let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).unwrap();
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        let mut replayed: HashSet<PairKey> = HashSet::new();
        for tick in 1..=45u32 {
            let now = Time::from(tick);
            for u in stream.tick(now) {
                prop_assert_eq!(svc.submit(u, now), IngestOutcome::Accepted);
            }
            for d in svc.advance_to(now).unwrap() {
                if let Err(msg) = replay(&mut replayed, &d.delta) {
                    prop_assert!(false, "{:?} t={}: {}", kind, now, msg);
                }
            }
            prop_assert_eq!(
                sorted(&replayed),
                svc.result_at(now),
                "{:?} diverged at t={}",
                kind,
                now
            );
        }
    }

    /// Crash anywhere in the run (arbitrary truncation of the WAL tail,
    /// possibly mid-record): recovery lands on a prefix of the original
    /// timeline, and resubmitting the suffix re-converges with it — the
    /// delta-replay invariant holds across the boundary.
    #[test]
    fn delta_replay_survives_crash_recovery(
        params in arb_params(),
        kind in prop_oneof![
            Just(EngineKind::Tc),
            Just(EngineKind::Mtb),
            Just(EngineKind::Etp),
        ],
        cut in 1u64..200,
    ) {
        const TICKS: u32 = 30;
        let (a, b) = generate_pair(&params, 0.0);
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        let schedule: Vec<_> = (1..=TICKS)
            .map(|tick| {
                let now = Time::from(tick);
                (now, stream.tick(now))
            })
            .collect();
        let factory = |cfg: &EngineConfig,
                       sa: &[MovingObject],
                       sb: &[MovingObject],
                       start: Time|
         -> TprResult<Box<dyn ContinuousJoinEngine>> {
            build_engine(kind, &params, cfg, sa, sb, start)
        };
        let wal = TempWal::new(params.seed ^ cut);
        let config = StreamConfig::builder()
            .batch_capacity(1 << 16)
            .wal_path(wal.0.clone())
            .build();

        // First life, recording every snapshot.
        let mut svc = StreamService::new(config.clone(), &a, &b, 0.0, &factory).unwrap();
        let mut snapshots = Vec::new();
        for (now, updates) in &schedule {
            for u in updates {
                prop_assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
            }
            svc.advance_to(*now).unwrap();
            snapshots.push((*now, svc.result_at(*now)));
        }
        drop(svc);

        // Crash: chop an arbitrary number of bytes off the log tail
        // (clamped so the genesis record always survives).
        let len = std::fs::metadata(&wal.0).unwrap().len();
        let genesis_floor = 16 + 1 + 8 + 2 * (4 + (a.len() as u64) * (8 + 9 * 8));
        let new_len = len.saturating_sub(cut).max(genesis_floor);
        let file = std::fs::OpenOptions::new().write(true).open(&wal.0).unwrap();
        file.set_len(new_len).unwrap();
        drop(file);

        // Second life.
        let (mut recovered, report) = StreamService::recover(config, &factory).unwrap();
        let last = report.last_tick;
        prop_assert!(last <= schedule.last().unwrap().0);
        if let Some((_, expect)) = snapshots.iter().find(|(t, _)| *t == last) {
            prop_assert_eq!(&recovered.result_at(last), expect, "at durable tick {}", last);
        }

        // Resubmit the suffix; the timeline must re-converge tick for tick.
        for (now, updates) in schedule.iter().filter(|(t, _)| *t > last) {
            for u in updates {
                prop_assert_eq!(recovered.submit(*u, *now), IngestOutcome::Accepted);
            }
            recovered.advance_to(*now).unwrap();
            let expect = &snapshots.iter().find(|(t, _)| t == now).unwrap().1;
            prop_assert_eq!(
                &recovered.result_at(*now),
                expect,
                "{:?} recovered timeline diverges at t={}",
                kind,
                now
            );
        }
    }
}
