//! Lockstep differential tests for the load-shedding policies.
//!
//! The shedding contract has two halves:
//!
//! * **Shedding disabled ⇒ bit-identical.** A service configured with
//!   any [`ShedPolicy`] but never pushed into saturation emits exactly
//!   the delta stream of the policy-less oracle — the policy machinery
//!   is observable only under pressure.
//! * **`DropStalePerObject` ⇒ post-tick equality.** Under saturation,
//!   superseding a pending update with a newer one for the same object
//!   is sound under the paper's `T_M` discipline: the merged update
//!   chains the superseded one's `old_mbr`/`last_update`, so the index
//!   delete hits exactly what the tree holds, and by the end of the
//!   tick both services have registered the same final trajectory.
//!   Intermediate deltas may differ (the oracle briefly reports pairs
//!   involving the superseded position); the post-tick result set may
//!   not. Pinned here at threads {1, 4}, with the delta stream
//!   additionally bit-identical across thread counts.
//!
//! The saturation driver is deterministic by construction: wave 1 fills
//! the shed service's queue exactly to its high watermark (closing it),
//! wave 2 re-updates half of wave 1's objects — admissible only through
//! supersession, which the test asserts happened every single time.
//!
//! A final test pins the backpressure flip counters end to end through
//! cij-obs: a degenerate `high == 1, low == 0` queue must engage and
//! release exactly once per tick, no more (re-entry flapping is bounded
//! by the per-tick cadence, not amplified by it).

mod common;

use std::collections::HashSet;

use cij_core::{EngineConfig, PairKey};
use cij_geom::Time;
use cij_stream::{
    IngestOutcome, ResultDelta, ShedPolicy, StampedDelta, StreamConfig, StreamService,
};
use cij_workload::{generate_pair, Params, UpdateStream};

use common::{mtb_factory, ChainedGen};

/// First-wave updates per tick — also the shed queue's high watermark.
const WAVE: usize = 30;
/// Second-wave (superseding) updates per tick.
const SUPERSEDE: usize = 15;
const TICKS: u32 = 40;

fn small_params(seed: u64) -> Params {
    Params {
        dataset_size: 100,
        space: 200.0,
        object_size_pct: 1.0,
        seed,
        ..Params::default()
    }
}

fn service(
    policy: ShedPolicy,
    capacity: usize,
    high: usize,
    low: usize,
    threads: usize,
    a: &[cij_workload::MovingObject],
    b: &[cij_workload::MovingObject],
) -> StreamService {
    let config = StreamConfig::builder()
        .engine(
            EngineConfig::builder()
                .threads(threads)
                .metrics(true)
                .build(),
        )
        .batch_capacity(capacity)
        .high_watermark(high)
        .low_watermark(low)
        .outbox_capacity(1 << 16)
        .shed_policy(policy)
        .build();
    let factory = mtb_factory();
    StreamService::new(config, a, b, 0.0, &factory).unwrap()
}

// ----------------------------------------------------------------------
// Half 1: no saturation ⇒ every policy is bit-identical to the oracle.
// ----------------------------------------------------------------------

fn run_unsaturated(policy: ShedPolicy, threads: usize) -> Vec<StampedDelta> {
    let params = small_params(610);
    let (a, b) = generate_pair(&params, 0.0);
    let mut svc = service(policy, 1 << 16, 1 << 15, 1 << 14, threads, &a, &b);
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let mut out = Vec::new();
    for tick in 1..=TICKS {
        let now = Time::from(tick);
        for u in stream.tick(now) {
            assert_eq!(svc.submit(u, now), IngestOutcome::Accepted);
        }
        out.extend(svc.advance_to(now).unwrap());
    }
    assert_eq!(
        svc.shed_dropped_stale(),
        0,
        "{policy:?}: unsaturated run shed"
    );
    assert_eq!(
        svc.shed_coalesced(),
        0,
        "{policy:?}: unsaturated run re-timed"
    );
    assert!(!out.is_empty(), "vacuous run");
    out
}

#[test]
fn policies_are_bit_identical_to_oracle_without_saturation() {
    for threads in [1usize, 4] {
        let oracle = run_unsaturated(ShedPolicy::None, threads);
        for policy in [
            ShedPolicy::CoalesceHarder { window: 2.0 },
            ShedPolicy::DropStalePerObject,
            ShedPolicy::DegradeToResync,
        ] {
            let stream = run_unsaturated(policy, threads);
            assert_eq!(
                oracle, stream,
                "{policy:?} diverged from the oracle below saturation (threads {threads})"
            );
        }
    }
}

// ----------------------------------------------------------------------
// Half 2: saturated DropStalePerObject ⇒ post-tick result equality.
// ----------------------------------------------------------------------

/// Drives the oracle (unbounded, no policy) and the shed service (queue
/// closed by wave 1) over an identical two-wave schedule; returns the
/// shed service's delta stream and the per-tick result sets.
fn run_saturated_lockstep(threads: usize, seed: u64) -> (Vec<StampedDelta>, Vec<Vec<PairKey>>) {
    let params = small_params(seed);
    let (a, b) = generate_pair(&params, 0.0);
    let mut oracle = service(ShedPolicy::None, 1 << 16, 1 << 15, 1 << 14, threads, &a, &b);
    let mut shed = service(
        ShedPolicy::DropStalePerObject,
        WAVE * 2,
        WAVE,
        WAVE / 2,
        threads,
        &a,
        &b,
    );
    let mut gen = ChainedGen::new(&params, &a, &b, 0.0);
    let mut shed_stream = Vec::new();
    let mut results = Vec::new();
    for tick in 1..=TICKS {
        let now = Time::from(tick);
        let wave1_at = now - 0.5;
        // Wave 1: WAVE distinct objects (rotating window over the id
        // space, so every object refreshes well inside T_M). Fills the
        // shed queue exactly to its high watermark.
        let base = (tick as usize * WAVE * 2) % gen.len();
        let mut wave1 = Vec::with_capacity(WAVE);
        for k in 0..WAVE {
            let u = gen.candidate(base + k, u64::from(tick), wave1_at);
            gen.commit(&u, wave1_at);
            assert_eq!(oracle.submit(u, wave1_at), IngestOutcome::Accepted);
            assert_eq!(shed.submit(u, wave1_at), IngestOutcome::Accepted);
            wave1.push(base + k);
        }
        assert!(!shed.is_accepting(), "wave 1 must close the shed queue");
        assert!(oracle.is_accepting(), "the oracle must never close");
        // Wave 2: newer updates for half of wave 1's objects. The shed
        // queue is closed — admission is possible only by superseding
        // the object's pending wave-1 update.
        for k in 0..SUPERSEDE {
            let u = gen.candidate(wave1[k * 2], u64::from(tick) ^ 0xDEAD_BEEF, now);
            gen.commit(&u, now);
            assert_eq!(oracle.submit(u, now), IngestOutcome::Accepted);
            assert_eq!(
                shed.submit(u, now),
                IngestOutcome::Accepted,
                "supersession must absorb wave 2 at t={now}"
            );
        }
        oracle.advance_to(now).unwrap();
        shed_stream.extend(shed.advance_to(now).unwrap());
        assert!(shed.is_accepting(), "drain must reopen the shed queue");
        let expect = oracle.result_at(now);
        assert_eq!(
            shed.result_at(now),
            expect,
            "post-tick result diverges at t={now} (threads {threads})"
        );
        results.push(expect);
    }
    assert_eq!(
        shed.shed_dropped_stale(),
        u64::from(TICKS) * SUPERSEDE as u64,
        "every wave-2 update must shed its wave-1 predecessor"
    );
    assert_eq!(oracle.shed_dropped_stale(), 0);
    (shed_stream, results)
}

#[test]
fn drop_stale_post_tick_results_match_oracle_at_threads_1_and_4() {
    let (stream_seq, results_seq) = run_saturated_lockstep(1, 611);
    let (stream_par, results_par) = run_saturated_lockstep(4, 611);
    assert_eq!(
        results_seq, results_par,
        "post-tick results differ between threads=1 and threads=4"
    );
    assert_eq!(
        stream_seq, stream_par,
        "shed delta stream differs between threads=1 and threads=4"
    );
    // Non-vacuity: the sheds really produced pairs to compare.
    assert!(
        results_seq.iter().any(|r| !r.is_empty()),
        "no pairs ever reported"
    );
}

/// The shed service's own delta stream stays strict and snapshot-exact
/// even while it supersedes — replaying it reconstructs `result_at` at
/// every tick.
#[test]
fn drop_stale_delta_stream_replays_to_snapshots_under_saturation() {
    let params = small_params(612);
    let (a, b) = generate_pair(&params, 0.0);
    let mut shed = service(
        ShedPolicy::DropStalePerObject,
        WAVE * 2,
        WAVE,
        WAVE / 2,
        1,
        &a,
        &b,
    );
    let mut gen = ChainedGen::new(&params, &a, &b, 0.0);
    let mut replayed: HashSet<PairKey> = HashSet::new();
    for tick in 1..=TICKS {
        let now = Time::from(tick);
        let wave1_at = now - 0.5;
        let base = (tick as usize * WAVE * 2) % gen.len();
        for k in 0..WAVE {
            let u = gen.candidate(base + k, u64::from(tick), wave1_at);
            gen.commit(&u, wave1_at);
            assert_eq!(shed.submit(u, wave1_at), IngestOutcome::Accepted);
        }
        for k in 0..SUPERSEDE {
            let u = gen.candidate(base + k * 2, u64::from(tick) ^ 0xDEAD_BEEF, now);
            gen.commit(&u, now);
            assert_eq!(shed.submit(u, now), IngestOutcome::Accepted);
        }
        for d in shed.advance_to(now).unwrap() {
            match d.delta {
                ResultDelta::PairAdded { pair, .. } => {
                    assert!(replayed.insert(pair), "duplicate add {pair:?} at t={now}");
                }
                ResultDelta::PairRemoved { pair } => {
                    assert!(
                        replayed.remove(&pair),
                        "removal of absent {pair:?} at t={now}"
                    );
                }
            }
        }
        let mut got: Vec<PairKey> = replayed.iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, shed.result_at(now), "replay diverges at t={now}");
    }
    assert!(shed.shed_dropped_stale() > 0, "saturation never triggered");
}

// ----------------------------------------------------------------------
// Backpressure flip counters, pinned end to end through cij-obs.
// ----------------------------------------------------------------------

/// Degenerate watermarks (`high == 1`, `low == 0`): every tick's single
/// update closes the queue and every drain reopens it. The cij-obs flip
/// counters must read exactly one engage and one release per tick —
/// hysteresis makes the flap rate track the tick cadence, not the
/// submission count.
#[test]
fn degenerate_watermarks_pin_backpressure_flip_counters() {
    const FLAPS: u32 = 12;
    let params = small_params(613);
    let (a, b) = generate_pair(&params, 0.0);
    let mut svc = service(ShedPolicy::None, 4, 1, 0, 1, &a, &b);
    let mut gen = ChainedGen::new(&params, &a, &b, 0.0);
    for tick in 1..=FLAPS {
        let now = Time::from(tick);
        let u = gen.candidate(tick as usize, u64::from(tick), now);
        gen.commit(&u, now);
        assert!(svc.is_accepting());
        assert_eq!(svc.submit(u, now), IngestOutcome::Accepted);
        assert!(!svc.is_accepting(), "high == 1 must close on every submit");
        // A second same-tick submission is refused, not a second flip.
        let refused = gen.candidate(tick as usize + 50, u64::from(tick), now);
        assert_eq!(svc.submit(refused, now), IngestOutcome::QueueFull);
        svc.advance_to(now).unwrap();
        assert!(svc.is_accepting(), "drain to low == 0 must reopen");
    }
    let snap = svc.metrics_snapshot();
    assert_eq!(
        snap.counter("stream.backpressure.engaged"),
        Some(u64::from(FLAPS)),
        "exactly one engage per tick"
    );
    assert_eq!(
        snap.counter("stream.backpressure.released"),
        Some(u64::from(FLAPS)),
        "exactly one release per tick"
    );
    let depth = snap.histogram("stream.ingest.queue_depth").unwrap();
    assert_eq!(
        depth.count,
        u64::from(FLAPS) * 2,
        "one sample per submission"
    );
    let latency = snap.histogram("stream.ingest.latency_ns").unwrap();
    assert_eq!(
        latency.count,
        u64::from(FLAPS),
        "one sample per applied update"
    );
}
