//! Delta-stream continuity across *adaptive* re-partitioning: a
//! [`StreamService`] running a [`ShardCoordinator`] with an armed
//! [`AdaptiveController`](cij_shard::AdaptiveController) must emit the
//! same (tick, pair, add/remove) event set as a service on the plain
//! engine — through every telemetry-triggered rebalance — and replaying
//! either delta stream from the empty set must reconstruct `result_at`
//! exactly. A second leg proves rebalances are WAL-replay-deterministic:
//! recovery re-derives the same re-partition count and the same answer
//! because the trigger is a pure function of the update stream.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_geom::Time;
use cij_obs::MetricsRegistry;
use cij_shard::{AdaptiveConfig, ShardCoordinator, VelocityBandPolicy};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{OutboxItem, StreamConfig, StreamService, SubscriptionFilter};
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    )
}

/// Velocity-skewed so equal-width K = 4 bands start badly imbalanced —
/// the adaptive trigger fires from real telemetry, not a forced call,
/// and the proposal both re-draws boundaries *and* merges the empty
/// middle bands away (a K-changing rebalance mid-stream).
fn skew_params(seed: u64) -> Params {
    Params {
        dataset_size: 100,
        distribution: Distribution::VelocitySkew,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        maximum_update_interval: 20.0,
        ..Params::default()
    }
}

/// An aggressive controller for short test runs: low trigger threshold,
/// short cooldown, and a minimum weight the genesis seeding already
/// satisfies, so the first imbalanced batch can re-partition.
fn eager_adaptive(max_speed: f64) -> AdaptiveConfig {
    AdaptiveConfig {
        imbalance_threshold: 1.2,
        cooldown: 5.0,
        min_weight: 50,
        ..AdaptiveConfig::velocity(max_speed)
    }
}

/// Builds an adaptive sharded coordinator for the service, exporting
/// its metrics registry through `registry` so the test can prove
/// rebalances actually happened inside the closure.
fn adaptive_engine(
    cfg: &EngineConfig,
    a: &[cij_workload::MovingObject],
    b: &[cij_workload::MovingObject],
    now: Time,
    max_speed: f64,
    registry: &Arc<Mutex<Option<MetricsRegistry>>>,
) -> cij_tpr::TprResult<Box<dyn ContinuousJoinEngine>> {
    let sharded_cfg = EngineConfig {
        threads: 4,
        metrics: true,
        ..*cfg
    };
    let mut coord = ShardCoordinator::with_factory(
        pool(),
        sharded_cfg,
        Arc::new(VelocityBandPolicy::new(4, max_speed)),
        a,
        b,
        now,
        Arc::new(|pool, cfg, sa, sb, t| Ok(Box::new(MtbEngine::new(pool, *cfg, sa, sb, t)?))),
    )?;
    coord.enable_adaptive(eager_adaptive(max_speed))?;
    *registry.lock().unwrap() = Some(coord.metrics_registry());
    Ok(Box::new(coord))
}

#[test]
fn adaptive_rebalance_preserves_delta_stream_and_replay() {
    let params = skew_params(53);
    let (a, b) = generate_pair(&params, 0.0);
    let stream_config = StreamConfig::builder()
        .engine(EngineConfig {
            t_m: params.maximum_update_interval,
            ..EngineConfig::default()
        })
        .build();

    let mut single = StreamService::new(stream_config.clone(), &a, &b, 0.0, &|cfg, a, b, now| {
        Ok(Box::new(MtbEngine::new(pool(), *cfg, a, b, now)?))
    })
    .expect("single service");
    let registry = Arc::new(Mutex::new(None));
    let reg_handle = Arc::clone(&registry);
    let max_speed = params.max_speed;
    let mut sharded = StreamService::new(stream_config, &a, &b, 0.0, &move |cfg, a, b, now| {
        adaptive_engine(cfg, a, b, now, max_speed, &reg_handle)
    })
    .expect("adaptive sharded service");

    let sub_single = single.subscribe(SubscriptionFilter::All).expect("sub");
    let sub_sharded = sharded.subscribe(SubscriptionFilter::All).expect("sub");

    let mut workload = UpdateStream::new(&params, &a, &b, 0.0);
    let mut replay_single = BTreeSet::new();
    let mut replay_sharded = BTreeSet::new();
    for tick in 1..=40u32 {
        let now = Time::from(tick);
        for u in workload.tick(now) {
            single.submit(u, now);
            sharded.submit(u, now);
        }
        single.advance_to(now).expect("single advance");
        sharded.advance_to(now).expect("sharded advance");

        let drain = |svc: &mut StreamService, id, replay: &mut BTreeSet<_>| {
            let mut events = BTreeSet::new();
            for item in svc.poll(id).unwrap_or_default() {
                let OutboxItem::Delta(stamped) = item else {
                    panic!("no gaps expected in this run");
                };
                let pair = stamped.delta.pair();
                if stamped.delta.is_add() {
                    replay.insert(pair);
                } else {
                    replay.remove(&pair);
                }
                events.insert((stamped.at.to_bits(), pair, stamped.delta.is_add()));
            }
            events
        };
        let ev_single = drain(&mut single, sub_single, &mut replay_single);
        let ev_sharded = drain(&mut sharded, sub_sharded, &mut replay_sharded);
        assert_eq!(ev_sharded, ev_single, "event sets diverged at t={now}");

        let answer: BTreeSet<_> = single.result_at(now).into_iter().collect();
        assert_eq!(replay_single, answer, "single replay broke at t={now}");
        assert_eq!(replay_sharded, answer, "sharded replay broke at t={now}");
    }

    // The run must actually have re-partitioned — otherwise this test
    // silently degrades into the fixed-policy differential.
    let snap = registry
        .lock()
        .unwrap()
        .as_ref()
        .expect("factory ran")
        .snapshot();
    let rebalances = snap.counter("shard.rebalances").unwrap_or(0);
    assert!(
        rebalances >= 1,
        "adaptive controller never re-partitioned (imbalance never acted on)"
    );
    assert!(
        snap.counter("shard.rebalance.moved_objects").unwrap_or(0) > 0,
        "rebalance moved no objects"
    );
}

/// A WAL path in the system temp dir, removed on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("cij-shard-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Adaptive triggers are a pure function of the update stream (the
/// sketch is fed in deterministic route order, decisions run at batch
/// boundaries), so WAL recovery must re-derive the *same* rebalances
/// and land on the same answer.
#[test]
fn wal_recovery_replays_adaptive_rebalances_deterministically() {
    let params = skew_params(54);
    let (a, b) = generate_pair(&params, 0.0);
    let wal = TempWal::new("adaptive-replay");
    let stream_config = StreamConfig::builder()
        .engine(EngineConfig {
            t_m: params.maximum_update_interval,
            ..EngineConfig::default()
        })
        .wal_path(wal.0.clone())
        .build();

    let registry = Arc::new(Mutex::new(None));
    let max_speed = params.max_speed;
    let live_rebalances;
    let live_answer;
    let end = Time::from(30u32);
    {
        let reg_handle = Arc::clone(&registry);
        let mut live = StreamService::new(
            stream_config.clone(),
            &a,
            &b,
            0.0,
            &move |cfg, a, b, now| adaptive_engine(cfg, a, b, now, max_speed, &reg_handle),
        )
        .expect("live service");
        let mut workload = UpdateStream::new(&params, &a, &b, 0.0);
        for tick in 1..=30u32 {
            let now = Time::from(tick);
            for u in workload.tick(now) {
                live.submit(u, now);
            }
            live.advance_to(now).expect("live advance");
        }
        live_answer = live.result_at(end);
        let snap = registry
            .lock()
            .unwrap()
            .as_ref()
            .expect("factory ran")
            .snapshot();
        live_rebalances = snap.counter("shard.rebalances").unwrap_or(0);
        assert!(live_rebalances >= 1, "live run never re-partitioned");
    }

    let reg_handle = Arc::clone(&registry);
    let (recovered, report) = StreamService::recover(stream_config, &move |cfg, a, b, now| {
        adaptive_engine(cfg, a, b, now, max_speed, &reg_handle)
    })
    .expect("recovery");
    assert!(report.batches_replayed > 0, "nothing replayed");
    assert_eq!(recovered.result_at(end), live_answer, "answers diverged");
    let snap = registry
        .lock()
        .unwrap()
        .as_ref()
        .expect("recovery factory ran")
        .snapshot();
    assert_eq!(
        snap.counter("shard.rebalances").unwrap_or(0),
        live_rebalances,
        "recovery re-derived a different re-partition history"
    );
}
