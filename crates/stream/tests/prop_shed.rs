//! Property tests for the load-shedding policies: random arrival
//! schedules and random queue geometries, instead of the fixed two-wave
//! driver of `shed_lockstep.rs`.
//!
//! * **`DropStalePerObject`** — for any schedule, the post-tick result
//!   set equals a policy-less oracle fed exactly the accepted
//!   submissions, and the conservation ledger balances:
//!   `accepted == applied + shed_dropped_stale` once the queue drains.
//! * **`DegradeToResync`** — the `Gap` markers an `All` subscriber
//!   observes are *exact*: a degraded window spans exactly one
//!   `advance_to` call (the drain that empties the queue also closes
//!   the window), so each `Gap.dropped` must equal that call's emitted
//!   delta count, and the cij-obs gap/engage/resync counters must agree
//!   with the markers to the last unit.
//!
//! Both tests use [`common::ChainedGen`]'s candidate/commit protocol:
//! a refused candidate is dropped with the object's update chain
//! intact, so the oracle and the shed service always see per-object
//! chains the engine can apply.

mod common;

use cij_core::EngineConfig;
use cij_geom::Time;
use cij_stream::{
    IngestOutcome, OutboxItem, ShedPolicy, StreamConfig, StreamService, SubscriptionFilter,
};
use cij_workload::{generate_pair, Params};
use proptest::collection::vec;
use proptest::prelude::*;

use common::{mtb_factory, ChainedGen};

fn small_params(seed: u64) -> Params {
    Params {
        dataset_size: 60,
        space: 200.0,
        object_size_pct: 1.0,
        seed,
        ..Params::default()
    }
}

fn service(
    policy: ShedPolicy,
    capacity: usize,
    high: usize,
    low: usize,
    a: &[cij_workload::MovingObject],
    b: &[cij_workload::MovingObject],
) -> StreamService {
    let config = StreamConfig::builder()
        .engine(EngineConfig::builder().threads(1).metrics(true).build())
        .batch_capacity(capacity)
        .high_watermark(high)
        .low_watermark(low)
        .outbox_capacity(1 << 16)
        .shed_policy(policy)
        .build();
    let factory = mtb_factory();
    StreamService::new(config, a, b, 0.0, &factory).unwrap()
}

/// A random arrival schedule: per tick, a wave of object indices (drawn
/// with repetition, so same-object supersession happens organically).
fn arb_schedule() -> impl Strategy<Value = Vec<Vec<usize>>> {
    vec(vec(0usize..1000, 0..30), 6..12)
}

/// Queue geometry: capacity with the conventional 3/4 high and 1/2 low
/// watermarks, small enough that dense waves saturate it.
fn arb_geometry() -> impl Strategy<Value = (usize, usize, usize)> {
    (8usize..36).prop_map(|cap| (cap, (cap * 3 / 4).max(1), cap / 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random schedules under `DropStalePerObject`: after every tick's
    /// drain the shed service's result set is bit-identical to an
    /// unbounded oracle fed exactly the accepted submissions, and the
    /// ledger `accepted == applied + shed` balances.
    #[test]
    fn drop_stale_post_tick_equality_holds_for_random_schedules(
        schedule in arb_schedule(),
        geometry in arb_geometry(),
        seed in any::<u64>(),
    ) {
        let (capacity, high, low) = geometry;
        let params = small_params(seed);
        let (a, b) = generate_pair(&params, 0.0);
        let mut oracle = service(ShedPolicy::None, 1 << 16, 1 << 15, 1 << 14, &a, &b);
        let mut shed = service(ShedPolicy::DropStalePerObject, capacity, high, low, &a, &b);
        let mut gen = ChainedGen::new(&params, &a, &b, 0.0);
        let mut accepted = 0u64;
        for (t, wave) in schedule.iter().enumerate() {
            let now = Time::from(t as u32 + 1);
            for (j, &raw) in wave.iter().enumerate() {
                // Strictly increasing sub-ticks inside the wave, all
                // within (now - 1, now]: supersession stays admissible
                // and the tick's drain clears everything.
                let at = now - 0.9 + 0.9 * (j as f64 + 1.0) / (wave.len() as f64 + 1.0);
                let u = gen.candidate(raw, (t * 31 + j) as u64, at);
                match shed.submit(u, at) {
                    IngestOutcome::Accepted => {
                        gen.commit(&u, at);
                        accepted += 1;
                        prop_assert_eq!(
                            oracle.submit(u, at),
                            IngestOutcome::Accepted,
                            "oracle refused an update the shed service accepted"
                        );
                    }
                    // Refused: drop the candidate, chain intact.
                    IngestOutcome::QueueFull | IngestOutcome::Stale => {}
                }
            }
            oracle.advance_to(now).unwrap();
            shed.advance_to(now).unwrap();
            prop_assert_eq!(shed.queue_len(), 0, "drain must empty the queue");
            prop_assert_eq!(
                shed.result_at(now),
                oracle.result_at(now),
                "post-tick results diverge at t={}", now
            );
        }
        prop_assert_eq!(oracle.shed_dropped_stale(), 0);
        let applied = shed
            .metrics_snapshot()
            .histogram("stream.ingest.latency_ns")
            .map_or(0, |h| h.count);
        prop_assert_eq!(
            accepted,
            applied + shed.shed_dropped_stale(),
            "conservation: accepted != applied + shed"
        );
    }

    /// Random schedules under `DegradeToResync`: every `Gap` marker the
    /// `All` subscriber sees carries *exactly* the delta count of the
    /// one degraded `advance_to` call it stands for, and the cij-obs
    /// counters (`degrade.engaged`, `degrade.resyncs`,
    /// `subscribers.dropped_deltas`) agree with the markers.
    #[test]
    fn degrade_gap_counters_are_exact_for_random_schedules(
        schedule in arb_schedule(),
        geometry in arb_geometry(),
        seed in any::<u64>(),
    ) {
        let (capacity, high, low) = geometry;
        let params = small_params(seed);
        let (a, b) = generate_pair(&params, 0.0);
        let mut svc = service(ShedPolicy::DegradeToResync, capacity, high, low, &a, &b);
        let sub = svc.subscribe(SubscriptionFilter::All).unwrap();
        svc.poll(sub); // drain the initial catch-up snapshot
        let mut gen = ChainedGen::new(&params, &a, &b, 0.0);
        let mut expected_gaps: Vec<u64> = Vec::new();
        let mut observed_gaps: Vec<u64> = Vec::new();
        for (t, wave) in schedule.iter().enumerate() {
            let now = Time::from(t as u32 + 1);
            for (j, &raw) in wave.iter().enumerate() {
                let at = now - 0.9 + 0.9 * (j as f64 + 1.0) / (wave.len() as f64 + 1.0);
                let u = gen.candidate(raw, (t * 31 + j) as u64, at);
                if svc.submit(u, at) == IngestOutcome::Accepted {
                    gen.commit(&u, at);
                }
            }
            let was_degraded = svc.is_degraded();
            let deltas = svc.advance_to(now).unwrap();
            // The drain empties the queue, so the window that opened
            // this tick must close within this very advance call.
            prop_assert!(!svc.is_degraded(), "window must close with the drain");
            let items = svc.poll(sub).unwrap();
            if was_degraded {
                expected_gaps.push(deltas.len() as u64);
                // A Gap marker leads the outbox iff deliveries were
                // actually suppressed; a degraded window with zero
                // emitted deltas leaves no marker (and owes none).
                let gap = match items.first() {
                    Some(OutboxItem::Gap { dropped }) => *dropped,
                    _ => 0,
                };
                observed_gaps.push(gap);
                // After the Gap, the reseed snapshot: one PairAdded per
                // currently reported pair.
                let lead = usize::from(gap > 0);
                prop_assert_eq!(
                    items.len() - lead,
                    svc.result_at(now).len(),
                    "reseed snapshot size mismatch at t={}", now
                );
            } else {
                prop_assert!(
                    !items.iter().any(|i| matches!(i, OutboxItem::Gap { .. })),
                    "spurious Gap outside a degraded window at t={}", now
                );
                prop_assert_eq!(items.len(), deltas.len());
            }
        }
        prop_assert_eq!(&observed_gaps, &expected_gaps, "Gap sizes must be exact");
        let snap = svc.metrics_snapshot();
        let windows = expected_gaps.len() as u64;
        prop_assert_eq!(snap.counter("stream.degrade.engaged"), Some(windows));
        prop_assert_eq!(snap.counter("stream.degrade.resyncs"), Some(windows));
        prop_assert_eq!(
            snap.counter("stream.subscribers.dropped_deltas"),
            Some(expected_gaps.iter().sum::<u64>()),
            "gap ledger must match the cij-obs counter"
        );
    }
}
