//! Differential correctness of the delta stream.
//!
//! The service's contract is that a consumer replaying the emitted
//! [`ResultDelta`]s against an initially-empty pair set reconstructs the
//! engine's `result_at(t)` **exactly at every tick** — and that the
//! stream is strict (no `PairAdded` for a held pair, no `PairRemoved`
//! for an absent one: duplicates and losses are structurally
//! impossible, not just coincidentally absent). These tests pin that
//! for every engine, at thread counts 1 and 4, over ≥ 60 ticks, and
//! additionally pin that the delta stream is **bit-identical across
//! thread counts** — the streaming extension inherits PR 1's parallel
//! determinism guarantee.
//!
//! The second half kills a journaled service by truncating its WAL
//! mid-record and proves recovery lands on the last durable batch with
//! no duplicated or lost deltas across the crash boundary.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use cij_core::{
    BxEngine, ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, PairKey,
    TcEngine,
};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{
    IngestOutcome, OutboxItem, ResultDelta, StampedDelta, StreamConfig, StreamService,
    SubscriptionFilter,
};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, Distribution, MovingObject, ObjectUpdate, Params, UpdateStream};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Naive,
    Tc,
    Etp,
    Mtb,
    Bx,
}

fn small_params(seed: u64) -> Params {
    Params {
        dataset_size: 100,
        distribution: Distribution::Uniform,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(128, 8),
    )
}

fn build_engine(
    kind: EngineKind,
    params: &Params,
    config: &EngineConfig,
    set_a: &[MovingObject],
    set_b: &[MovingObject],
    start: Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    Ok(match kind {
        EngineKind::Naive => Box::new(NaiveEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Tc => Box::new(TcEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Etp => Box::new(EtpEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Mtb => Box::new(MtbEngine::new(pool(), *config, set_a, set_b, start)?),
        EngineKind::Bx => {
            let bx_config = cij_bx::BxConfig {
                t_m: params.maximum_update_interval,
                space: params.space,
                max_speed: params.max_speed,
                max_extent: params.object_side(),
                ..Default::default()
            };
            Box::new(BxEngine::new(
                pool(),
                *config,
                bx_config,
                set_a,
                set_b,
                start,
            )?)
        }
    })
}

/// Pre-generates the whole update schedule so multiple services (and a
/// post-crash resubmission) can be driven over the identical workload.
fn scheduled_updates(
    params: &Params,
    a: &[MovingObject],
    b: &[MovingObject],
    ticks: u32,
) -> Vec<(Time, Vec<ObjectUpdate>)> {
    let mut stream = UpdateStream::new(params, a, b, 0.0);
    (1..=ticks)
        .map(|tick| {
            let now = Time::from(tick);
            (now, stream.tick(now))
        })
        .collect()
}

/// Applies one delta to the replayed pair set with strictness asserts:
/// an add of a held pair or a removal of an absent pair is a protocol
/// violation, not a tolerable redundancy.
fn replay_strict(set: &mut HashSet<PairKey>, delta: &ResultDelta, context: &str) {
    match delta {
        ResultDelta::PairAdded { pair, .. } => {
            assert!(set.insert(*pair), "duplicate PairAdded {pair:?} {context}");
        }
        ResultDelta::PairRemoved { pair } => {
            assert!(
                set.remove(pair),
                "PairRemoved for absent {pair:?} {context}"
            );
        }
    }
}

fn sorted(set: &HashSet<PairKey>) -> Vec<PairKey> {
    let mut v: Vec<PairKey> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

/// Drives one service over the schedule, checking at every tick that
/// both the global delta stream and an all-filter subscriber's
/// deliveries reconstruct `result_at` exactly. Returns the full stream
/// for cross-thread-count comparison.
fn run_and_check(
    kind: EngineKind,
    threads: usize,
    params: &Params,
    set_a: &[MovingObject],
    set_b: &[MovingObject],
    schedule: &[(Time, Vec<ObjectUpdate>)],
) -> Vec<StampedDelta> {
    let config = StreamConfig::builder()
        .engine(EngineConfig::builder().threads(threads).build())
        .batch_capacity(1 << 16)
        .outbox_capacity(1 << 16)
        .build();
    let factory = |cfg: &EngineConfig,
                   a: &[MovingObject],
                   b: &[MovingObject],
                   start: Time|
     -> TprResult<Box<dyn ContinuousJoinEngine>> {
        build_engine(kind, params, cfg, a, b, start)
    };
    let mut svc = StreamService::new(config, set_a, set_b, 0.0, &factory).unwrap();
    let sub = svc.subscribe(SubscriptionFilter::All).unwrap();

    let mut replayed: HashSet<PairKey> = HashSet::new();
    let mut sub_replayed: HashSet<PairKey> = HashSet::new();
    let mut stream_out = Vec::new();
    for (now, updates) in schedule {
        for u in updates {
            assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
        }
        let deltas = svc.advance_to(*now).unwrap();
        for d in &deltas {
            assert_eq!(d.at, *now, "{kind:?}: delta stamped off-tick");
            replay_strict(&mut replayed, &d.delta, &format!("({kind:?} t={now})"));
        }
        let expect = svc.result_at(*now);
        assert_eq!(
            sorted(&replayed),
            expect,
            "{kind:?} threads={threads}: replayed deltas diverge from result_at at t={now}"
        );

        for item in svc.poll(sub).unwrap() {
            match item {
                OutboxItem::Delta(d) => replay_strict(
                    &mut sub_replayed,
                    &d.delta,
                    &format!("(subscriber {kind:?} t={now})"),
                ),
                OutboxItem::Gap { .. } => {
                    panic!("{kind:?}: subscriber with huge outbox saw a gap")
                }
            }
        }
        assert_eq!(
            sorted(&sub_replayed),
            expect,
            "{kind:?} threads={threads}: subscriber replay diverges at t={now}"
        );
        stream_out.extend(deltas);
    }
    assert!(
        !stream_out.is_empty(),
        "{kind:?}: workload produced no deltas — vacuous test"
    );
    stream_out
}

/// Each engine × thread counts {1, 4}: replay reconstructs `result_at`
/// at all 65 ticks, and the two delta streams are bit-identical.
fn differential_for(kind: EngineKind, seed: u64) {
    let params = small_params(seed);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, 65);
    let stream_seq = run_and_check(kind, 1, &params, &a, &b, &schedule);
    let stream_par = run_and_check(kind, 4, &params, &a, &b, &schedule);
    assert_eq!(
        stream_seq, stream_par,
        "{kind:?}: delta stream differs between threads=1 and threads=4"
    );
}

#[test]
fn naive_delta_replay_matches_snapshots_across_threads() {
    differential_for(EngineKind::Naive, 301);
}

#[test]
fn tc_delta_replay_matches_snapshots_across_threads() {
    differential_for(EngineKind::Tc, 302);
}

#[test]
fn etp_delta_replay_matches_snapshots_across_threads() {
    differential_for(EngineKind::Etp, 303);
}

#[test]
fn mtb_delta_replay_matches_snapshots_across_threads() {
    differential_for(EngineKind::Mtb, 304);
}

#[test]
fn bx_delta_replay_matches_snapshots_across_threads() {
    differential_for(EngineKind::Bx, 305);
}

// ----------------------------------------------------------------------
// Kill-and-recover: WAL truncated mid-record.
// ----------------------------------------------------------------------

/// A WAL path in the system temp dir, removed on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("cij-stream-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn wal_truncated_mid_record_recovers_last_durable_batch_without_dup_or_loss() {
    const TICKS: u32 = 50;
    let params = small_params(400);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, TICKS);
    let wal = TempWal::new("kill-recover");
    let factory = |cfg: &EngineConfig,
                   sa: &[MovingObject],
                   sb: &[MovingObject],
                   start: Time|
     -> TprResult<Box<dyn ContinuousJoinEngine>> {
        build_engine(EngineKind::Mtb, &params, cfg, sa, sb, start)
    };
    let config = StreamConfig::builder()
        .batch_capacity(1 << 16)
        .outbox_capacity(1 << 16)
        .wal_path(wal.0.clone())
        .build();

    // ---- First life: run to completion, remembering every snapshot. --
    let mut svc = StreamService::new(config.clone(), &a, &b, 0.0, &factory).unwrap();
    let sub = svc.subscribe(SubscriptionFilter::All).unwrap();
    let mut snapshots: Vec<(Time, Vec<PairKey>)> = Vec::new();
    for (now, updates) in &schedule {
        for u in updates {
            assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
        }
        svc.advance_to(*now).unwrap();
        snapshots.push((*now, svc.result_at(*now)));
    }
    let journaled_ticks: Vec<Time> = schedule
        .iter()
        .filter(|(_, ups)| !ups.is_empty())
        .map(|(t, _)| *t)
        .collect();
    assert!(
        journaled_ticks.len() >= 3,
        "workload too sparse for a meaningful crash test"
    );
    drop(svc); // the "crash": undelivered outbox state dies here

    // ---- Tear the log: cut into the last appended record. ------------
    let len = std::fs::metadata(&wal.0).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal.0)
        .unwrap();
    file.set_len(len - 5).unwrap(); // mid-CRC/payload of the tail record
    drop(file);

    // ---- Second life: recover and verify the durable prefix. ---------
    let (mut recovered, report) = StreamService::recover(config, &factory).unwrap();
    assert!(report.tail_truncated, "the torn tail must be detected");
    assert_eq!(report.batches_replayed, journaled_ticks.len() - 1);
    let last_durable = journaled_ticks[journaled_ticks.len() - 2];
    assert_eq!(report.last_tick, last_durable);
    assert_eq!(recovered.now(), last_durable);
    assert_eq!(report.subscribers, 1, "subscription state survives");

    // Engine state is exactly the pre-crash state at the last durable
    // batch — the snapshot the first life recorded at that tick.
    let expect_at_durable = &snapshots
        .iter()
        .find(|(t, _)| *t == last_durable)
        .unwrap()
        .1;
    assert_eq!(&recovered.result_at(last_durable), expect_at_durable);

    // The surviving subscriber: a gap marker (its old outbox is gone),
    // then a catch-up snapshot that rebuilds the durable state with no
    // duplicates.
    let items = recovered.poll(sub).unwrap();
    assert!(
        matches!(items.first(), Some(OutboxItem::Gap { dropped }) if *dropped >= 1),
        "recovery must surface a gap marker first, got {:?}",
        items.first()
    );
    let mut sub_replayed: HashSet<PairKey> = HashSet::new();
    for item in &items[1..] {
        match item {
            OutboxItem::Delta(d) => {
                assert!(d.delta.is_add(), "catch-up snapshot is adds only");
                replay_strict(&mut sub_replayed, &d.delta, "(catch-up)");
            }
            OutboxItem::Gap { .. } => panic!("only one gap marker"),
        }
    }
    assert_eq!(&sorted(&sub_replayed), expect_at_durable);

    // ---- Replayed future: resubmit everything after the durable tick.
    // The lost tail batch is re-ingested like any fresh work; from then
    // on the recovered timeline must re-converge with the first life
    // tick for tick, and the subscriber's delta replay must track it
    // strictly (no duplicate adds, no removals of absent pairs).
    for (now, updates) in schedule.iter().filter(|(t, _)| *t > last_durable) {
        for u in updates {
            assert_eq!(recovered.submit(*u, *now), IngestOutcome::Accepted);
        }
        recovered.advance_to(*now).unwrap();
        let expect = &snapshots.iter().find(|(t, _)| t == now).unwrap().1;
        assert_eq!(
            &recovered.result_at(*now),
            expect,
            "recovered timeline diverges from first life at t={now}"
        );
        for item in recovered.poll(sub).unwrap() {
            match item {
                OutboxItem::Delta(d) => {
                    replay_strict(
                        &mut sub_replayed,
                        &d.delta,
                        &format!("(post-crash t={now})"),
                    );
                }
                OutboxItem::Gap { .. } => panic!("no further gaps after recovery"),
            }
        }
        assert_eq!(
            &sorted(&sub_replayed),
            expect,
            "subscriber replay diverges after recovery at t={now}"
        );
    }
}

#[test]
fn recovery_of_a_clean_log_replays_everything() {
    let params = small_params(401);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, 20);
    let wal = TempWal::new("clean-recover");
    let factory = |cfg: &EngineConfig,
                   sa: &[MovingObject],
                   sb: &[MovingObject],
                   start: Time|
     -> TprResult<Box<dyn ContinuousJoinEngine>> {
        build_engine(EngineKind::Tc, &params, cfg, sa, sb, start)
    };
    let config = StreamConfig::builder().wal_path(wal.0.clone()).build();

    let mut svc = StreamService::new(config.clone(), &a, &b, 0.0, &factory).unwrap();
    for (now, updates) in &schedule {
        for u in updates {
            assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
        }
        svc.advance_to(*now).unwrap();
    }
    let final_tick = schedule.last().unwrap().0;
    let expect = svc.result_at(final_tick);
    let journaled: Vec<Time> = schedule
        .iter()
        .filter(|(_, ups)| !ups.is_empty())
        .map(|(t, _)| *t)
        .collect();
    drop(svc);

    let (recovered, report) = StreamService::recover(config, &factory).unwrap();
    assert!(!report.tail_truncated);
    assert_eq!(report.batches_replayed, journaled.len());
    assert_eq!(report.last_tick, *journaled.last().unwrap());
    assert_eq!(recovered.result_at(final_tick), expect);
}
