//! Shared helpers for the load-shedding integration tests.

#![allow(dead_code)] // each test crate uses a different subset

use std::collections::HashMap;
use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_geom::{MovingRect, Rect, Time};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, Params, SetTag};

/// MTB engine factory over a fresh in-memory pool.
pub fn mtb_factory() -> impl Fn(
    &EngineConfig,
    &[MovingObject],
    &[MovingObject],
    Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    |config, a, b, start| {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::sharded(256, 8),
        );
        Ok(Box::new(MtbEngine::new(pool, *config, a, b, start)?))
    }
}

/// Deterministic chained-update generator with explicit commit.
///
/// [`UpdateStream`](cij_workload::UpdateStream) advances its internal
/// state the moment it emits an update, so an update the service
/// *refuses* leaves the generator and the engine permanently out of
/// sync (the next update would chain from a trajectory the engine never
/// saw). The shed tests need precise control over which submissions
/// land: [`candidate`](Self::candidate) proposes an update continuing
/// the object's current chain without side effects, and only
/// [`commit`](Self::commit) registers it — a refused candidate is
/// simply dropped and the chain stays intact.
pub struct ChainedGen {
    side: f64,
    space: f64,
    ids: Vec<(ObjectId, SetTag)>,
    states: HashMap<ObjectId, (MovingRect, Time)>,
}

impl ChainedGen {
    pub fn new(params: &Params, a: &[MovingObject], b: &[MovingObject], now: Time) -> Self {
        let mut ids = Vec::with_capacity(a.len() + b.len());
        let mut states = HashMap::with_capacity(a.len() + b.len());
        for (objs, tag) in [(a, SetTag::A), (b, SetTag::B)] {
            for o in objs {
                ids.push((o.id, tag));
                states.insert(o.id, (o.mbr, now));
            }
        }
        Self {
            side: params.object_side(),
            space: params.space,
            ids,
            states,
        }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// A chained update for the `index`-th object (mod the population)
    /// at `at`: continues from the current committed trajectory, with a
    /// pseudo-random but fully deterministic velocity derived from
    /// `(index, salt)`. Does NOT advance the chain.
    pub fn candidate(&self, index: usize, salt: u64, at: Time) -> ObjectUpdate {
        let (id, set) = self.ids[index % self.ids.len()];
        let (old_mbr, last_update) = self.states[&id];
        let here = old_mbr.at(at);
        let x = here.lo[0].clamp(0.0, self.space - self.side);
        let y = here.lo[1].clamp(0.0, self.space - self.side);
        let h = (index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0x85EB_CA6B));
        let mut v = [((h >> 8) % 5) as f64 - 2.0, ((h >> 16) % 5) as f64 - 2.0];
        // Reflect inward near borders so objects stay in the domain.
        let margin = 0.05 * self.space;
        if x < margin {
            v[0] = v[0].abs();
        } else if x > self.space - self.side - margin {
            v[0] = -v[0].abs();
        }
        if y < margin {
            v[1] = v[1].abs();
        } else if y > self.space - self.side - margin {
            v[1] = -v[1].abs();
        }
        ObjectUpdate {
            id,
            set,
            old_mbr,
            last_update,
            new_mbr: MovingRect::rigid(Rect::new([x, y], [x + self.side, y + self.side]), v, at),
        }
    }

    /// Registers a previously issued candidate as the object's new
    /// committed trajectory. Call exactly when the service accepted it.
    pub fn commit(&mut self, u: &ObjectUpdate, at: Time) {
        self.states.insert(u.id, (u.new_mbr, at));
    }
}
