//! Long-running soak test for the ingest pipeline (`--ignored`; run
//! explicitly with `cargo test -p cij-stream --test soak -- --ignored`).
//!
//! A 10 000-object stream (5 000 per set) runs for 500 ticks at a
//! steady 250 updates/tick, with every 16th tick bursting to 400
//! distinct objects — enough to cross the high watermark, engage
//! backpressure, and exercise `DropStalePerObject` supersession while
//! the queue is closed. The test pins the stability properties a soak
//! is for:
//!
//! * **No monotonic queue growth** — every drain empties the queue.
//! * **Backpressure flips are periodic, not cumulative** — exactly one
//!   engage and one release per burst tick, none on steady ticks.
//! * **Conservation** — accepted == applied + shed once drained, with
//!   `applied` read back from the cij-obs ingest-latency histogram.
//! * **No subscriber gaps** — an `All` subscriber polled every tick
//!   never falls behind and replays a strict delta stream.
//!
//! The driver rotates a cursor over the whole population and advances
//! it only past *accepted* submissions, so every object is refreshed
//! at least every `population / steady_rate = 40` ticks — inside the
//! engine's `T_M = 60` update-interval contract even when bursts are
//! refused at the closed queue.

mod common;

use cij_core::EngineConfig;
use cij_geom::Time;
use cij_stream::{
    IngestOutcome, OutboxItem, ResultDelta, ShedPolicy, StreamConfig, StreamService,
    SubscriptionFilter,
};
use cij_workload::{generate_pair, Params};

use common::{mtb_factory, ChainedGen};

const PER_SET: usize = 5_000;
const TICKS: u32 = 500;
const STEADY: usize = 250;
const BURST: usize = 400;
const BURST_EVERY: u32 = 16;
const SUPERSEDE_PER_BURST: usize = 50;
const CAPACITY: usize = 400;
const HIGH: usize = 300;
const LOW: usize = 150;

#[test]
#[ignore = "soak test: ~10k objects x 500 ticks, run explicitly"]
fn soak_sustained_stream_with_periodic_bursts_stays_stable() {
    let params = Params {
        dataset_size: PER_SET,
        // Constant density relative to the paper's 10k-per-set in a
        // 1000^2 space: side scales with sqrt(population).
        space: 1000.0 * (PER_SET as f64 / 10_000.0).sqrt(),
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let config = StreamConfig::builder()
        .engine(EngineConfig::builder().threads(1).metrics(true).build())
        .batch_capacity(CAPACITY)
        .high_watermark(HIGH)
        .low_watermark(LOW)
        .outbox_capacity(1 << 16)
        .shed_policy(ShedPolicy::DropStalePerObject)
        .build();
    let factory = mtb_factory();
    let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).unwrap();
    let sub = svc.subscribe(SubscriptionFilter::All).unwrap();
    svc.poll(sub); // drain the initial catch-up snapshot

    let mut gen = ChainedGen::new(&params, &a, &b, 0.0);
    let population = gen.len();
    let mut cursor = 0usize;
    let mut accepted = 0u64;
    let mut burst_ticks = 0u64;
    // The extractor reports pairs lazily: everything live at t=0
    // arrives as `PairAdded` deltas on the first advance, so the
    // replayed count starts from zero.
    let mut live: i64 = 0;

    for tick in 1..=TICKS {
        let now = Time::from(tick);
        let at = now - 0.5;
        let bursting = tick % BURST_EVERY == 0;
        let attempts = if bursting { BURST } else { STEADY };
        if bursting {
            burst_ticks += 1;
        }
        let window_start = cursor;
        for k in 0..attempts {
            let u = gen.candidate(
                cursor,
                u64::from(tick).wrapping_mul(31).wrapping_add(k as u64),
                at,
            );
            match svc.submit(u, at) {
                IngestOutcome::Accepted => {
                    gen.commit(&u, at);
                    accepted += 1;
                    cursor = (cursor + 1) % population;
                }
                // The queue closed mid-burst: every further distinct
                // object would be refused too — stop, the cursor
                // resumes here next tick.
                IngestOutcome::QueueFull => break,
                IngestOutcome::Stale => panic!("stale refusal at t={now}"),
            }
        }
        assert_eq!(
            !svc.is_accepting(),
            bursting,
            "backpressure must engage exactly on burst ticks (t={now})"
        );
        if bursting {
            // The closed queue still admits newer updates for objects
            // with a pending one — supersession under `T_M`.
            for k in 0..SUPERSEDE_PER_BURST {
                let idx = (window_start + k) % population;
                let u = gen.candidate(idx, u64::from(tick) ^ 0xDEAD_BEEF ^ k as u64, now - 0.25);
                assert_eq!(
                    svc.submit(u, now - 0.25),
                    IngestOutcome::Accepted,
                    "supersession must absorb the burst tail at t={now}"
                );
                gen.commit(&u, now - 0.25);
                accepted += 1;
            }
        }
        svc.advance_to(now).unwrap();
        // Stability: the drain leaves nothing behind — queue depth is
        // sawtooth-periodic, never cumulative.
        assert_eq!(svc.queue_len(), 0, "queue residue after drain at t={now}");
        assert!(
            svc.is_accepting(),
            "drain must release backpressure at t={now}"
        );
        // The polled subscriber keeps up: strict delta stream, no gaps.
        for item in svc.poll(sub).unwrap() {
            match item {
                OutboxItem::Delta(d) => match d.delta {
                    ResultDelta::PairAdded { .. } => live += 1,
                    ResultDelta::PairRemoved { .. } => live -= 1,
                },
                OutboxItem::Gap { dropped } => {
                    panic!("subscriber fell behind at t={now} (dropped {dropped})")
                }
            }
        }
        assert_eq!(
            live,
            svc.result_at(now).len() as i64,
            "replayed live-pair count diverges at t={now}"
        );
    }

    let snap = svc.metrics_snapshot();
    // Backpressure flipped once per burst tick — periodic, not drifting.
    assert_eq!(
        snap.counter("stream.backpressure.engaged"),
        Some(burst_ticks),
        "one engage per burst tick"
    );
    assert_eq!(
        snap.counter("stream.backpressure.released"),
        Some(burst_ticks),
        "one release per burst tick"
    );
    // Conservation: every accepted update was either applied (one
    // latency sample each) or shed by supersession; nothing pending.
    let applied = snap
        .histogram("stream.ingest.latency_ns")
        .expect("ingest latency histogram")
        .count;
    assert_eq!(
        accepted,
        applied + svc.shed_dropped_stale(),
        "conservation: accepted != applied + shed"
    );
    assert_eq!(
        svc.shed_dropped_stale(),
        burst_ticks * SUPERSEDE_PER_BURST as u64,
        "every burst-tail update supersedes exactly one pending update"
    );
    assert!(accepted >= u64::from(TICKS) * STEADY as u64, "vacuous soak");
}
