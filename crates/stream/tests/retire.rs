//! Object retirement and the bounded ingest translation map.
//!
//! PR 6 made the ingest queue's per-object apply-tick translation map
//! *persistent* — entries must outlive drains because the next update
//! for an object may come a full `T_M` later. The cost was a map that
//! only ever grew: an object deleted upstream kept its stamp forever.
//! [`StreamService::retire_object`] is the pruning path; these tests
//! pin that it bounds the map (gauge included), removes the object's
//! pairs from the live answer, refuses unsound retirements, and
//! survives WAL recovery.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_geom::{MovingRect, Rect, Time};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{
    IngestOutcome, OutboxItem, StreamConfig, StreamError, StreamService, SubscriptionFilter,
};
use cij_tpr::{ObjectId, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

fn factory(
    cfg: &EngineConfig,
    a: &[MovingObject],
    b: &[MovingObject],
    start: Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    );
    Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, start)?))
}

fn obj(id: u64, x: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        mbr: MovingRect::stationary(Rect::new([x, 0.0], [x + 1.0, 1.0]), 0.0),
    }
}

/// Four A-objects squarely overlapping four B-objects: pairs
/// (i, 100 + i) are active from the start.
fn sets() -> (Vec<MovingObject>, Vec<MovingObject>) {
    let a = (1..=4).map(|i| obj(i, i as f64 * 10.0)).collect();
    let b = (1..=4).map(|i| obj(100 + i, i as f64 * 10.0)).collect();
    (a, b)
}

/// An in-place nudge for `id`: same overlap, fresh trajectory record.
fn nudge(id: u64, x: f64, old: &MovingRect, last_update: Time) -> ObjectUpdate {
    ObjectUpdate {
        id: ObjectId(id),
        set: SetTag::A,
        old_mbr: *old,
        last_update,
        new_mbr: MovingRect::stationary(Rect::new([x + 0.1, 0.0], [x + 1.1, 1.0]), 0.0),
    }
}

struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("cij-retire-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn retire_prunes_translation_map_and_live_pairs() {
    let (a, b) = sets();
    let config = StreamConfig::builder()
        .engine(EngineConfig::builder().metrics(true).build())
        .build();
    let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).expect("service");
    let sub = svc.subscribe(SubscriptionFilter::All).expect("subscribe");
    svc.advance_to(1.0).expect("advance");
    let _ = svc.poll(sub); // drain the initial adds
    assert_eq!(svc.translation_entries(), 0, "no updates applied yet");

    // One update per A-object: every one earns a translation entry.
    for (i, o) in a.iter().enumerate() {
        let u = nudge(o.id.0, (i + 1) as f64 * 10.0, &o.mbr, 0.0);
        assert_eq!(svc.submit(u, 2.0), IngestOutcome::Accepted);
    }
    svc.advance_to(2.0).expect("advance");
    let _ = svc.poll(sub);
    assert_eq!(svc.translation_entries(), 4);

    // Retiring an updated object prunes its entry and its pairs.
    assert!(svc.retire_object(ObjectId(1)).expect("retire"));
    assert_eq!(svc.translation_entries(), 3);
    let deltas = svc.advance_to(3.0).expect("advance");
    assert!(
        deltas
            .iter()
            .any(|d| !d.delta.is_add() && d.delta.pair().0 == ObjectId(1)),
        "retirement must surface as a PairRemoved delta, got {deltas:?}"
    );
    assert!(
        svc.result_at(3.0)
            .iter()
            .all(|p| p.0 != ObjectId(1) && p.1 != ObjectId(1)),
        "retired object still in the answer"
    );
    let items = svc.poll(sub).expect("poll");
    assert!(
        items.iter().any(|i| matches!(
            i,
            OutboxItem::Delta(s) if !s.delta.is_add() && s.delta.pair().0 == ObjectId(1)
        )),
        "subscriber missed the retirement removal"
    );

    // A never-updated B-object retires from its genesis bucket.
    assert!(svc.retire_object(ObjectId(104)).expect("retire genesis"));
    assert!(
        svc.result_at(3.0).iter().all(|p| p.1 != ObjectId(104)),
        "retired genesis object still in the answer"
    );

    // Unknown object: a clean `false`, twice in a row.
    assert!(!svc.retire_object(ObjectId(999)).expect("unknown"));
    assert!(!svc.retire_object(ObjectId(1)).expect("already retired"));

    // The gauge mirrors the map.
    let snap = svc.metrics_snapshot();
    assert_eq!(
        snap.gauge("stream.ingest.translation_entries"),
        Some(svc.translation_entries() as i64)
    );
    assert_eq!(snap.counter("stream.objects.retired"), Some(2));
}

#[test]
fn retire_refuses_while_an_update_is_pending() {
    let (a, b) = sets();
    let mut svc = StreamService::new(StreamConfig::default(), &a, &b, 0.0, &factory).expect("svc");
    svc.advance_to(1.0).expect("advance");
    let u = nudge(2, 20.0, &a[1].mbr, 0.0);
    assert_eq!(svc.submit(u, 2.0), IngestOutcome::Accepted);
    // The pending update's stamp points at tick 2.0, where no index
    // entry exists yet — retirement now would delete the wrong bucket.
    let err = svc.retire_object(ObjectId(2)).expect_err("must refuse");
    assert!(matches!(err, StreamError::InvalidConfig(_)), "got {err:?}");
    // Draining the queue makes the same retirement legal.
    svc.advance_to(2.0).expect("advance");
    assert!(svc.retire_object(ObjectId(2)).expect("retire"));
}

/// The unbounded-growth regression: rounds of update-then-retire churn
/// must leave the translation map bounded by the *live updated*
/// population — never the cumulative count of objects ever touched.
#[test]
fn translation_map_stays_bounded_under_retirement_churn() {
    let (a, b) = sets();
    let mut svc = StreamService::new(StreamConfig::default(), &a, &b, 0.0, &factory).expect("svc");
    svc.advance_to(1.0).expect("advance");

    let mut current: HashMap<u64, (MovingRect, Time)> =
        a.iter().map(|o| (o.id.0, (o.mbr, 0.0))).collect();
    let mut live: Vec<u64> = a.iter().map(|o| o.id.0).collect();
    let mut tick = 1.0;
    let mut high_water = 0usize;
    while live.len() > 1 {
        // Update every live A-object...
        tick += 1.0;
        for (i, id) in live.iter().enumerate() {
            let (mbr, last) = current[id];
            let u = nudge(*id, (i + 1) as f64 * 10.0, &mbr, last);
            assert_eq!(svc.submit(u, tick), IngestOutcome::Accepted);
            current.insert(*id, (u.new_mbr, tick));
        }
        svc.advance_to(tick).expect("advance");
        high_water = high_water.max(svc.translation_entries());
        // ...then retire one. The map must track the live count exactly.
        let gone = live.pop().expect("nonempty");
        assert!(svc.retire_object(ObjectId(gone)).expect("retire"));
        assert_eq!(
            svc.translation_entries(),
            live.len(),
            "translation map diverged from the live updated population"
        );
    }
    assert_eq!(high_water, 4, "all four objects were stamped at the peak");
    assert_eq!(svc.translation_entries(), 1);
}

#[test]
fn retirement_survives_wal_recovery() {
    let wal = TempWal::new("recovery");
    let (a, b) = sets();
    let config = StreamConfig::builder().wal_path(wal.0.clone()).build();
    let mut svc = StreamService::new(config.clone(), &a, &b, 0.0, &factory).expect("service");
    svc.advance_to(1.0).expect("advance");
    for (i, o) in a.iter().enumerate() {
        let u = nudge(o.id.0, (i + 1) as f64 * 10.0, &o.mbr, 0.0);
        assert_eq!(svc.submit(u, 2.0), IngestOutcome::Accepted);
    }
    svc.advance_to(2.0).expect("advance");
    assert!(svc.retire_object(ObjectId(1)).expect("retire updated"));
    assert!(svc.retire_object(ObjectId(103)).expect("retire genesis"));
    svc.advance_to(3.0).expect("advance");
    let expected_pairs = svc.result_at(3.0);
    let expected_translation = svc.translation_entries();
    drop(svc);

    let (recovered, report) = StreamService::recover(config, &factory).expect("recover");
    assert!(!report.tail_truncated);
    assert_eq!(recovered.result_at(3.0), expected_pairs);
    assert_eq!(recovered.translation_entries(), expected_translation);
    // Retired objects stay retired across the crash: translation entry,
    // track, and set tag are all gone.
    assert!(!recovered
        .result_at(3.0)
        .iter()
        .any(|p| p.0 == ObjectId(1) || p.1 == ObjectId(103)));
    let mut recovered = recovered;
    assert!(
        !recovered.retire_object(ObjectId(1)).expect("gone"),
        "object 1 resurrected by recovery"
    );
}
