//! The typed failure surface of WAL recovery. A crash can leave any
//! bytes on disk; [`StreamService::recover`] must answer every shape of
//! damage with a [`StreamError`] variant — never a panic — and must keep
//! the one *benign* shape (a torn tail, truncated mid-record) out of the
//! error path entirely. Each corruption here is crafted with the real
//! framing (`cij_storage::Wal`), so the CRC layer passes and the damage
//! reaches the journal decoder it is aimed at.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, Wal};
use cij_stream::{IngestOutcome, StreamConfig, StreamError, StreamService, SubscriptionFilter};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, Distribution, MovingObject, Params, UpdateStream};

fn params(seed: u64) -> Params {
    Params {
        dataset_size: 60,
        distribution: Distribution::Uniform,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

fn factory(
    cfg: &EngineConfig,
    a: &[MovingObject],
    b: &[MovingObject],
    start: Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    );
    Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, start)?))
}

/// A WAL path in the system temp dir, removed on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("cij-recovery-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn config_with(path: Option<PathBuf>) -> StreamConfig {
    let mut builder = StreamConfig::builder()
        .batch_capacity(1 << 12)
        .outbox_capacity(1 << 12);
    if let Some(path) = path {
        builder = builder.wal_path(path);
    }
    builder.build()
}

/// Runs a short journaled life and returns its durable records
/// (genesis first, then at least one batch), for splicing into
/// corrupted journals.
fn durable_records(wal: &TempWal, seed: u64) -> Vec<Vec<u8>> {
    let p = params(seed);
    let (a, b) = generate_pair(&p, 0.0);
    let config = config_with(Some(wal.0.clone()));
    let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).expect("service");
    let _sub = svc.subscribe(SubscriptionFilter::All).expect("subscribe");
    let mut stream = UpdateStream::new(&p, &a, &b, 0.0);
    for tick in 1..=10u32 {
        let now = Time::from(tick);
        for u in stream.tick(now) {
            assert_eq!(svc.submit(u, now), IngestOutcome::Accepted);
        }
        svc.advance_to(now).expect("advance");
    }
    drop(svc);
    let (_, recovery) = Wal::open(&wal.0).expect("reopen journal");
    assert!(!recovery.tail_corrupt, "clean shutdown left a torn tail");
    assert!(
        recovery.records.len() >= 2,
        "need a genesis plus at least one batch record"
    );
    recovery.records
}

/// Writes `records` as a fresh, correctly framed journal at `path`.
fn write_journal(path: &Path, records: &[Vec<u8>]) {
    let mut wal = Wal::create(path).expect("create journal");
    for r in records {
        wal.append(r).expect("append");
    }
    wal.sync().expect("sync");
}

#[test]
fn recover_without_wal_path_is_a_typed_error() {
    let Err(err) = StreamService::recover(config_with(None), &factory) else {
        panic!("recovery must fail");
    };
    assert!(matches!(err, StreamError::MissingWalPath), "got {err:?}");
}

#[test]
fn recover_empty_journal_reports_missing_genesis() {
    let wal = TempWal::new("empty");
    write_journal(&wal.0, &[]);
    let Err(err) = StreamService::recover(config_with(Some(wal.0.clone())), &factory) else {
        panic!("recovery must fail");
    };
    match err {
        StreamError::CorruptJournal(msg) => {
            assert!(msg.contains("genesis"), "unhelpful message: {msg}");
        }
        other => panic!("expected CorruptJournal, got {other:?}"),
    }
}

#[test]
fn recover_undecodable_record_is_corrupt_not_a_panic() {
    // A frame whose CRC is valid but whose payload is garbage: the
    // storage layer accepts it, the journal decoder must reject it.
    let wal = TempWal::new("garbage");
    write_journal(&wal.0, &[b"not a journal record".to_vec()]);
    let Err(err) = StreamService::recover(config_with(Some(wal.0.clone())), &factory) else {
        panic!("recovery must fail");
    };
    assert!(matches!(err, StreamError::CorruptJournal(_)), "got {err:?}");
}

#[test]
fn recover_batch_first_journal_reports_missing_genesis() {
    let source = TempWal::new("batch-first-src");
    let records = durable_records(&source, 501);
    // A journal that starts mid-history: real batch record, no genesis.
    let wal = TempWal::new("batch-first");
    write_journal(&wal.0, &records[1..2]);
    let Err(err) = StreamService::recover(config_with(Some(wal.0.clone())), &factory) else {
        panic!("recovery must fail");
    };
    match err {
        StreamError::CorruptJournal(msg) => {
            assert!(msg.contains("genesis"), "unhelpful message: {msg}");
        }
        other => panic!("expected CorruptJournal, got {other:?}"),
    }
}

#[test]
fn recover_duplicate_genesis_is_corrupt() {
    let source = TempWal::new("dup-genesis-src");
    let records = durable_records(&source, 502);
    let doubled = vec![records[0].clone(), records[0].clone()];
    let wal = TempWal::new("dup-genesis");
    write_journal(&wal.0, &doubled);
    let Err(err) = StreamService::recover(config_with(Some(wal.0.clone())), &factory) else {
        panic!("recovery must fail");
    };
    match err {
        StreamError::CorruptJournal(msg) => {
            assert!(msg.contains("duplicate"), "unhelpful message: {msg}");
        }
        other => panic!("expected CorruptJournal, got {other:?}"),
    }
}

#[test]
fn recover_mid_record_corruption_fails_closed_with_crc() {
    // Flip one byte inside the *middle* of a journal (not the tail): the
    // CRC check treats everything from the damage onward as torn, so
    // recovery succeeds on the shorter durable prefix rather than
    // replaying a corrupted batch.
    let wal = TempWal::new("bitflip");
    let records = durable_records(&wal, 503);
    let mut bytes = std::fs::read(&wal.0).expect("read journal");
    // Damage the payload of the *second* record (the first batch): one
    // frame header (8 bytes) + the genesis payload + the next header.
    let target = 8 + records[0].len() + 8 + 1;
    assert!(target < bytes.len(), "journal shorter than two records");
    bytes[target] ^= 0xFF;
    std::fs::write(&wal.0, &bytes).expect("rewrite journal");

    let (svc, report) =
        StreamService::recover(config_with(Some(wal.0.clone())), &factory).expect("recover");
    assert!(report.tail_truncated, "damage must be detected");
    assert!(
        report.batches_replayed < records.len() - 1,
        "the damaged suffix must not be replayed"
    );
    drop(svc);
}

#[test]
fn recovery_metrics_agree_with_the_report() {
    let wal = TempWal::new("metrics");
    let p = params(504);
    let (a, b) = generate_pair(&p, 0.0);
    let config = config_with(Some(wal.0.clone()))
        .to_builder()
        .engine(EngineConfig::builder().metrics(true).build())
        .build();
    let mut svc = StreamService::new(config.clone(), &a, &b, 0.0, &factory).expect("service");
    let mut stream = UpdateStream::new(&p, &a, &b, 0.0);
    let mut journaled = 0usize;
    for tick in 1..=10u32 {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        if !updates.is_empty() {
            journaled += 1;
        }
        for u in updates {
            assert_eq!(svc.submit(u, now), IngestOutcome::Accepted);
        }
        svc.advance_to(now).expect("advance");
    }
    drop(svc);

    let (recovered, report) = StreamService::recover(config, &factory).expect("recover");
    assert_eq!(report.batches_replayed, journaled);
    let snap = recovered.metrics_snapshot();
    assert_eq!(
        snap.counter("stream.recovery.batches_replayed"),
        Some(report.batches_replayed as u64),
        "replay counter disagrees with the report"
    );
    assert!(
        snap.histogram("phase.wal_replay").is_some(),
        "replay must be span-timed"
    );
    assert!(
        snap.counter("stream.wal.appends").is_some(),
        "recovered WAL stats must be registered"
    );
}
