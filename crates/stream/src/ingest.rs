//! The ingestion front-end: a bounded queue that coalesces update
//! events into per-tick batches and applies explicit backpressure.
//!
//! Producers call [`IngestQueue::submit`] and must handle the outcome:
//! [`Accepted`](IngestOutcome::Accepted) enqueues, while
//! [`QueueFull`](IngestOutcome::QueueFull) tells the producer to back
//! off. Acceptance follows a high/low watermark hysteresis — the queue
//! closes when pending updates reach the high watermark and re-opens
//! only once a drain brings it back down to the low watermark, so a
//! saturated service refuses work in long stretches instead of
//! flapping per event.

use std::collections::BTreeMap;

use cij_geom::Time;
use cij_workload::ObjectUpdate;

/// Result of offering one update to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Enqueued; it will be applied when its tick is drained.
    Accepted,
    /// Backpressure: the queue is at or above its high watermark (or at
    /// hard capacity). Retry after the service has drained.
    QueueFull,
    /// The update's tick has already been applied; accepting it would
    /// reorder time. The producer should re-read state and resubmit
    /// against a current tick.
    Stale,
}

/// Tick key with a total order (`f64` itself is not `Ord`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TickKey(Time);

impl Eq for TickKey {}

impl PartialOrd for TickKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TickKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Bounded, tick-coalescing ingestion queue.
#[derive(Debug)]
pub struct IngestQueue {
    batches: BTreeMap<TickKey, Vec<ObjectUpdate>>,
    pending: usize,
    capacity: usize,
    high_watermark: usize,
    low_watermark: usize,
    accepting: bool,
    drained_through: Time,
}

impl IngestQueue {
    /// Creates a queue. Invariants (`low ≤ high ≤ capacity`, nonzero
    /// capacity) are the caller's responsibility —
    /// [`StreamConfig::builder`](crate::StreamConfig::builder) enforces
    /// them.
    #[must_use]
    pub fn new(capacity: usize, high_watermark: usize, low_watermark: usize, now: Time) -> Self {
        Self {
            batches: BTreeMap::new(),
            pending: 0,
            capacity,
            high_watermark,
            low_watermark,
            accepting: true,
            drained_through: now,
        }
    }

    /// Offers one update for tick `at`.
    pub fn submit(&mut self, update: ObjectUpdate, at: Time) -> IngestOutcome {
        if at <= self.drained_through {
            return IngestOutcome::Stale;
        }
        if !self.accepting || self.pending >= self.capacity {
            return IngestOutcome::QueueFull;
        }
        self.batches.entry(TickKey(at)).or_default().push(update);
        self.pending += 1;
        if self.pending >= self.high_watermark {
            self.accepting = false;
        }
        IngestOutcome::Accepted
    }

    /// Removes and returns every batch with tick ≤ `t`, in tick order.
    /// Later submissions for the drained ticks are refused as
    /// [`Stale`](IngestOutcome::Stale).
    pub fn drain_through(&mut self, t: Time) -> Vec<(Time, Vec<ObjectUpdate>)> {
        let mut out = Vec::new();
        while let Some(entry) = self.batches.first_entry() {
            if entry.key().0 > t {
                break;
            }
            let (key, updates) = entry.remove_entry();
            self.pending -= updates.len();
            out.push((key.0, updates));
        }
        if t > self.drained_through {
            self.drained_through = t;
        }
        if !self.accepting && self.pending <= self.low_watermark {
            self.accepting = true;
        }
        out
    }

    /// Pending (queued, unapplied) updates across all ticks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Whether the queue currently accepts submissions.
    #[must_use]
    pub fn is_accepting(&self) -> bool {
        self.accepting
    }

    /// Number of distinct ticks with queued updates.
    #[must_use]
    pub fn pending_ticks(&self) -> usize {
        self.batches.len()
    }

    /// The latest tick already drained (submissions at or before it are
    /// stale).
    #[must_use]
    pub fn drained_through(&self) -> Time {
        self.drained_through
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::{MovingRect, Rect};
    use cij_tpr::ObjectId;
    use cij_workload::SetTag;

    fn update(id: u64) -> ObjectUpdate {
        let mbr = MovingRect::stationary(Rect::new([0.0, 0.0], [1.0, 1.0]), 0.0);
        ObjectUpdate {
            id: ObjectId(id),
            set: SetTag::A,
            old_mbr: mbr,
            last_update: 0.0,
            new_mbr: mbr,
        }
    }

    #[test]
    fn coalesces_per_tick_in_order() {
        let mut q = IngestQueue::new(100, 80, 40, 0.0);
        assert_eq!(q.submit(update(1), 2.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 1.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(3), 2.0), IngestOutcome::Accepted);
        assert_eq!(q.pending_ticks(), 2);
        let drained = q.drain_through(2.0);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 1.0);
        assert_eq!(drained[0].1.len(), 1);
        assert_eq!(drained[1].0, 2.0);
        assert_eq!(drained[1].1.len(), 2);
        // Batch order preserves submission order within the tick.
        assert_eq!(drained[1].1[0].id, ObjectId(1));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_only_takes_due_ticks() {
        let mut q = IngestQueue::new(100, 80, 40, 0.0);
        q.submit(update(1), 1.0);
        q.submit(update(2), 5.0);
        let drained = q.drain_through(3.0);
        assert_eq!(drained.len(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_through(5.0).len(), 1);
    }

    #[test]
    fn watermark_hysteresis() {
        let mut q = IngestQueue::new(10, 4, 2, 0.0);
        for i in 0..4 {
            assert_eq!(q.submit(update(i), 1.0), IngestOutcome::Accepted);
        }
        // Reached the high watermark: closed.
        assert!(!q.is_accepting());
        assert_eq!(q.submit(update(9), 1.0), IngestOutcome::QueueFull);

        // A partial drain that leaves pending above low keeps it closed.
        q.submit_unchecked_for_test(2.0, 3);
        assert_eq!(q.drain_through(1.0).len(), 1);
        assert_eq!(q.len(), 3);
        assert!(!q.is_accepting());
        assert_eq!(q.submit(update(9), 2.5), IngestOutcome::QueueFull);

        // Draining to ≤ low re-opens.
        q.drain_through(2.0);
        assert!(q.is_accepting());
        assert_eq!(q.submit(update(9), 3.0), IngestOutcome::Accepted);
    }

    #[test]
    fn hard_capacity_refuses_even_when_accepting() {
        let mut q = IngestQueue::new(3, 3, 0, 0.0);
        for i in 0..3 {
            assert_eq!(q.submit(update(i), 1.0), IngestOutcome::Accepted);
        }
        assert_eq!(q.submit(update(9), 1.0), IngestOutcome::QueueFull);
    }

    #[test]
    fn stale_ticks_are_refused() {
        let mut q = IngestQueue::new(10, 8, 4, 5.0);
        assert_eq!(q.submit(update(1), 5.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(1), 4.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(1), 6.0), IngestOutcome::Accepted);
        q.drain_through(6.0);
        assert_eq!(q.submit(update(2), 6.0), IngestOutcome::Stale);
        // Draining past empty ticks also advances the stale frontier.
        q.drain_through(9.0);
        assert_eq!(q.submit(update(2), 8.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(2), 10.0), IngestOutcome::Accepted);
    }

    impl IngestQueue {
        /// Test helper: force-enqueue `n` updates at `at`, bypassing
        /// the watermark gate.
        fn submit_unchecked_for_test(&mut self, at: Time, n: usize) {
            for i in 0..n {
                self.batches
                    .entry(TickKey(at))
                    .or_default()
                    .push(update(1000 + i as u64));
                self.pending += 1;
            }
        }
    }
}
