//! The ingestion front-end: a bounded queue that coalesces update
//! events into per-tick batches and applies explicit backpressure.
//!
//! Producers call [`IngestQueue::submit`] and must handle the outcome:
//! [`Accepted`](IngestOutcome::Accepted) enqueues, while
//! [`QueueFull`](IngestOutcome::QueueFull) tells the producer to back
//! off. Acceptance follows a high/low watermark hysteresis — the queue
//! closes when pending updates reach the high watermark and re-opens
//! only once a drain brings it back down to the low watermark, so a
//! saturated service refuses work in long stretches instead of
//! flapping per event.
//!
//! What happens *at* saturation is pluggable: a [`ShedPolicy`] can
//! widen the coalescing window under pressure (`CoalesceHarder`) or
//! supersede an object's stale pending update instead of refusing the
//! fresh one (`DropStalePerObject`) — see the policy docs for the
//! `T_M` soundness argument. Every queued update carries its wall-clock
//! enqueue instant and the tick the producer originally asked for, so
//! the service can report per-update ingest latency and freshness lag.

use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

use cij_geom::Time;
use cij_tpr::ObjectId;
use cij_workload::ObjectUpdate;

use crate::shed::ShedPolicy;

/// Result of offering one update to the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Enqueued; it will be applied when its tick is drained.
    Accepted,
    /// Backpressure: the queue is at or above its high watermark (or at
    /// hard capacity). Retry after the service has drained.
    QueueFull,
    /// The update's tick has already been applied; accepting it would
    /// reorder time. The producer should re-read state and resubmit
    /// against a current tick.
    Stale,
}

/// Tick key with a total order (`f64` itself is not `Ord`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct TickKey(Time);

impl Eq for TickKey {}

impl PartialOrd for TickKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TickKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// One queued update plus its ingestion provenance.
#[derive(Debug, Clone, Copy)]
pub struct QueuedUpdate {
    /// The update to apply (possibly a supersede-merge under
    /// [`ShedPolicy::DropStalePerObject`]).
    pub update: ObjectUpdate,
    /// The tick the producer originally submitted for — differs from
    /// the batch tick only when a policy re-timed the update
    /// (`CoalesceHarder` quantization); the difference is the
    /// freshness lag the service reports.
    pub submitted_for: Time,
    /// Wall-clock instant of acceptance, for ingest-latency histograms.
    pub enqueued: Instant,
}

/// Bounded, tick-coalescing ingestion queue.
#[derive(Debug)]
pub struct IngestQueue {
    batches: BTreeMap<TickKey, Vec<QueuedUpdate>>,
    pending: usize,
    capacity: usize,
    high_watermark: usize,
    low_watermark: usize,
    accepting: bool,
    drained_through: Time,
    policy: ShedPolicy,
    /// Tick of the latest pending update per object — the supersede
    /// index [`ShedPolicy::DropStalePerObject`] resolves against.
    latest_pending: HashMap<ObjectId, TickKey>,
    /// The tick each object's most recent accepted update applies (or
    /// applied) at. The engines bucket an object's index entry by its
    /// *apply* time and locate it for deletion via the next update's
    /// `last_update` field — so whenever the queue re-times an apply
    /// (`CoalesceHarder` quantization) or a producer submits late
    /// (retrying after backpressure), the producer's notion of "when I
    /// last updated" diverges from where the entry actually lives.
    /// [`submit`](Self::submit) translates `last_update` through this
    /// map so the delete always hits the right bucket. Entries persist
    /// across drains (the next update may come `T_M` later) and are
    /// absent for objects still at their genesis insertion.
    applied_stamp: HashMap<ObjectId, Time>,
    shed_dropped_stale: u64,
    shed_coalesced: u64,
}

impl IngestQueue {
    /// Creates a queue with no shedding policy. Invariants
    /// (`low ≤ high ≤ capacity`, nonzero capacity) are the caller's
    /// responsibility —
    /// [`StreamConfig::builder`](crate::StreamConfig::builder) enforces
    /// them.
    #[must_use]
    pub fn new(capacity: usize, high_watermark: usize, low_watermark: usize, now: Time) -> Self {
        Self::with_policy(
            capacity,
            high_watermark,
            low_watermark,
            now,
            ShedPolicy::None,
        )
    }

    /// Creates a queue with an explicit [`ShedPolicy`].
    #[must_use]
    pub fn with_policy(
        capacity: usize,
        high_watermark: usize,
        low_watermark: usize,
        now: Time,
        policy: ShedPolicy,
    ) -> Self {
        Self {
            batches: BTreeMap::new(),
            pending: 0,
            capacity,
            high_watermark,
            low_watermark,
            accepting: true,
            drained_through: now,
            policy,
            latest_pending: HashMap::new(),
            applied_stamp: HashMap::new(),
            shed_dropped_stale: 0,
            shed_coalesced: 0,
        }
    }

    /// Restores one object's apply-tick stamp — used by WAL recovery to
    /// rebuild the [`applied_stamp`](Self::applied_stamp) translation
    /// map from the replayed batches.
    pub(crate) fn note_applied(&mut self, id: ObjectId, at: Time) {
        self.applied_stamp.insert(id, at);
    }

    /// Forgets a retired object's apply-tick stamp. This is what keeps
    /// the translation map bounded by the *live* population instead of
    /// every object that ever existed: entries persist across drains by
    /// design (the next update may come `T_M` later), so deletion is
    /// the only event that may prune them.
    pub fn note_removed(&mut self, id: ObjectId) {
        self.applied_stamp.remove(&id);
    }

    /// The tick the object's most recent accepted update applies (or
    /// applied) at — `None` for objects still at their genesis
    /// insertion (or already retired).
    #[must_use]
    pub fn applied_tick(&self, id: ObjectId) -> Option<Time> {
        self.applied_stamp.get(&id).copied()
    }

    /// Whether the object has a queued-but-unapplied update.
    #[must_use]
    pub fn has_pending(&self, id: ObjectId) -> bool {
        self.latest_pending.contains_key(&id)
    }

    /// Size of the per-object apply-tick translation map (the
    /// `stream.ingest.translation_entries` gauge).
    #[must_use]
    pub fn translation_len(&self) -> usize {
        self.applied_stamp.len()
    }

    /// The tick a submission for `at` actually enqueues at: under
    /// [`ShedPolicy::CoalesceHarder`] with the queue in the pressure
    /// zone (pending ≥ low watermark), ticks are quantized **up** to
    /// the policy's window so more submissions coalesce per batch.
    /// Always ≥ `at`, so the stale frontier is never violated.
    ///
    /// When the object already has a pending update at a *later* tick
    /// (its predecessor was quantized past `at` while this submission
    /// arrives with the pressure gone), the tick is raised to the
    /// pending one's: batches drain in tick order, so enqueuing the
    /// successor earlier would apply it before its predecessor and
    /// break the per-object `old_mbr` delete-chain. Appending to the
    /// predecessor's batch preserves FIFO within the batch and hence
    /// per-object order end to end.
    fn effective_tick(&self, id: ObjectId, at: Time) -> Time {
        let ShedPolicy::CoalesceHarder { window } = self.policy else {
            return at;
        };
        let mut tick = at;
        if self.pending >= self.low_watermark {
            tick = ((at / window).ceil() * window).max(at);
        }
        if let Some(p) = self.latest_pending.get(&id) {
            if p.0 > tick {
                tick = p.0;
            }
        }
        tick
    }

    /// Offers one update for tick `at`.
    pub fn submit(&mut self, mut update: ObjectUpdate, at: Time) -> IngestOutcome {
        if at <= self.drained_through {
            return IngestOutcome::Stale;
        }
        // Translate the producer's `last_update` to the tick the
        // object's previous update actually applies at (they diverge
        // when that apply was re-timed or submitted late) — the engines
        // use the field to locate the existing index entry's bucket.
        // A supersede-merge below overrides this with the superseded
        // update's (already translated) stamp.
        if let Some(&stamp) = self.applied_stamp.get(&update.id) {
            update.last_update = stamp;
        }
        let tick = self.effective_tick(update.id, at);
        if !self.accepting || self.pending >= self.capacity {
            if self.policy == ShedPolicy::DropStalePerObject && self.try_supersede(update, tick, at)
            {
                return IngestOutcome::Accepted;
            }
            return IngestOutcome::QueueFull;
        }
        self.enqueue(update, tick, at);
        IngestOutcome::Accepted
    }

    /// Supersedes the object's latest pending update with `update` at
    /// tick `tick` — the `DropStalePerObject` shed path. The merged
    /// update inherits the superseded one's `old_mbr`/`last_update`, so
    /// applying it still deletes exactly what the index holds (the
    /// pending update was never applied). Pending count is unchanged
    /// (one out, one in), so the watermark state cannot flip here.
    ///
    /// Returns `false` (caller refuses as `QueueFull`) when the object
    /// has no pending update, or its pending update sits at a *later*
    /// tick than this submission (the pending one is newer).
    fn try_supersede(&mut self, update: ObjectUpdate, tick: Time, submitted_for: Time) -> bool {
        let Some(&pending_tick) = self.latest_pending.get(&update.id) else {
            return false;
        };
        if pending_tick.0 > tick {
            return false;
        }
        let batch = self
            .batches
            .get_mut(&pending_tick)
            .expect("supersede index points at a live batch");
        let pos = batch
            .iter()
            .rposition(|q| q.update.id == update.id)
            .expect("supersede index tracks batch membership");
        let superseded = batch.remove(pos);
        if batch.is_empty() {
            self.batches.remove(&pending_tick);
        }
        self.pending -= 1;
        self.shed_dropped_stale += 1;
        let merged = ObjectUpdate {
            old_mbr: superseded.update.old_mbr,
            last_update: superseded.update.last_update,
            ..update
        };
        self.enqueue(merged, tick, submitted_for);
        true
    }

    fn enqueue(&mut self, update: ObjectUpdate, tick: Time, submitted_for: Time) {
        if tick > submitted_for {
            // Only CoalesceHarder re-times ticks; count it on actual
            // acceptance so refused submissions never inflate the stat.
            self.shed_coalesced += 1;
        }
        let key = TickKey(tick);
        self.batches.entry(key).or_default().push(QueuedUpdate {
            update,
            submitted_for,
            enqueued: Instant::now(),
        });
        let slot = self.latest_pending.entry(update.id).or_insert(key);
        if tick >= slot.0 {
            *slot = key;
        }
        // The enqueued update will apply at `tick`; the object's next
        // update must name that tick to find the entry it replaces.
        self.applied_stamp.insert(update.id, tick);
        self.pending += 1;
        if self.pending >= self.high_watermark {
            self.accepting = false;
        }
    }

    /// Removes and returns every batch with tick ≤ `t`, in tick order.
    /// Later submissions for the drained ticks are refused as
    /// [`Stale`](IngestOutcome::Stale).
    pub fn drain_through(&mut self, t: Time) -> Vec<(Time, Vec<QueuedUpdate>)> {
        let mut out = Vec::new();
        while let Some(entry) = self.batches.first_entry() {
            if entry.key().0 > t {
                break;
            }
            let (key, updates) = entry.remove_entry();
            self.pending -= updates.len();
            for q in &updates {
                if self.latest_pending.get(&q.update.id) == Some(&key) {
                    self.latest_pending.remove(&q.update.id);
                }
            }
            out.push((key.0, updates));
        }
        if t > self.drained_through {
            self.drained_through = t;
        }
        if !self.accepting && self.pending <= self.low_watermark {
            self.accepting = true;
        }
        out
    }

    /// Pending (queued, unapplied) updates across all ticks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending
    }

    /// Whether nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Whether the queue currently accepts submissions.
    #[must_use]
    pub fn is_accepting(&self) -> bool {
        self.accepting
    }

    /// Number of distinct ticks with queued updates.
    #[must_use]
    pub fn pending_ticks(&self) -> usize {
        self.batches.len()
    }

    /// The latest tick already drained (submissions at or before it are
    /// stale).
    #[must_use]
    pub fn drained_through(&self) -> Time {
        self.drained_through
    }

    /// The queue's shedding policy.
    #[must_use]
    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    /// Pending updates superseded-and-dropped by
    /// [`ShedPolicy::DropStalePerObject`] (cumulative).
    #[must_use]
    pub fn shed_dropped_stale(&self) -> u64 {
        self.shed_dropped_stale
    }

    /// Submissions re-timed onto the coarser grid by
    /// [`ShedPolicy::CoalesceHarder`] (cumulative).
    #[must_use]
    pub fn shed_coalesced(&self) -> u64 {
        self.shed_coalesced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::{MovingRect, Rect};
    use cij_workload::SetTag;

    fn update(id: u64) -> ObjectUpdate {
        let mbr = MovingRect::stationary(Rect::new([0.0, 0.0], [1.0, 1.0]), 0.0);
        ObjectUpdate {
            id: ObjectId(id),
            set: SetTag::A,
            old_mbr: mbr,
            last_update: 0.0,
            new_mbr: mbr,
        }
    }

    /// An update whose old/new trajectories are distinguishable, for
    /// supersede-merge assertions.
    fn chained_update(id: u64, old_x: f64, new_x: f64, last_update: Time) -> ObjectUpdate {
        ObjectUpdate {
            id: ObjectId(id),
            set: SetTag::A,
            old_mbr: MovingRect::stationary(Rect::new([old_x, 0.0], [old_x + 1.0, 1.0]), 0.0),
            last_update,
            new_mbr: MovingRect::stationary(Rect::new([new_x, 0.0], [new_x + 1.0, 1.0]), 0.0),
        }
    }

    fn drained_updates(drained: Vec<(Time, Vec<QueuedUpdate>)>) -> Vec<(Time, Vec<ObjectUpdate>)> {
        drained
            .into_iter()
            .map(|(t, b)| (t, b.into_iter().map(|q| q.update).collect()))
            .collect()
    }

    #[test]
    fn coalesces_per_tick_in_order() {
        let mut q = IngestQueue::new(100, 80, 40, 0.0);
        assert_eq!(q.submit(update(1), 2.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 1.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(3), 2.0), IngestOutcome::Accepted);
        assert_eq!(q.pending_ticks(), 2);
        let drained = drained_updates(q.drain_through(2.0));
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, 1.0);
        assert_eq!(drained[0].1.len(), 1);
        assert_eq!(drained[1].0, 2.0);
        assert_eq!(drained[1].1.len(), 2);
        // Batch order preserves submission order within the tick.
        assert_eq!(drained[1].1[0].id, ObjectId(1));
        assert!(q.is_empty());
    }

    #[test]
    fn drain_only_takes_due_ticks() {
        let mut q = IngestQueue::new(100, 80, 40, 0.0);
        q.submit(update(1), 1.0);
        q.submit(update(2), 5.0);
        let drained = q.drain_through(3.0);
        assert_eq!(drained.len(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.drain_through(5.0).len(), 1);
    }

    #[test]
    fn watermark_hysteresis() {
        let mut q = IngestQueue::new(10, 4, 2, 0.0);
        for i in 0..4 {
            assert_eq!(q.submit(update(i), 1.0), IngestOutcome::Accepted);
        }
        // Reached the high watermark: closed.
        assert!(!q.is_accepting());
        assert_eq!(q.submit(update(9), 1.0), IngestOutcome::QueueFull);

        // A partial drain that leaves pending above low keeps it closed.
        q.submit_unchecked_for_test(2.0, 3);
        assert_eq!(q.drain_through(1.0).len(), 1);
        assert_eq!(q.len(), 3);
        assert!(!q.is_accepting());
        assert_eq!(q.submit(update(9), 2.5), IngestOutcome::QueueFull);

        // Draining to ≤ low re-opens.
        q.drain_through(2.0);
        assert!(q.is_accepting());
        assert_eq!(q.submit(update(9), 3.0), IngestOutcome::Accepted);
    }

    #[test]
    fn hard_capacity_refuses_even_when_accepting() {
        let mut q = IngestQueue::new(3, 3, 0, 0.0);
        for i in 0..3 {
            assert_eq!(q.submit(update(i), 1.0), IngestOutcome::Accepted);
        }
        assert_eq!(q.submit(update(9), 1.0), IngestOutcome::QueueFull);
    }

    #[test]
    fn stale_ticks_are_refused() {
        let mut q = IngestQueue::new(10, 8, 4, 5.0);
        assert_eq!(q.submit(update(1), 5.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(1), 4.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(1), 6.0), IngestOutcome::Accepted);
        q.drain_through(6.0);
        assert_eq!(q.submit(update(2), 6.0), IngestOutcome::Stale);
        // Draining past empty ticks also advances the stale frontier.
        q.drain_through(9.0);
        assert_eq!(q.submit(update(2), 8.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(2), 10.0), IngestOutcome::Accepted);
    }

    // ------------------------------------------------------------------
    // Watermark-hysteresis edge cases
    // ------------------------------------------------------------------

    #[test]
    fn degenerate_low_equals_high_watermark() {
        // low == high == 4: the queue closes at 4 pending and re-opens
        // on the very next drain call even if nothing was removed
        // (pending 4 ≤ low 4). Degenerate hysteresis is defined, not UB.
        let mut q = IngestQueue::new(10, 4, 4, 0.0);
        for i in 0..4 {
            assert_eq!(q.submit(update(i), 2.0), IngestOutcome::Accepted);
        }
        assert!(!q.is_accepting());
        assert_eq!(q.submit(update(9), 2.0), IngestOutcome::QueueFull);
        // A drain that removes nothing (no batch due at 1.0) still
        // re-opens: pending == low.
        assert!(q.drain_through(1.0).is_empty());
        assert!(q.is_accepting());
        assert_eq!(q.len(), 4);
        // And the next accepted submission immediately closes it again.
        assert_eq!(q.submit(update(9), 2.0), IngestOutcome::Accepted);
        assert!(!q.is_accepting());
    }

    #[test]
    fn stale_frontier_advance_and_reopen_on_same_drain() {
        // One drain call both re-opens the queue (watermark crossing)
        // and advances the stale frontier past tick 3: a producer whose
        // submission was just refused cannot blindly resubmit for the
        // same tick after the queue reopens — staleness wins over
        // acceptance.
        let mut q = IngestQueue::new(10, 3, 1, 0.0);
        for i in 0..3 {
            assert_eq!(q.submit(update(i), 3.0), IngestOutcome::Accepted);
        }
        assert!(!q.is_accepting());
        assert_eq!(q.submit(update(7), 3.0), IngestOutcome::QueueFull);
        let drained = q.drain_through(3.0);
        assert_eq!(drained.len(), 1);
        assert!(q.is_accepting());
        // Reopened, but tick 3 is now behind the frontier: Stale, not
        // Accepted — the stale check precedes the acceptance check.
        assert_eq!(q.submit(update(7), 3.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(7), 4.0), IngestOutcome::Accepted);
    }

    #[test]
    fn reentry_flapping_alternates_per_submit_when_degenerate() {
        // With low == high == 1 every accepted submission closes the
        // queue and every drain re-opens it: maximal flapping. Pin the
        // exact flip sequence (the service-level test pins the cij-obs
        // flip counters for the same pattern).
        let mut q = IngestQueue::new(4, 1, 1, 0.0);
        let mut flips = 0u32;
        let mut was = q.is_accepting();
        for tick in 1..=6 {
            let t = f64::from(tick);
            assert_eq!(q.submit(update(tick as u64), t), IngestOutcome::Accepted);
            if q.is_accepting() != was {
                flips += 1;
                was = q.is_accepting();
            }
            assert!(!q.is_accepting(), "tick {tick}: closed after submit");
            q.drain_through(t);
            if q.is_accepting() != was {
                flips += 1;
                was = q.is_accepting();
            }
            assert!(q.is_accepting(), "tick {tick}: reopened after drain");
        }
        assert_eq!(flips, 12, "one engage + one release per tick");
    }

    // ------------------------------------------------------------------
    // Shed policies
    // ------------------------------------------------------------------

    #[test]
    fn coalesce_harder_quantizes_only_under_pressure() {
        let mut q =
            IngestQueue::with_policy(100, 80, 2, 0.0, ShedPolicy::CoalesceHarder { window: 4.0 });
        // Below the low watermark: ticks pass through untouched.
        assert_eq!(q.submit(update(1), 1.5), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 2.5), IngestOutcome::Accepted);
        assert_eq!(q.pending_ticks(), 2);
        assert_eq!(q.shed_coalesced(), 0);
        // At/above low: quantized up to the next multiple of 4.
        assert_eq!(q.submit(update(3), 2.6), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(4), 3.1), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(5), 4.0), IngestOutcome::Accepted); // exact multiple: no re-time
        assert_eq!(q.shed_coalesced(), 2);
        let drained = q.drain_through(4.0);
        // 1.5, 2.5, and one coalesced batch at 4.0 (2.6, 3.1, 4.0).
        assert_eq!(drained.len(), 3);
        let last = &drained[2];
        assert_eq!(last.0, 4.0);
        assert_eq!(last.1.len(), 3);
        // Provenance: the re-timed updates remember their original tick.
        assert_eq!(last.1[0].submitted_for, 2.6);
        assert_eq!(last.1[2].submitted_for, 4.0);
    }

    #[test]
    fn coalesce_harder_never_reorders_within_an_object() {
        let mut q =
            IngestQueue::with_policy(100, 80, 2, 0.0, ShedPolicy::CoalesceHarder { window: 4.0 });
        // Two fillers push pending to the low watermark so the next
        // submission gets quantized.
        assert_eq!(q.submit(update(8), 1.2), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(9), 1.3), IngestOutcome::Accepted);
        let u1 = chained_update(1, 0.0, 10.0, 0.0);
        assert_eq!(q.submit(u1, 1.5), IngestOutcome::Accepted);
        assert_eq!(q.shed_coalesced(), 1, "u1 re-timed from 1.5 to 4.0");
        // Draining the fillers drops pending back below the low
        // watermark — quantization is off again, but object 1 still has
        // a pending update parked at tick 4.0.
        assert_eq!(q.drain_through(2.0).len(), 2);
        // A successor for object 1 at 2.5 would naively batch at 2.5,
        // BEFORE its predecessor at 4.0 — the clamp must pull it up to
        // the predecessor's tick so apply order matches submit order.
        let u2 = chained_update(1, 10.0, 20.0, 1.5);
        assert_eq!(q.submit(u2, 2.5), IngestOutcome::Accepted);
        assert_eq!(q.shed_coalesced(), 2, "u2 re-timed by the clamp");
        let drained = q.drain_through(4.0);
        assert_eq!(drained.len(), 1, "both land in the tick-4.0 batch");
        let (tick, batch) = &drained[0];
        assert_eq!(*tick, 4.0);
        assert_eq!(batch.len(), 2);
        // Predecessor first, successor second; provenance preserved.
        assert_eq!(batch[0].update.last_update, 0.0);
        assert_eq!(batch[0].submitted_for, 1.5);
        // The successor's `last_update` was translated from the
        // producer's 1.5 to the predecessor's *effective* apply tick:
        // the engines bucket entries by apply time, so the delete must
        // be pointed at 4.0, where u1's entry actually lives.
        assert_eq!(batch[1].update.last_update, 4.0);
        assert_eq!(batch[1].submitted_for, 2.5);
    }

    #[test]
    fn late_resubmission_is_translated_to_the_actual_apply_tick() {
        // Producer-side retry after backpressure: u1 for object 1 is
        // accepted at tick 2.0 (applying at 2.0). The producer's next
        // update was generated believing "I last updated at 2.0" — but
        // if u1 itself had been delayed (submitted late at 5.0 after a
        // refusal), the successor's stamp must follow the apply tick.
        let mut q = IngestQueue::new(100, 80, 40, 0.0);
        // u1 generated for tick 2.0 but only submitted (retried) at 5.0.
        let u1 = chained_update(1, 0.0, 10.0, 0.0);
        assert_eq!(q.submit(u1, 5.0), IngestOutcome::Accepted);
        // The successor carries the producer's stamp (2.0, when it
        // *generated* u1) — translated to 5.0, where u1's entry lives.
        let u2 = chained_update(1, 10.0, 20.0, 2.0);
        assert_eq!(q.submit(u2, 6.0), IngestOutcome::Accepted);
        let drained = q.drain_through(6.0);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].1[0].update.last_update, 5.0);
        // The map persists across drains: a third update long after
        // both applied still resolves against tick 6.0.
        let u3 = chained_update(1, 20.0, 30.0, 3.0);
        assert_eq!(q.submit(u3, 50.0), IngestOutcome::Accepted);
        assert_eq!(q.drain_through(50.0)[0].1[0].update.last_update, 6.0);
    }

    #[test]
    fn equal_watermarks_collapse_hysteresis_to_a_threshold() {
        // low == high: the hysteresis band is empty, so ANY drain call
        // reopens the queue — even one that removed nothing — and the
        // next accepted submission closes it again. The flap rate
        // degrades to the submit/drain cadence, exactly as documented.
        let mut q = IngestQueue::new(10, 3, 3, 0.0);
        assert_eq!(q.submit(update(1), 1.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 1.5), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(3), 2.0), IngestOutcome::Accepted);
        assert!(!q.is_accepting(), "pending == high must close");
        // Drains nothing (every batch sits past 0.5) — but pending ≤
        // low, so the queue reopens anyway.
        assert!(q.drain_through(0.5).is_empty());
        assert!(q.is_accepting(), "empty band: any drain reopens");
        assert_eq!(q.submit(update(4), 2.5), IngestOutcome::Accepted);
        assert!(!q.is_accepting(), "4 ≥ high closes again");
        assert_eq!(q.drain_through(2.5).len(), 4);
        assert!(q.is_accepting());
    }

    #[test]
    fn stale_frontier_advance_and_reopening_share_one_drain() {
        // A single drain_through call both advances the stale frontier
        // and releases backpressure. Afterwards the frontier must win:
        // a submission at (or before) the drained tick is Stale, never
        // Accepted, even though the queue just reopened.
        let mut q = IngestQueue::new(4, 2, 1, 0.0);
        assert_eq!(q.submit(update(1), 1.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 2.0), IngestOutcome::Accepted);
        assert!(!q.is_accepting());
        assert_eq!(q.drain_through(2.0).len(), 2);
        assert!(q.is_accepting(), "one call: frontier forward + reopen");
        assert_eq!(q.submit(update(3), 2.0), IngestOutcome::Stale);
        assert_eq!(q.submit(update(3), 1.5), IngestOutcome::Stale);
        assert_eq!(q.submit(update(3), 2.1), IngestOutcome::Accepted);
    }

    #[test]
    fn stale_beats_supersession_and_supersession_beats_queue_full() {
        // Refusal precedence on a closed queue under DropStalePerObject:
        // the stale frontier is checked first (a drained tick can never
        // be re-entered, not even by superseding), then supersession
        // admissibility (pending tick ≤ submission tick), then
        // QueueFull.
        let mut q = IngestQueue::with_policy(4, 2, 1, 0.0, ShedPolicy::DropStalePerObject);
        assert_eq!(q.submit(update(1), 1.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 2.0), IngestOutcome::Accepted);
        assert_eq!(q.drain_through(2.0).len(), 2);
        assert_eq!(q.submit(update(1), 3.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 3.0), IngestOutcome::Accepted);
        assert!(!q.is_accepting());
        // Stale wins even though object 2 has a pending update it could
        // otherwise supersede.
        assert_eq!(q.submit(update(2), 2.0), IngestOutcome::Stale);
        // Fresh but EARLIER than the pending tick: supersession refused
        // (the pending update is newer), so the closed queue says full.
        assert_eq!(q.submit(update(2), 2.5), IngestOutcome::QueueFull);
        // Fresh and at/after the pending tick: superseded.
        assert_eq!(q.submit(update(2), 3.5), IngestOutcome::Accepted);
        assert_eq!(q.shed_dropped_stale(), 1);
        // Supersession keeps pending constant: the closed queue must
        // NOT reopen from it (the watermark state cannot flip here).
        assert!(
            !q.is_accepting(),
            "supersession must not release backpressure"
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn drop_stale_supersedes_latest_pending_and_chains_old_mbr() {
        let mut q = IngestQueue::with_policy(4, 2, 1, 0.0, ShedPolicy::DropStalePerObject);
        // Chain for object 1: A(0)→B at tick 1, then B→C at tick 2.
        assert_eq!(
            q.submit(chained_update(1, 0.0, 10.0, 0.0), 1.0),
            IngestOutcome::Accepted
        );
        assert_eq!(
            q.submit(chained_update(2, 50.0, 60.0, 0.0), 1.0),
            IngestOutcome::Accepted
        );
        assert!(!q.is_accepting(), "high watermark reached");
        // Closed — but object 1 has a pending update, so the fresh one
        // supersedes it instead of being refused.
        assert_eq!(
            q.submit(chained_update(1, 10.0, 20.0, 1.0), 2.0),
            IngestOutcome::Accepted
        );
        assert_eq!(q.shed_dropped_stale(), 1);
        assert_eq!(q.len(), 2, "supersede keeps pending count unchanged");
        // Object 3 has nothing pending: refused.
        assert_eq!(
            q.submit(chained_update(3, 0.0, 1.0, 0.0), 2.0),
            IngestOutcome::QueueFull
        );
        let drained = drained_updates(q.drain_through(2.0));
        let all: Vec<ObjectUpdate> = drained.into_iter().flat_map(|(_, b)| b).collect();
        assert_eq!(all.len(), 2);
        let merged = all.iter().find(|u| u.id == ObjectId(1)).unwrap();
        // The merged update deletes what the index holds (A, from the
        // superseded update) and inserts the newest trajectory (C).
        assert_eq!(merged.old_mbr.at(0.0).lo[0], 0.0);
        assert_eq!(merged.last_update, 0.0);
        assert_eq!(merged.new_mbr.at(0.0).lo[0], 20.0);
        assert!(q.is_empty());
        assert!(q.latest_pending.is_empty(), "supersede index fully drained");
    }

    #[test]
    fn drop_stale_refuses_when_pending_is_newer() {
        let mut q = IngestQueue::with_policy(2, 2, 0, 0.0, ShedPolicy::DropStalePerObject);
        assert_eq!(q.submit(update(1), 5.0), IngestOutcome::Accepted);
        assert_eq!(q.submit(update(2), 5.0), IngestOutcome::Accepted);
        assert!(!q.is_accepting());
        // Out-of-order arrival for an *earlier* tick than the pending
        // update: superseding backwards would reorder time — refuse.
        assert_eq!(q.submit(update(1), 3.0), IngestOutcome::QueueFull);
        assert_eq!(q.shed_dropped_stale(), 0);
    }

    #[test]
    fn drop_stale_chains_across_multiple_pendings() {
        // Object 1 pending at ticks 1 (A→B) and 2 (B→C); the supersede
        // at tick 3 (C→D) must merge with the *latest* pending (tick 2),
        // leaving the tick-1 update untouched: the applied sequence is
        // then A→B at 1, B→D at 3 — the delete-chain stays intact.
        let mut q = IngestQueue::with_policy(3, 3, 0, 0.0, ShedPolicy::DropStalePerObject);
        assert_eq!(
            q.submit(chained_update(1, 0.0, 10.0, 0.0), 1.0),
            IngestOutcome::Accepted
        );
        assert_eq!(
            q.submit(chained_update(1, 10.0, 20.0, 1.0), 2.0),
            IngestOutcome::Accepted
        );
        assert_eq!(
            q.submit(chained_update(9, 0.0, 1.0, 0.0), 1.0),
            IngestOutcome::Accepted
        );
        assert!(!q.is_accepting(), "at hard capacity");
        assert_eq!(
            q.submit(chained_update(1, 20.0, 30.0, 2.0), 3.0),
            IngestOutcome::Accepted
        );
        let drained = drained_updates(q.drain_through(3.0));
        let ones: Vec<&ObjectUpdate> = drained
            .iter()
            .flat_map(|(_, b)| b.iter())
            .filter(|u| u.id == ObjectId(1))
            .collect();
        assert_eq!(ones.len(), 2);
        assert_eq!(ones[0].old_mbr.at(0.0).lo[0], 0.0); // A→B untouched
        assert_eq!(ones[1].old_mbr.at(0.0).lo[0], 10.0); // B→D merged
        assert_eq!(ones[1].new_mbr.at(0.0).lo[0], 30.0);
    }

    impl IngestQueue {
        /// Test helper: force-enqueue `n` updates at `at`, bypassing
        /// the admission gate (`enqueue` still applies the high-water
        /// closing rule, which is what the hysteresis tests rely on).
        fn submit_unchecked_for_test(&mut self, at: Time, n: usize) {
            for i in 0..n {
                self.enqueue(update(1000 + i as u64), at, at);
            }
        }
    }
}
