//! Load-shedding policies: what the ingestion queue does *instead of*
//! just refusing work when backpressure engages.
//!
//! The paper's maximum-update-interval contract (`T_M`, §II) is what
//! makes shedding sound at all: an object's index entry is fully
//! determined by its **latest** applied update — the engines delete the
//! previously registered trajectory (`old_mbr`) and insert the new one,
//! so any pending-but-unapplied intermediate update contributes nothing
//! to the post-tick result set as long as the delete-chain stays
//! intact. [`ShedPolicy::DropStalePerObject`] exploits exactly that:
//! superseding a pending update chains its `old_mbr`/`last_update` into
//! the replacement, so the merged update still deletes what the index
//! actually holds (see DESIGN.md §8 for the full soundness argument).
//!
//! The other two policies trade different currencies:
//! [`CoalesceHarder`](ShedPolicy::CoalesceHarder) spends *freshness*
//! (updates are re-timed onto a coarser tick grid, so a saturated
//! service runs fewer apply/extract cycles), and
//! [`DegradeToResync`](ShedPolicy::DegradeToResync) spends *delivery
//! granularity* (per-delta fan-out is suspended during saturation and
//! every subscriber is resynced from a snapshot at recovery, with exact
//! gap accounting).

use cij_geom::Time;

/// What the service sheds when the ingest queue saturates.
///
/// `None` preserves the pre-policy behavior bit-for-bit: the watermark
/// hysteresis flips the accepting flag and saturated producers see
/// [`QueueFull`](crate::IngestOutcome::QueueFull), nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ShedPolicy {
    /// No shedding: refuse with `QueueFull` while closed (default).
    #[default]
    None,
    /// While the queue is under pressure (pending at or above the *low*
    /// watermark), quantize submission ticks **up** to multiples of
    /// `window`, widening the per-tick coalescing so a drain runs fewer
    /// apply/extract cycles. Updates are applied late (freshness lag,
    /// recorded in `stream.freshness.lag_milliticks`) but none are
    /// dropped; admission control is unchanged.
    CoalesceHarder {
        /// Coalescing grid in ticks (must be positive). Submissions for
        /// tick `t` enqueue at `ceil(t / window) · window`.
        window: Time,
    },
    /// When a submission would be refused (queue closed or at hard
    /// capacity), keep only the newest pending update per object: the
    /// arriving update *supersedes* the object's latest pending one,
    /// inheriting its `old_mbr`/`last_update` so the index delete-chain
    /// stays intact. Sound under `T_M`: the post-tick result set is
    /// bit-identical to applying every update (the lockstep tests prove
    /// it). Objects with no pending update still see `QueueFull`.
    DropStalePerObject,
    /// Queue admission behaves like [`None`](ShedPolicy::None), but
    /// while backpressure is engaged the service suspends per-delta
    /// subscriber delivery (each suppressed delivery is counted into
    /// the subscriber's exact gap counter) and, when the queue reopens,
    /// force-resyncs every subscriber from a catch-up snapshot.
    DegradeToResync,
}

impl ShedPolicy {
    /// Whether this policy's parameters are usable
    /// (`CoalesceHarder.window` must be positive and finite).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        match self {
            Self::CoalesceHarder { window } => window.is_finite() && *window > 0.0,
            _ => true,
        }
    }

    /// Short stable label for reports and benchmark JSON.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::None => "none",
            Self::CoalesceHarder { .. } => "coalesce_harder",
            Self::DropStalePerObject => "drop_stale_per_object",
            Self::DegradeToResync => "degrade_to_resync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity() {
        assert!(ShedPolicy::None.is_valid());
        assert!(ShedPolicy::DropStalePerObject.is_valid());
        assert!(ShedPolicy::DegradeToResync.is_valid());
        assert!(ShedPolicy::CoalesceHarder { window: 2.0 }.is_valid());
        assert!(!ShedPolicy::CoalesceHarder { window: 0.0 }.is_valid());
        assert!(!ShedPolicy::CoalesceHarder { window: -1.0 }.is_valid());
        assert!(!ShedPolicy::CoalesceHarder { window: f64::NAN }.is_valid());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ShedPolicy::None.label(), "none");
        assert_eq!(
            ShedPolicy::CoalesceHarder { window: 4.0 }.label(),
            "coalesce_harder"
        );
        assert_eq!(
            ShedPolicy::DropStalePerObject.label(),
            "drop_stale_per_object"
        );
        assert_eq!(ShedPolicy::DegradeToResync.label(), "degrade_to_resync");
    }

    #[test]
    fn default_is_none() {
        assert_eq!(ShedPolicy::default(), ShedPolicy::None);
    }
}
