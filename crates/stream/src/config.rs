//! Service configuration: the stream/batch knobs with documented
//! defaults and a round-trippable builder.

use std::path::PathBuf;

use cij_core::EngineConfig;

use crate::shed::ShedPolicy;

/// Configuration of a [`StreamService`](crate::StreamService).
///
/// Construct via [`StreamConfig::builder`]; every knob has a documented
/// default and `config.to_builder().build()` round-trips exactly. The
/// engine-level knobs live in the embedded [`EngineConfig`] (itself
/// builder-constructible).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Join-engine configuration (default [`EngineConfig::default`]).
    pub engine: EngineConfig,
    /// Hard bound on queued-but-unapplied updates across all pending
    /// ticks (default 4096). Submissions beyond it are refused with
    /// [`QueueFull`](crate::IngestOutcome::QueueFull).
    pub batch_capacity: usize,
    /// Once the queue reaches this many pending updates the service
    /// stops accepting (default 3/4 of `batch_capacity`).
    pub high_watermark: usize,
    /// Acceptance resumes when a drain brings the queue back to at most
    /// this many pending updates (default 1/2 of `batch_capacity`) —
    /// the hysteresis that keeps a saturated producer from flapping.
    pub low_watermark: usize,
    /// Bound on each subscriber's outbox (default 1024). Overflow drops
    /// the oldest deliveries and surfaces a
    /// [`Gap`](crate::OutboxItem::Gap) marker.
    pub outbox_capacity: usize,
    /// Write-ahead log file. `None` (the default) runs without
    /// durability; `Some(path)` journals every ingested batch before it
    /// is applied, enabling [`recover`](crate::StreamService::recover).
    pub wal_path: Option<PathBuf>,
    /// What saturation does beyond flipping the accepting flag
    /// (default [`ShedPolicy::None`] — behavior bit-identical to a
    /// policy-less service).
    pub shed_policy: ShedPolicy,
}

impl Default for StreamConfig {
    fn default() -> Self {
        Self {
            engine: EngineConfig::default(),
            batch_capacity: 4096,
            high_watermark: 3072,
            low_watermark: 2048,
            outbox_capacity: 1024,
            wal_path: None,
            shed_policy: ShedPolicy::None,
        }
    }
}

impl StreamConfig {
    /// Starts a builder at the defaults above.
    #[must_use]
    pub fn builder() -> StreamConfigBuilder {
        StreamConfigBuilder {
            config: Self::default(),
        }
    }

    /// Re-opens this configuration as a builder.
    #[must_use]
    pub fn to_builder(self) -> StreamConfigBuilder {
        StreamConfigBuilder { config: self }
    }

    /// Checks the invariant `low ≤ high ≤ capacity` (and nonzero
    /// capacities) that the backpressure hysteresis relies on, plus the
    /// shed policy's own parameter validity.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.batch_capacity > 0
            && self.outbox_capacity > 0
            && self.low_watermark <= self.high_watermark
            && self.high_watermark <= self.batch_capacity
            && self.shed_policy.is_valid()
    }
}

/// Builder for [`StreamConfig`].
#[derive(Debug, Clone)]
pub struct StreamConfigBuilder {
    config: StreamConfig,
}

impl StreamConfigBuilder {
    /// Join-engine configuration (default [`EngineConfig::default`]).
    #[must_use]
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Queue capacity in pending updates (default 4096). Also rescales
    /// the watermarks to their default fractions (3/4 and 1/2 of the
    /// capacity); set them *after* this to override.
    #[must_use]
    pub fn batch_capacity(mut self, capacity: usize) -> Self {
        self.config.batch_capacity = capacity;
        self.config.high_watermark = capacity * 3 / 4;
        self.config.low_watermark = capacity / 2;
        self
    }

    /// Stop-accepting threshold (default 3/4 of the capacity).
    #[must_use]
    pub fn high_watermark(mut self, pending: usize) -> Self {
        self.config.high_watermark = pending;
        self
    }

    /// Resume-accepting threshold (default 1/2 of the capacity).
    #[must_use]
    pub fn low_watermark(mut self, pending: usize) -> Self {
        self.config.low_watermark = pending;
        self
    }

    /// Per-subscriber outbox bound (default 1024).
    #[must_use]
    pub fn outbox_capacity(mut self, capacity: usize) -> Self {
        self.config.outbox_capacity = capacity;
        self
    }

    /// Write-ahead log path (default none).
    #[must_use]
    pub fn wal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.wal_path = Some(path.into());
        self
    }

    /// Saturation shedding policy (default [`ShedPolicy::None`]).
    #[must_use]
    pub fn shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.config.shed_policy = policy;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    /// Panics when the watermark invariant `low ≤ high ≤ capacity` is
    /// violated or a capacity is zero — misconfigured backpressure is a
    /// programming error, not a runtime condition.
    #[must_use]
    pub fn build(self) -> StreamConfig {
        assert!(
            self.config.is_valid(),
            "invalid stream config: need 0 < low ≤ high ≤ capacity and a nonzero outbox, got {:?}",
            self.config
        );
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(StreamConfig::builder().build(), StreamConfig::default());
        assert!(StreamConfig::default().is_valid());
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let config = StreamConfig::builder()
            .engine(cij_core::EngineConfig::builder().threads(4).build())
            .batch_capacity(100)
            .high_watermark(80)
            .low_watermark(20)
            .outbox_capacity(7)
            .wal_path("/tmp/cij.wal")
            .shed_policy(ShedPolicy::DropStalePerObject)
            .build();
        assert_eq!(config.engine.threads, 4);
        assert_eq!(config.batch_capacity, 100);
        assert_eq!(config.high_watermark, 80);
        assert_eq!(config.low_watermark, 20);
        assert_eq!(config.outbox_capacity, 7);
        assert_eq!(config.wal_path.as_deref(), Some("/tmp/cij.wal".as_ref()));
        assert_eq!(config.shed_policy, ShedPolicy::DropStalePerObject);
        assert_eq!(config.clone().to_builder().build(), config);
    }

    #[test]
    fn capacity_rescales_watermarks() {
        let config = StreamConfig::builder().batch_capacity(1000).build();
        assert_eq!(config.high_watermark, 750);
        assert_eq!(config.low_watermark, 500);
    }

    #[test]
    #[should_panic(expected = "invalid stream config")]
    fn degenerate_coalesce_window_panics() {
        let _ = StreamConfig::builder()
            .shed_policy(ShedPolicy::CoalesceHarder { window: 0.0 })
            .build();
    }

    #[test]
    #[should_panic(expected = "invalid stream config")]
    fn inverted_watermarks_panic() {
        let _ = StreamConfig::builder()
            .high_watermark(10)
            .low_watermark(20)
            .batch_capacity(100)
            .high_watermark(200)
            .build();
    }
}
