//! `cij-stream` — streaming update-ingestion and result-delta
//! subscription service over the continuous-join engines.
//!
//! The paper's engines answer "which pairs intersect *now*" through
//! snapshot queries ([`result_at`](cij_core::ContinuousJoinEngine::result_at)).
//! This crate turns any of them into an event-driven service for
//! consumers that want to be *told* when the answer changes:
//!
//! - [`StreamService::submit`] ingests [`ObjectUpdate`](cij_workload::ObjectUpdate)
//!   events into a bounded, tick-coalescing queue with explicit
//!   backpressure ([`IngestOutcome`]);
//! - [`StreamService::advance_to`] applies the due batches and emits
//!   [`ResultDelta`]s — `PairAdded` with the pair's predicted valid
//!   interval, `PairRemoved` when it leaves — instead of snapshots.
//!   Replaying the deltas from the empty set reconstructs `result_at`
//!   exactly at every tick (the crate's differential tests pin this for
//!   all four engines);
//! - [`StreamService::subscribe`] registers consumers with per-consumer
//!   [`SubscriptionFilter`]s and bounded outboxes; slow consumers lose
//!   the oldest deliveries and see an explicit [`OutboxItem::Gap`];
//! - with a [`wal_path`](StreamConfig::wal_path) configured, every
//!   batch is journaled to a CRC-framed write-ahead log *before* it is
//!   applied, and [`StreamService::recover`] rebuilds engine and
//!   subscription state from the durable prefix after a crash — torn
//!   tail records included.
//!
//! The delta extraction is genuinely incremental for the
//! interval-predicting engines (Naive/TC/MTB/Bx): it consumes the
//! [`ResultBuffer`](cij_core::ResultBuffer) changelog plus a
//! time-ordered expiry heap, so per-tick work scales with the number of
//! *changed* pairs — the streaming payoff of the paper's bounded valid
//! intervals (Theorems 1–2). ETP, which predicts no intervals, is
//! served by a snapshot-diff fallback behind the same contract.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod delta;
mod error;
mod event;
mod ingest;
mod service;
mod shed;
mod subscribe;
pub mod wire;

pub use config::{StreamConfig, StreamConfigBuilder};
pub use error::{StreamError, StreamResult};
pub use event::{OutboxItem, ResultDelta, StampedDelta};
pub use ingest::{IngestOutcome, IngestQueue, QueuedUpdate};
pub use service::{EngineFactory, RecoveryReport, StreamService};
pub use shed::ShedPolicy;
pub use subscribe::{SubscriberId, SubscriptionFilter};
pub use wire::{WireError, PROTOCOL_MAGIC, PROTOCOL_VERSION};
