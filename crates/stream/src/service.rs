//! The streaming service: ingestion, journaling, delta extraction and
//! subscription delivery around one join engine.
//!
//! Per [`advance_to`](StreamService::advance_to) call the service
//! drains the due update batches in tick order and, for each: journals
//! the batch to the write-ahead log (durability *before* application),
//! applies it to the engine, garbage-collects, extracts the result
//! deltas and routes them to every subscriber's outbox. A crash between
//! the journal write and anything later is therefore recoverable: the
//! WAL replay in [`recover`](StreamService::recover) reapplies the
//! durable prefix and lands on exactly the state the pre-crash service
//! had after its last completed batch.

use std::collections::HashMap;

use cij_core::{ContinuousJoinEngine, EngineConfig, PairKey};
use cij_geom::{MovingRect, Time};
use cij_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use cij_storage::Wal;
use cij_tpr::{ObjectId, TprResult};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

use crate::config::StreamConfig;
use crate::delta::DeltaExtractor;
use crate::error::{StreamError, StreamResult};
use crate::event::{OutboxItem, StampedDelta};
use crate::ingest::{IngestOutcome, IngestQueue, QueuedUpdate};
use crate::shed::ShedPolicy;
use crate::subscribe::{SubscriberId, SubscriptionFilter, SubscriptionRegistry};
use crate::wire::WalRecord;

/// Builds a join engine over the genesis object sets. The service calls
/// it once at construction and once per [`StreamService::recover`]; it
/// must be deterministic in its arguments for recovery to reproduce the
/// pre-crash engine exactly.
pub type EngineFactory<'a> = &'a dyn Fn(
    &EngineConfig,
    &[MovingObject],
    &[MovingObject],
    Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>>;

/// What a WAL replay found and rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Update batches reapplied from the log.
    pub batches_replayed: usize,
    /// The tick of the last durable batch (the recovered service's
    /// current time).
    pub last_tick: Time,
    /// Whether a torn record was truncated from the log tail — `true`
    /// is the expected outcome of a mid-write crash, not an error.
    pub tail_truncated: bool,
    /// Subscribers restored (their outboxes restart with a gap marker
    /// and a catch-up snapshot).
    pub subscribers: usize,
}

/// Event-driven streaming wrapper around one [`ContinuousJoinEngine`].
pub struct StreamService {
    config: StreamConfig,
    engine: Box<dyn ContinuousJoinEngine>,
    extractor: DeltaExtractor,
    queue: IngestQueue,
    registry: SubscriptionRegistry,
    /// Currently registered trajectory per object — the state the
    /// window filters evaluate against.
    tracks: HashMap<ObjectId, MovingRect>,
    /// Which side each live object belongs to — what
    /// [`retire_object`](Self::retire_object) needs to address the
    /// engine's `remove_object`.
    sets: HashMap<ObjectId, SetTag>,
    wal: Option<Wal>,
    /// The genesis tick: the apply tick of every object that has never
    /// been updated since construction.
    start: Time,
    now: Time,
    /// Whether a `DegradeToResync` degraded window is open: per-delta
    /// delivery is suppressed (with exact gap accounting) until the
    /// queue reopens, at which point every subscriber is resynced.
    degraded: bool,
    /// Observability handles, shared with the engine's registry (all
    /// no-ops when `config.engine.metrics` is off).
    obs: ServiceMetrics,
}

/// The service's recording handles. Cloned from the engine's registry at
/// construction; every handle is a no-op when metrics are disabled, so
/// the hot paths pay one branch per record call and nothing else.
struct ServiceMetrics {
    registry: MetricsRegistry,
    queue_depth: Gauge,
    backpressure_engaged: Counter,
    backpressure_released: Counter,
    submissions_accepted: Counter,
    submissions_refused: Counter,
    batches_applied: Counter,
    deltas_emitted: Counter,
    subscriber_dropped: Counter,
    /// Pending updates superseded by `DropStalePerObject` (live mirror
    /// of the queue's counter).
    shed_dropped_stale: Counter,
    /// Submissions re-timed onto the coarser grid by `CoalesceHarder`.
    shed_coalesced: Counter,
    /// `DegradeToResync` degraded windows opened.
    degrade_engaged: Counter,
    /// Subscribers force-resynced at degraded-window close.
    degrade_resyncs: Counter,
    /// Live size of the ingest queue's per-object apply-tick
    /// translation map (pruned by [`StreamService::retire_object`]).
    translation_entries: Gauge,
    /// Objects retired via [`StreamService::retire_object`].
    objects_retired: Counter,
    /// Wall-clock nanoseconds from acceptance to application, one
    /// observation per applied update.
    ingest_latency: Histogram,
    /// Simulation-time lag (milliticks: `(batch tick − submitted tick)
    /// × 1000`) per applied update — nonzero only when a policy
    /// re-timed the update.
    freshness_lag: Histogram,
    /// Queue depth observed at each submission (the distribution behind
    /// the `stream.queue.depth` point gauge).
    queue_depth_hist: Histogram,
}

impl ServiceMetrics {
    fn new(registry: MetricsRegistry) -> Self {
        Self {
            queue_depth: registry.gauge("stream.queue.depth"),
            backpressure_engaged: registry.counter("stream.backpressure.engaged"),
            backpressure_released: registry.counter("stream.backpressure.released"),
            submissions_accepted: registry.counter("stream.submissions.accepted"),
            submissions_refused: registry.counter("stream.submissions.refused"),
            batches_applied: registry.counter("stream.batches_applied"),
            deltas_emitted: registry.counter("stream.deltas_emitted"),
            subscriber_dropped: registry.counter("stream.subscribers.dropped_deltas"),
            shed_dropped_stale: registry.counter("stream.shed.dropped_stale"),
            shed_coalesced: registry.counter("stream.shed.coalesced"),
            degrade_engaged: registry.counter("stream.degrade.engaged"),
            degrade_resyncs: registry.counter("stream.degrade.resyncs"),
            translation_entries: registry.gauge("stream.ingest.translation_entries"),
            objects_retired: registry.counter("stream.objects.retired"),
            ingest_latency: registry.histogram("stream.ingest.latency_ns"),
            freshness_lag: registry.histogram("stream.freshness.lag_milliticks"),
            queue_depth_hist: registry.histogram("stream.ingest.queue_depth"),
            registry,
        }
    }

    /// Counts an accepting→refusing (or back) flip of the ingest queue.
    fn record_backpressure_flip(&self, was_accepting: bool, is_accepting: bool) {
        if was_accepting && !is_accepting {
            self.backpressure_engaged.inc();
        } else if !was_accepting && is_accepting {
            self.backpressure_released.inc();
        }
    }
}

impl StreamService {
    /// Builds the service: constructs the engine from the genesis sets
    /// via `build_engine`, runs the initial join at `start`, and (when
    /// [`wal_path`](StreamConfig::wal_path) is set) starts a fresh
    /// journal whose first record is the genesis itself.
    ///
    /// The initial join's pairs are *not* reported here — they surface
    /// as `PairAdded` deltas on the first [`advance_to`](Self::advance_to),
    /// so a subscriber replaying from the beginning starts from the
    /// empty set like any other replay.
    ///
    /// # Errors
    /// [`StreamError::InvalidConfig`] when `config` violates its
    /// watermark invariant (see [`StreamConfig::is_valid`]);
    /// [`StreamError::Engine`]/[`StreamError::Storage`] when engine
    /// construction or the journal fails.
    pub fn new(
        config: StreamConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        start: Time,
        build_engine: EngineFactory<'_>,
    ) -> StreamResult<Self> {
        if !config.is_valid() {
            return Err(StreamError::InvalidConfig(format!(
                "need 0 < low ≤ high ≤ capacity and a nonzero outbox, got {config:?}"
            )));
        }
        let mut engine = build_engine(&config.engine, set_a, set_b, start)?;
        engine.enable_delta_tracking();
        engine.run_initial_join(start)?;
        let obs = ServiceMetrics::new(engine.metrics_registry());

        let wal = match &config.wal_path {
            Some(path) => {
                let mut wal = Wal::create(path)?;
                wal.stats().register_in(&obs.registry, "stream.wal");
                let genesis = WalRecord::Genesis {
                    start,
                    set_a: set_a.to_vec(),
                    set_b: set_b.to_vec(),
                };
                wal.append(&genesis.encode())?;
                wal.sync()?;
                Some(wal)
            }
            None => None,
        };

        let mut tracks = HashMap::with_capacity(set_a.len() + set_b.len());
        let mut sets = HashMap::with_capacity(set_a.len() + set_b.len());
        for o in set_a {
            tracks.insert(o.id, o.mbr);
            sets.insert(o.id, SetTag::A);
        }
        for o in set_b {
            tracks.insert(o.id, o.mbr);
            sets.insert(o.id, SetTag::B);
        }

        Ok(Self {
            queue: IngestQueue::with_policy(
                config.batch_capacity,
                config.high_watermark,
                config.low_watermark,
                start,
                config.shed_policy,
            ),
            registry: SubscriptionRegistry::new(config.outbox_capacity),
            config,
            engine,
            extractor: DeltaExtractor::new(),
            tracks,
            sets,
            wal,
            start,
            now: start,
            degraded: false,
            obs,
        })
    }

    /// Rebuilds a service from its write-ahead log after a crash.
    ///
    /// The log is opened with torn-tail truncation (a record cut short
    /// by the crash is discarded), the engine is rebuilt from the
    /// genesis record and every durable batch is reapplied in order.
    /// Restored subscribers keep their ids and filters but not their
    /// undelivered outboxes: each restarts with a
    /// [`Gap`](OutboxItem::Gap) marker followed by a catch-up snapshot
    /// of the currently reported pairs, after which deltas flow
    /// incrementally again.
    ///
    /// # Errors
    /// [`StreamError::MissingWalPath`] when `config.wal_path` is `None`;
    /// [`StreamError::CorruptJournal`] when the durable prefix is not a
    /// valid journal (no genesis, non-genesis first record, duplicate
    /// genesis, undecodable record); [`StreamError::InvalidConfig`] /
    /// [`StreamError::Storage`] / [`StreamError::Engine`] as in
    /// [`new`](Self::new). A torn *tail* is not an error — it is
    /// truncated and reported via
    /// [`RecoveryReport::tail_truncated`].
    pub fn recover(
        config: StreamConfig,
        build_engine: EngineFactory<'_>,
    ) -> StreamResult<(Self, RecoveryReport)> {
        if !config.is_valid() {
            return Err(StreamError::InvalidConfig(format!(
                "need 0 < low ≤ high ≤ capacity and a nonzero outbox, got {config:?}"
            )));
        }
        let path = config
            .wal_path
            .as_ref()
            .ok_or(StreamError::MissingWalPath)?;
        let (wal, recovery) = Wal::open(path)?;

        let mut records = recovery.records.iter();
        let genesis = records
            .next()
            .ok_or_else(|| StreamError::CorruptJournal("no durable genesis record".into()))?;
        let WalRecord::Genesis {
            start,
            set_a,
            set_b,
        } = Self::decode_journal(genesis)?
        else {
            return Err(StreamError::CorruptJournal(
                "first record is not a genesis".into(),
            ));
        };

        let mut engine = build_engine(&config.engine, &set_a, &set_b, start)?;
        engine.enable_delta_tracking();
        engine.run_initial_join(start)?;
        let obs = ServiceMetrics::new(engine.metrics_registry());
        wal.stats().register_in(&obs.registry, "stream.wal");

        let mut tracks = HashMap::with_capacity(set_a.len() + set_b.len());
        let mut sets = HashMap::with_capacity(set_a.len() + set_b.len());
        for o in &set_a {
            tracks.insert(o.id, o.mbr);
            sets.insert(o.id, SetTag::A);
        }
        for o in &set_b {
            tracks.insert(o.id, o.mbr);
            sets.insert(o.id, SetTag::B);
        }

        let mut extractor = DeltaExtractor::new();
        let mut registry = SubscriptionRegistry::new(config.outbox_capacity);
        let mut now = start;
        let mut batches_replayed = 0usize;
        let mut applied_stamps: HashMap<cij_tpr::ObjectId, Time> = HashMap::new();
        {
            let _span = obs.registry.span("phase.wal_replay");
            for payload in records {
                match Self::decode_journal(payload)? {
                    WalRecord::Genesis { .. } => {
                        return Err(StreamError::CorruptJournal(
                            "duplicate genesis record".into(),
                        ));
                    }
                    WalRecord::Batch { at, updates } => {
                        Self::apply_batch(
                            engine.as_mut(),
                            &mut extractor,
                            &mut tracks,
                            &mut sets,
                            at,
                            &updates,
                        )?;
                        for u in &updates {
                            applied_stamps.insert(u.id, at);
                        }
                        now = at;
                        batches_replayed += 1;
                    }
                    WalRecord::Subscribe { id, filter } => registry.insert_with_id(id, filter),
                    WalRecord::Unsubscribe { id } => {
                        registry.unsubscribe(id);
                    }
                    WalRecord::Retire { at, set, id } => {
                        if !tracks.contains_key(&id) {
                            return Err(StreamError::CorruptJournal(format!(
                                "retire record for unknown object {id:?}"
                            )));
                        }
                        // Same `last_update` derivation as the live
                        // path: the object's last applied tick, or the
                        // genesis tick if it was never updated.
                        let last_update = applied_stamps.get(&id).copied().unwrap_or(start);
                        Self::apply_retire(
                            engine.as_mut(),
                            &mut tracks,
                            &mut sets,
                            set,
                            id,
                            last_update,
                            at,
                        )?;
                        applied_stamps.remove(&id);
                    }
                }
            }
        }
        obs.registry
            .counter("stream.recovery.batches_replayed")
            .store(batches_replayed as u64);

        // Undelivered outboxes died with the crashed process: every
        // restored subscriber gets a gap marker (count 1 — a lower
        // bound, the true loss is unknowable) and a catch-up snapshot.
        let current = extractor.current();
        for id in registry.ids() {
            registry.reseed(id, 1, now, &current, &tracks, false);
        }
        obs.subscriber_dropped.store(registry.total_dropped());

        let report = RecoveryReport {
            batches_replayed,
            last_tick: now,
            tail_truncated: recovery.tail_corrupt,
            subscribers: registry.len(),
        };
        let mut queue = IngestQueue::with_policy(
            config.batch_capacity,
            config.high_watermark,
            config.low_watermark,
            now,
            config.shed_policy,
        );
        // Restore the `last_update` → apply-tick translation map, so
        // post-recovery submissions still locate the index buckets the
        // replayed batches actually populated.
        for (id, at) in applied_stamps {
            queue.note_applied(id, at);
        }
        obs.translation_entries.set(queue.translation_len() as i64);
        let service = Self {
            queue,
            registry,
            config,
            engine,
            extractor,
            tracks,
            sets,
            wal: Some(wal),
            start,
            now,
            degraded: false,
            obs,
        };
        Ok((service, report))
    }

    /// Decodes one journal payload, folding the wire layer's typed
    /// errors (bad magic, version mismatch, corrupt body) into
    /// [`StreamError::CorruptJournal`] so callers see one typed "bad
    /// journal" condition. The wire error's own message — which names
    /// the exact mismatch — is preserved inside it.
    fn decode_journal(payload: &[u8]) -> StreamResult<WalRecord> {
        WalRecord::decode(payload)
            .map_err(|e| StreamError::CorruptJournal(format!("undecodable record: {e}")))
    }

    /// Offers one update for tick `at`. The caller must handle the
    /// outcome — [`QueueFull`](IngestOutcome::QueueFull) is the
    /// backpressure signal, not an error.
    pub fn submit(&mut self, update: ObjectUpdate, at: Time) -> IngestOutcome {
        let was_accepting = self.queue.is_accepting();
        let outcome = self.queue.submit(update, at);
        match outcome {
            IngestOutcome::QueueFull => self.obs.submissions_refused.inc(),
            _ => self.obs.submissions_accepted.inc(),
        }
        self.obs.queue_depth.set(self.queue.len() as i64);
        self.obs.queue_depth_hist.record(self.queue.len() as u64);
        self.obs
            .shed_dropped_stale
            .store(self.queue.shed_dropped_stale());
        self.obs.shed_coalesced.store(self.queue.shed_coalesced());
        self.obs
            .translation_entries
            .set(self.queue.translation_len() as i64);
        self.obs
            .record_backpressure_flip(was_accepting, self.queue.is_accepting());
        if was_accepting
            && !self.queue.is_accepting()
            && self.config.shed_policy == ShedPolicy::DegradeToResync
            && !self.degraded
        {
            // Saturation under DegradeToResync opens a degraded window:
            // per-delta delivery is suppressed (exactly counted) until
            // the queue reopens in `advance_to`.
            self.degraded = true;
            self.obs.degrade_engaged.inc();
        }
        outcome
    }

    /// Advances the service clock to `t`: drains every queued batch
    /// with tick ≤ `t` (journal → apply → extract → deliver, in tick
    /// order), then runs a final extraction at `t` itself so that
    /// interval expiries between the last batch and `t` are reported.
    /// Returns the full delta stream of this call in emission order —
    /// the same stamped deltas the subscribers receive (pre-filter).
    ///
    /// Calls with `t` at or before the current clock are no-ops.
    ///
    /// # Errors
    /// [`StreamError::Engine`] when the wrapped engine fails;
    /// [`StreamError::Storage`] when journaling fails.
    pub fn advance_to(&mut self, t: Time) -> StreamResult<Vec<StampedDelta>> {
        if t <= self.now {
            return Ok(Vec::new());
        }
        let was_accepting = self.queue.is_accepting();
        let mut out = Vec::new();
        let mut last_extracted = self.now;
        for (at, queued) in self.queue.drain_through(t) {
            let applied = std::time::Instant::now();
            let updates: Vec<ObjectUpdate> = queued.iter().map(|q| q.update).collect();
            self.record_ingest_observations(at, &queued, applied);
            self.journal(&WalRecord::Batch {
                at,
                updates: updates.clone(),
            })?;
            let deltas = Self::apply_batch(
                self.engine.as_mut(),
                &mut self.extractor,
                &mut self.tracks,
                &mut self.sets,
                at,
                &updates,
            )?;
            self.obs.batches_applied.inc();
            self.emit(at, deltas, &mut out);
            last_extracted = at;
        }
        if last_extracted < t {
            // No batch exactly at `t`: still extract, so expiries and
            // activations due by `t` reach subscribers on time.
            let deltas = Self::apply_batch(
                self.engine.as_mut(),
                &mut self.extractor,
                &mut self.tracks,
                &mut self.sets,
                t,
                &[],
            )?;
            self.emit(t, deltas, &mut out);
        }
        self.now = t;
        self.obs.queue_depth.set(self.queue.len() as i64);
        self.obs
            .record_backpressure_flip(was_accepting, self.queue.is_accepting());
        if self.degraded && self.queue.is_accepting() {
            // Degraded window closes with the queue reopening: every
            // subscriber is rebuilt from a catch-up snapshot; their gap
            // counters already hold the exact suppressed count (plus
            // any undelivered outbox items charged by the reseed).
            let current = self.extractor.current();
            let ids = self.registry.ids();
            for id in &ids {
                self.registry
                    .reseed(*id, 0, t, &current, &self.tracks, true);
            }
            self.obs.degrade_resyncs.add(ids.len() as u64);
            self.obs
                .subscriber_dropped
                .store(self.registry.total_dropped());
            self.degraded = false;
        }
        Ok(out)
    }

    /// Per-update ingest observations for one drained batch: wall-clock
    /// acceptance→application latency and (when a policy re-timed the
    /// update) simulation-time freshness lag.
    fn record_ingest_observations(
        &self,
        at: Time,
        queued: &[QueuedUpdate],
        applied: std::time::Instant,
    ) {
        if !self.obs.registry.is_enabled() {
            return;
        }
        for q in queued {
            let nanos = applied
                .saturating_duration_since(q.enqueued)
                .as_nanos()
                .min(u128::from(u64::MAX)) as u64;
            self.obs.ingest_latency.record(nanos);
            let lag = ((at - q.submitted_for) * 1000.0).max(0.0) as u64;
            self.obs.freshness_lag.record(lag);
        }
    }

    /// One batch through the engine: advance, apply, gc, extract.
    /// Shared verbatim between live operation and WAL replay — the
    /// property the recovery guarantee rests on.
    fn apply_batch(
        engine: &mut dyn ContinuousJoinEngine,
        extractor: &mut DeltaExtractor,
        tracks: &mut HashMap<ObjectId, MovingRect>,
        sets: &mut HashMap<ObjectId, SetTag>,
        at: Time,
        updates: &[ObjectUpdate],
    ) -> TprResult<Vec<crate::event::ResultDelta>> {
        engine.advance_time(at)?;
        // One engine call per tick batch: plain engines run the default
        // sequential loop, the shard coordinator fans the batch out over
        // shard pairs (identical results either way) — so WAL replay and
        // live ingestion share one code path regardless of engine shape.
        engine.apply_batch(updates, at)?;
        for u in updates {
            tracks.insert(u.id, u.new_mbr);
            sets.insert(u.id, u.set);
        }
        engine.gc(at);
        Ok(extractor.extract(engine, at))
    }

    /// One retirement through the engine and the service's object maps.
    /// Shared verbatim between [`retire_object`](Self::retire_object)
    /// and WAL replay — the same property `apply_batch` keeps.
    fn apply_retire(
        engine: &mut dyn ContinuousJoinEngine,
        tracks: &mut HashMap<ObjectId, MovingRect>,
        sets: &mut HashMap<ObjectId, SetTag>,
        set: SetTag,
        id: ObjectId,
        last_update: Time,
        at: Time,
    ) -> TprResult<()> {
        let mbr = tracks[&id];
        engine.remove_object(set, id, &mbr, last_update, at)?;
        tracks.remove(&id);
        sets.remove(&id);
        Ok(())
    }

    fn emit(
        &mut self,
        at: Time,
        deltas: Vec<crate::event::ResultDelta>,
        out: &mut Vec<StampedDelta>,
    ) {
        let stamped: Vec<StampedDelta> = deltas
            .into_iter()
            .map(|delta| StampedDelta { at, delta })
            .collect();
        self.obs.deltas_emitted.add(stamped.len() as u64);
        self.registry.deliver(&stamped, &self.tracks, self.degraded);
        self.obs
            .subscriber_dropped
            .store(self.registry.total_dropped());
        out.extend(stamped);
    }

    fn journal(&mut self, record: &WalRecord) -> StreamResult<()> {
        if let Some(wal) = &mut self.wal {
            wal.append(&record.encode())?;
            wal.sync()?;
        }
        Ok(())
    }

    /// Retires an object: removes it from the engine's indexes (its
    /// pairs surface as `PairRemoved` deltas on the next
    /// [`advance_to`](Self::advance_to)), journals the retirement, and
    /// prunes the object's track, set tag, and ingest-queue apply-tick
    /// translation entry — the pruning that keeps the translation map
    /// bounded by the live population. Returns `false` for objects the
    /// service does not hold.
    ///
    /// Retirement is refused while the object has a queued-but-unapplied
    /// update: its translation stamp then points at a future batch whose
    /// index entry does not exist yet, so the engine-side delete would
    /// miss. Drain the queue past the pending tick first.
    ///
    /// # Errors
    /// [`StreamError::InvalidConfig`] when an update for the object is
    /// still pending; [`StreamError::Engine`] when the engine cannot
    /// remove the object (e.g. an engine without routed single-object
    /// deletes); [`StreamError::Storage`] when journaling fails.
    pub fn retire_object(&mut self, id: ObjectId) -> StreamResult<bool> {
        if !self.tracks.contains_key(&id) {
            return Ok(false);
        }
        if self.queue.has_pending(id) {
            return Err(StreamError::InvalidConfig(format!(
                "cannot retire {id:?}: an update for it is still queued"
            )));
        }
        let set = self.sets[&id];
        let last_update = self.queue.applied_tick(id).unwrap_or(self.start);
        self.journal(&WalRecord::Retire {
            at: self.now,
            set,
            id,
        })?;
        Self::apply_retire(
            self.engine.as_mut(),
            &mut self.tracks,
            &mut self.sets,
            set,
            id,
            last_update,
            self.now,
        )?;
        self.queue.note_removed(id);
        self.obs
            .translation_entries
            .set(self.queue.translation_len() as i64);
        self.obs.objects_retired.inc();
        Ok(true)
    }

    /// Size of the ingest queue's per-object apply-tick translation map
    /// (mirrored by the `stream.ingest.translation_entries` gauge).
    #[must_use]
    pub fn translation_entries(&self) -> usize {
        self.queue.translation_len()
    }

    /// Registers a subscriber. Its outbox starts with a catch-up
    /// snapshot of the currently reported pairs (filtered), so replaying
    /// its deliveries yields the live result without a full-stream
    /// replay from genesis.
    ///
    /// # Errors
    /// [`StreamError::Storage`] when journaling the subscription fails.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> StreamResult<SubscriberId> {
        let id = self.registry.subscribe(filter);
        self.journal(&WalRecord::Subscribe { id, filter })?;
        let current = self.extractor.current();
        self.registry
            .reseed(id, 0, self.now, &current, &self.tracks, false);
        Ok(id)
    }

    /// Removes a subscriber. Returns whether it existed.
    ///
    /// # Errors
    /// [`StreamError::Storage`] when journaling the removal fails.
    pub fn unsubscribe(&mut self, id: SubscriberId) -> StreamResult<bool> {
        let existed = self.registry.unsubscribe(id);
        if existed {
            self.journal(&WalRecord::Unsubscribe { id })?;
        }
        Ok(existed)
    }

    /// Drains a subscriber's outbox (leading with a
    /// [`Gap`](OutboxItem::Gap) marker if deliveries were dropped).
    /// `None` for unknown ids.
    pub fn poll(&mut self, id: SubscriberId) -> Option<Vec<OutboxItem>> {
        self.registry.poll(id)
    }

    /// Rebuilds a subscriber's view after it detected a gap: clears its
    /// outbox and seeds a fresh filtered snapshot of the currently
    /// reported pairs. Returns whether the subscriber exists.
    pub fn resync(&mut self, id: SubscriberId) -> bool {
        let current = self.extractor.current();
        self.registry
            .reseed(id, 0, self.now, &current, &self.tracks, false)
    }

    /// The engine's reported pairs at instant `t` (valid for `t` at or
    /// after the current clock, like the engine method itself).
    #[must_use]
    pub fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.engine.result_at(t)
    }

    /// The service clock — the tick of the last completed
    /// [`advance_to`](Self::advance_to) (or batch replay).
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The wrapped engine's name.
    #[must_use]
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// Queued-but-unapplied updates.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the ingestion queue currently accepts submissions.
    #[must_use]
    pub fn is_accepting(&self) -> bool {
        self.queue.is_accepting()
    }

    /// Whether a [`ShedPolicy::DegradeToResync`] degraded window is
    /// currently open (always `false` under other policies).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Pending updates superseded by
    /// [`ShedPolicy::DropStalePerObject`] so far (cumulative).
    #[must_use]
    pub fn shed_dropped_stale(&self) -> u64 {
        self.queue.shed_dropped_stale()
    }

    /// Submissions re-timed by [`ShedPolicy::CoalesceHarder`] so far
    /// (cumulative).
    #[must_use]
    pub fn shed_coalesced(&self) -> u64 {
        self.queue.shed_coalesced()
    }

    /// Number of registered subscribers.
    #[must_use]
    pub fn subscriber_count(&self) -> usize {
        self.registry.len()
    }

    /// A subscriber's filter, if registered.
    #[must_use]
    pub fn subscriber_filter(&self, id: SubscriberId) -> Option<SubscriptionFilter> {
        self.registry.filter(id)
    }

    /// Number of pairs currently reported to the delta stream.
    #[must_use]
    pub fn reported_pairs(&self) -> usize {
        self.extractor.reported_len()
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The metrics registry shared with the wrapped engine (disabled —
    /// all handles no-ops — unless `config.engine.metrics` is set).
    #[must_use]
    pub fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.registry.clone()
    }

    /// Publishes the engine's totals and snapshots every registered
    /// metric (empty when metrics are disabled).
    #[must_use]
    pub fn metrics_snapshot(&self) -> cij_obs::MetricsSnapshot {
        self.engine.publish_metrics();
        self.obs.registry.snapshot()
    }
}
