//! The delta vocabulary: what subscribers receive instead of snapshots.

use cij_core::PairKey;
use cij_geom::{Time, TimeInterval};

/// One incremental change to the continuously-maintained join answer.
///
/// A subscriber replaying these events against an initially-empty pair
/// set reconstructs `result_at(t)` exactly at every extraction tick —
/// the differential tests in this crate pin that property for all four
/// engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResultDelta {
    /// The pair entered the reported answer.
    PairAdded {
        /// The (A-object, B-object) pair.
        pair: PairKey,
        /// The predicted intersection interval the pair was admitted
        /// under. For engines that keep interval predictions
        /// (Naive/TC/MTB/Bx) this is the buffer interval containing the
        /// extraction tick; for snapshot-diffed engines (ETP) it is
        /// `[t, ∞)`, meaning "active from `t` until a later
        /// [`PairRemoved`](Self::PairRemoved)". The event stream itself
        /// is always the authoritative membership record.
        valid: TimeInterval,
    },
    /// The pair left the reported answer.
    PairRemoved {
        /// The (A-object, B-object) pair.
        pair: PairKey,
    },
}

impl ResultDelta {
    /// The pair this delta is about.
    #[must_use]
    pub fn pair(&self) -> PairKey {
        match self {
            Self::PairAdded { pair, .. } | Self::PairRemoved { pair } => *pair,
        }
    }

    /// Whether this is an addition.
    #[must_use]
    pub fn is_add(&self) -> bool {
        matches!(self, Self::PairAdded { .. })
    }
}

/// A delta stamped with the tick it was extracted at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StampedDelta {
    /// Extraction tick.
    pub at: Time,
    /// The change.
    pub delta: ResultDelta,
}

/// What a subscriber's [`poll`](crate::StreamService::poll) yields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutboxItem {
    /// A delivered delta.
    Delta(StampedDelta),
    /// The subscriber fell behind (or the service recovered from a
    /// crash) and deliveries were discarded under the drop-oldest
    /// policy. After a gap the subscriber's replayed state is no longer
    /// trustworthy; it should ask the service for a
    /// [`resync`](crate::StreamService::resync).
    Gap {
        /// Number of discarded deltas. After crash recovery this is a
        /// lower bound (in-flight deliveries at the crash are unknown).
        dropped: u64,
    },
}
