//! Delta extraction: turning engine state changes into
//! [`ResultDelta`] events without recomputing snapshots.
//!
//! After each applied batch the extractor asks the engine for the pairs
//! whose predicted intervals changed
//! ([`take_result_changes`](cij_core::ContinuousJoinEngine::take_result_changes))
//! and rechecks exactly those — plus the pairs whose previously-known
//! interval boundary has passed, which it tracks in a time-ordered
//! event heap. Work per tick is therefore proportional to the number
//! of changed pairs, not the result size; this is precisely what the
//! paper's bounded valid-intervals (Theorems 1–2) buy: every admitted
//! pair carries the interval that schedules its own expiry.
//!
//! Engines that do not maintain interval predictions (ETP) report no
//! changelog; for them the extractor falls back to diffing
//! `result_at` snapshots, trading the incremental cost model for the
//! same delta contract.
//!
//! The changelog is a *dirty list*, not an event stream: every recheck
//! resolves pair membership from the engine's current state, so
//! spurious entries are harmless and only missing ones would be a bug.
//! That is what makes online shard re-partitioning (the `cij-shard`
//! coordinator's `rebalance_to`) transparent here — a rebalance drains
//! the changelogs of dropped
//! shard-pair engines into the coordinator's own changelog, so every
//! pair whose owning engine changed gets rechecked against the *new*
//! topology, and pairs pruned out of the join plan read as inactive
//! exactly when their predicted intervals say so. The rebalance tests
//! in `tests/shard_rebalance.rs` pin the resulting delta stream
//! bit-identical to the single-engine stream across re-partitions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

use cij_core::{ContinuousJoinEngine, PairKey};
use cij_geom::{Time, TimeInterval};

use crate::event::ResultDelta;

/// Total-ordered time for the event heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdTime(Time);

impl Eq for OrdTime {}

impl PartialOrd for OrdTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Why a pair is scheduled for a recheck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A future interval starts at the event time — due once the clock
    /// reaches it (`t ≥ start`).
    Activation,
    /// The reported interval ends at the event time — due once the
    /// clock passes it (`t > end`; the end instant itself is still
    /// active under closed-interval semantics).
    Expiry,
}

/// One scheduled recheck. The full derive order (time, kind, pair,
/// generation) keeps heap pops deterministic when times tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: OrdTime,
    kind: EventKind,
    pair: PairKey,
    generation: u64,
}

/// Incremental delta extractor over one engine.
#[derive(Debug, Default)]
pub(crate) struct DeltaExtractor {
    /// Pairs currently reported to subscribers, with the interval they
    /// were admitted under.
    reported: HashMap<PairKey, TimeInterval>,
    /// Outstanding scheduled recheck per pair: an event is live iff its
    /// generation matches this entry. Absent entry = no live event.
    live: HashMap<PairKey, u64>,
    next_generation: u64,
    events: BinaryHeap<Reverse<Event>>,
    last_tick: Option<Time>,
}

impl DeltaExtractor {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The currently-reported pairs with their admission intervals,
    /// sorted by pair (catch-up state for new or resyncing
    /// subscribers).
    pub(crate) fn current(&self) -> Vec<(PairKey, TimeInterval)> {
        let mut out: Vec<_> = self.reported.iter().map(|(&k, &iv)| (k, iv)).collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Extracts the deltas at tick `t`: removals first, then additions,
    /// each sorted by pair. `t` must be strictly greater than the
    /// previous extraction tick.
    pub(crate) fn extract(
        &mut self,
        engine: &mut dyn ContinuousJoinEngine,
        t: Time,
    ) -> Vec<ResultDelta> {
        debug_assert!(
            self.last_tick.is_none_or(|prev| t > prev),
            "extraction ticks must be strictly increasing"
        );
        self.last_tick = Some(t);

        let mut adds: Vec<(PairKey, TimeInterval)> = Vec::new();
        let mut removes: Vec<PairKey> = Vec::new();

        match engine.take_result_changes() {
            Some(dirty) => {
                // 1. Pairs the engine touched since the last extraction
                //    (already deduplicated and sorted).
                for pair in dirty {
                    self.recheck(engine, pair, t, &mut adds, &mut removes);
                }
                // 2. Pairs whose known interval boundary has passed.
                //    Rechecking bumps the generation, so any further
                //    queued events for the same pair pop as stale.
                while let Some(&Reverse(top)) = self.events.peek() {
                    let due = match top.kind {
                        EventKind::Activation => top.time.0 <= t,
                        EventKind::Expiry => top.time.0 < t,
                    };
                    if !due {
                        break;
                    }
                    self.events.pop();
                    if self.live.get(&top.pair) == Some(&top.generation) {
                        self.recheck(engine, top.pair, t, &mut adds, &mut removes);
                    }
                }
            }
            None => self.snapshot_diff(engine, t, &mut adds, &mut removes),
        }

        removes.sort_unstable();
        adds.sort_unstable_by_key(|&(pair, _)| pair);
        let mut out = Vec::with_capacity(removes.len() + adds.len());
        out.extend(
            removes
                .into_iter()
                .map(|pair| ResultDelta::PairRemoved { pair }),
        );
        out.extend(
            adds.into_iter()
                .map(|(pair, valid)| ResultDelta::PairAdded { pair, valid }),
        );
        out
    }

    /// Re-evaluates one pair against the engine at tick `t`, emitting
    /// membership changes and (re)scheduling its next boundary event.
    fn recheck(
        &mut self,
        engine: &dyn ContinuousJoinEngine,
        pair: PairKey,
        t: Time,
        adds: &mut Vec<(PairKey, TimeInterval)>,
        removes: &mut Vec<PairKey>,
    ) {
        let status = engine.pair_status_at(pair, t);
        let was_reported = self.reported.contains_key(&pair);
        match status.active {
            Some(iv) => {
                if !was_reported {
                    adds.push((pair, iv));
                }
                self.reported.insert(pair, iv);
                // The pair's own expiry wakes us to re-emit or remove;
                // any later interval is discovered at that recheck.
                self.schedule(EventKind::Expiry, iv.end, pair);
            }
            None => {
                if was_reported {
                    self.reported.remove(&pair);
                    removes.push(pair);
                }
                match status.next_start {
                    Some(start) => self.schedule(EventKind::Activation, start, pair),
                    None => {
                        // Nothing outstanding: retire the pair so the
                        // live map does not grow with dead history.
                        self.live.remove(&pair);
                    }
                }
            }
        }
    }

    fn schedule(&mut self, kind: EventKind, time: Time, pair: PairKey) {
        let generation = self.next_generation;
        self.next_generation += 1;
        self.live.insert(pair, generation);
        self.events.push(Reverse(Event {
            time: OrdTime(time),
            kind,
            pair,
            generation,
        }));
    }

    /// Fallback for engines without a changelog: diff full snapshots.
    /// Additions are admitted under `[t, ∞)` (see
    /// [`ResultDelta::PairAdded`]).
    fn snapshot_diff(
        &mut self,
        engine: &dyn ContinuousJoinEngine,
        t: Time,
        adds: &mut Vec<(PairKey, TimeInterval)>,
        removes: &mut Vec<PairKey>,
    ) {
        let now: HashSet<PairKey> = engine.result_at(t).into_iter().collect();
        removes.extend(self.reported.keys().copied().filter(|k| !now.contains(k)));
        for &pair in removes.iter() {
            self.reported.remove(&pair);
        }
        for pair in now {
            if let std::collections::hash_map::Entry::Vacant(slot) = self.reported.entry(pair) {
                let valid = TimeInterval::from(t);
                slot.insert(valid);
                adds.push((pair, valid));
            }
        }
    }

    /// Number of currently reported pairs.
    pub(crate) fn reported_len(&self) -> usize {
        self.reported.len()
    }
}
