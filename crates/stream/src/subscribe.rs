//! Subscriptions: per-consumer delta delivery with filters and bounded
//! outboxes.
//!
//! Each subscriber declares a [`SubscriptionFilter`] and owns a bounded
//! outbox. Deliveries beyond the bound evict the oldest queued item
//! under a drop-oldest policy; the next poll then starts with a
//! [`Gap`](crate::OutboxItem::Gap) marker carrying the exact drop count
//! (drop-oldest keeps the lost region contiguous at the queue front, so
//! one counter suffices).
//!
//! Filter semantics are asymmetric on purpose: a `PairAdded` is
//! delivered only when the filter matches at the delivery tick, while a
//! `PairRemoved` is delivered whenever the *subscriber still holds the
//! pair* — otherwise an object drifting out of a window filter would
//! strand pairs in the subscriber's replayed state forever.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use cij_core::PairKey;
use cij_geom::{MovingRect, Rect, Time};
use cij_tpr::ObjectId;

use crate::event::{OutboxItem, ResultDelta, StampedDelta};

/// Identifier of a registered subscriber.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriberId(pub u64);

/// What subset of the result stream a subscriber wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubscriptionFilter {
    /// Every delta.
    All,
    /// Deltas whose pair involves this object (either side).
    Object(ObjectId),
    /// Deltas where at least one of the pair's objects is spatially
    /// inside the window at the delivery tick — the same
    /// rectangle-intersection predicate the continuous window queries of
    /// §V use, evaluated against the objects' registered trajectories.
    Window(Rect),
}

impl SubscriptionFilter {
    /// Whether an addition of `pair` at tick `at` passes this filter.
    /// `track` resolves an object's currently registered trajectory.
    fn admits(&self, pair: PairKey, at: Time, tracks: &HashMap<ObjectId, MovingRect>) -> bool {
        match self {
            Self::All => true,
            Self::Object(id) => pair.0 == *id || pair.1 == *id,
            Self::Window(window) => {
                let w = MovingRect::stationary(*window, at);
                [pair.0, pair.1].iter().any(|oid| {
                    tracks
                        .get(oid)
                        .is_some_and(|mbr| w.intersect_interval(mbr, at, at).is_some())
                })
            }
        }
    }
}

/// One subscriber's delivery state.
#[derive(Debug)]
struct SubscriberState {
    filter: SubscriptionFilter,
    outbox: VecDeque<StampedDelta>,
    /// Deltas evicted (or lost to a crash) since the last poll. The
    /// drop-oldest policy keeps the lost region contiguous at the front
    /// of the queue, so this single counter describes it exactly.
    dropped: u64,
    /// Pairs this subscriber has been handed an (unrevoked) `PairAdded`
    /// for — the state its replay would hold if it kept up. Removals
    /// are routed by membership here, not by the filter.
    delivered: HashSet<PairKey>,
}

/// The set of subscribers and their outboxes.
#[derive(Debug)]
pub(crate) struct SubscriptionRegistry {
    subscribers: BTreeMap<SubscriberId, SubscriberState>,
    next_id: u64,
    outbox_capacity: usize,
    /// Cumulative deliveries lost across all subscribers (outbox
    /// evictions plus crash/resync losses) — never reset; the service
    /// mirrors it into the `stream.subscribers.dropped_deltas` metric.
    total_dropped: u64,
}

impl SubscriptionRegistry {
    pub(crate) fn new(outbox_capacity: usize) -> Self {
        assert!(outbox_capacity > 0, "outbox capacity must be nonzero");
        Self {
            subscribers: BTreeMap::new(),
            next_id: 0,
            outbox_capacity,
            total_dropped: 0,
        }
    }

    /// Registers a subscriber and returns its fresh id.
    pub(crate) fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriberId {
        let id = SubscriberId(self.next_id);
        self.next_id += 1;
        self.insert_with_id(id, filter);
        id
    }

    /// Re-registers a subscriber under a known id (WAL replay).
    pub(crate) fn insert_with_id(&mut self, id: SubscriberId, filter: SubscriptionFilter) {
        self.next_id = self.next_id.max(id.0 + 1);
        self.subscribers.insert(
            id,
            SubscriberState {
                filter,
                outbox: VecDeque::new(),
                dropped: 0,
                delivered: HashSet::new(),
            },
        );
    }

    /// Drops a subscriber. Returns whether it existed.
    pub(crate) fn unsubscribe(&mut self, id: SubscriberId) -> bool {
        self.subscribers.remove(&id).is_some()
    }

    /// Routes one extraction's deltas to every subscriber.
    ///
    /// With `suppress` set (the service's `DegradeToResync` degraded
    /// window), filters and the per-subscriber `delivered` membership
    /// are evaluated exactly as in normal delivery, but instead of
    /// entering the outbox each wanted delivery is counted into the
    /// subscriber's gap counter — so the `Gap` a subscriber later sees
    /// is **exact**, not a lower bound.
    pub(crate) fn deliver(
        &mut self,
        deltas: &[StampedDelta],
        tracks: &HashMap<ObjectId, MovingRect>,
        suppress: bool,
    ) {
        let capacity = self.outbox_capacity;
        for state in self.subscribers.values_mut() {
            for item in deltas {
                let wanted = match item.delta {
                    ResultDelta::PairAdded { pair, .. } => {
                        state.filter.admits(pair, item.at, tracks) && state.delivered.insert(pair)
                    }
                    ResultDelta::PairRemoved { pair } => state.delivered.remove(&pair),
                };
                if !wanted {
                    continue;
                }
                if suppress {
                    state.dropped += 1;
                    self.total_dropped += 1;
                } else {
                    Self::push_bounded(state, *item, capacity, &mut self.total_dropped);
                }
            }
        }
    }

    fn push_bounded(
        state: &mut SubscriberState,
        item: StampedDelta,
        capacity: usize,
        total_dropped: &mut u64,
    ) {
        if state.outbox.len() >= capacity {
            state.outbox.pop_front();
            state.dropped += 1;
            *total_dropped += 1;
        }
        state.outbox.push_back(item);
    }

    /// Drains a subscriber's outbox. A [`Gap`](OutboxItem::Gap) marker
    /// leads when deliveries were lost since the previous poll. `None`
    /// for unknown subscribers.
    pub(crate) fn poll(&mut self, id: SubscriberId) -> Option<Vec<OutboxItem>> {
        let state = self.subscribers.get_mut(&id)?;
        let mut out = Vec::with_capacity(state.outbox.len() + 1);
        if state.dropped > 0 {
            out.push(OutboxItem::Gap {
                dropped: std::mem::take(&mut state.dropped),
            });
        }
        out.extend(state.outbox.drain(..).map(OutboxItem::Delta));
        Some(out)
    }

    /// Rebuilds a subscriber's view from authoritative state: clears the
    /// outbox, records `lost` dropped deliveries (0 for a voluntary
    /// resync), and seeds filtered `PairAdded`s for the currently
    /// reported pairs. Returns whether the subscriber exists.
    ///
    /// `charge_cleared` additionally counts every undelivered outbox
    /// item discarded by the clear into the gap counter — the
    /// degrade-resync path uses it so gap accounting stays exact even
    /// for subscribers that had not polled before degradation; crash
    /// recovery passes `false` (those outboxes died with the process
    /// and are covered by the explicit `lost` lower bound), as does a
    /// voluntary resync (the subscriber itself asked for the clear).
    pub(crate) fn reseed(
        &mut self,
        id: SubscriberId,
        lost: u64,
        at: Time,
        current: &[(PairKey, cij_geom::TimeInterval)],
        tracks: &HashMap<ObjectId, MovingRect>,
        charge_cleared: bool,
    ) -> bool {
        let capacity = self.outbox_capacity;
        let Some(state) = self.subscribers.get_mut(&id) else {
            return false;
        };
        if charge_cleared {
            let cleared = state.outbox.len() as u64;
            state.dropped += cleared;
            self.total_dropped += cleared;
        }
        state.outbox.clear();
        state.delivered.clear();
        state.dropped += lost;
        self.total_dropped += lost;
        for &(pair, valid) in current {
            if state.filter.admits(pair, at, tracks) && state.delivered.insert(pair) {
                Self::push_bounded(
                    state,
                    StampedDelta {
                        at,
                        delta: ResultDelta::PairAdded { pair, valid },
                    },
                    capacity,
                    &mut self.total_dropped,
                );
            }
        }
        true
    }

    /// Cumulative deliveries lost across all subscribers (see the field
    /// docs) — monotonic, suitable for a counter metric.
    pub(crate) fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// All subscriber ids, ascending.
    pub(crate) fn ids(&self) -> Vec<SubscriberId> {
        self.subscribers.keys().copied().collect()
    }

    /// Number of subscribers.
    pub(crate) fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// A subscriber's filter, if registered.
    pub(crate) fn filter(&self, id: SubscriberId) -> Option<SubscriptionFilter> {
        self.subscribers.get(&id).map(|s| s.filter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::TimeInterval;

    fn pair(a: u64, b: u64) -> PairKey {
        (ObjectId(a), ObjectId(b))
    }

    fn add(at: Time, a: u64, b: u64) -> StampedDelta {
        StampedDelta {
            at,
            delta: ResultDelta::PairAdded {
                pair: pair(a, b),
                valid: TimeInterval::from(at),
            },
        }
    }

    fn remove(at: Time, a: u64, b: u64) -> StampedDelta {
        StampedDelta {
            at,
            delta: ResultDelta::PairRemoved { pair: pair(a, b) },
        }
    }

    fn tracks(entries: &[(u64, f64, f64)]) -> HashMap<ObjectId, MovingRect> {
        entries
            .iter()
            .map(|&(id, x, y)| {
                let mbr = MovingRect::stationary(Rect::new([x, y], [x + 1.0, y + 1.0]), 0.0);
                (ObjectId(id), mbr)
            })
            .collect()
    }

    #[test]
    fn object_filter_delivers_both_sides() {
        let mut reg = SubscriptionRegistry::new(16);
        let s = reg.subscribe(SubscriptionFilter::Object(ObjectId(7)));
        let t = tracks(&[]);
        reg.deliver(
            &[add(1.0, 7, 100), add(1.0, 8, 100), add(1.0, 3, 7)],
            &t,
            false,
        );
        let items = reg.poll(s).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], OutboxItem::Delta(add(1.0, 7, 100)));
        assert_eq!(items[1], OutboxItem::Delta(add(1.0, 3, 7)));
        // Polling again yields nothing new.
        assert!(reg.poll(s).unwrap().is_empty());
    }

    #[test]
    fn window_filter_uses_object_positions() {
        let mut reg = SubscriptionRegistry::new(16);
        let s = reg.subscribe(SubscriptionFilter::Window(Rect::new(
            [0.0, 0.0],
            [10.0, 10.0],
        )));
        // Object 1 inside the window, objects 2 and 3 far away.
        let t = tracks(&[(1, 5.0, 5.0), (2, 100.0, 100.0), (3, 200.0, 200.0)]);
        reg.deliver(&[add(1.0, 1, 2), add(1.0, 2, 3)], &t, false);
        let items = reg.poll(s).unwrap();
        assert_eq!(items, vec![OutboxItem::Delta(add(1.0, 1, 2))]);
    }

    #[test]
    fn removal_reaches_holders_even_outside_the_filter() {
        let mut reg = SubscriptionRegistry::new(16);
        let s = reg.subscribe(SubscriptionFilter::Window(Rect::new(
            [0.0, 0.0],
            [10.0, 10.0],
        )));
        let inside = tracks(&[(1, 5.0, 5.0), (2, 5.0, 5.0)]);
        reg.deliver(&[add(1.0, 1, 2)], &inside, false);
        // Both objects have left the window by the time the pair ends.
        let outside = tracks(&[(1, 500.0, 500.0), (2, 500.0, 500.0)]);
        reg.deliver(&[remove(9.0, 1, 2)], &outside, false);
        let items = reg.poll(s).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1], OutboxItem::Delta(remove(9.0, 1, 2)));
        // A removal of a never-delivered pair is filtered out entirely.
        reg.deliver(&[remove(10.0, 3, 4)], &outside, false);
        assert!(reg.poll(s).unwrap().is_empty());
    }

    #[test]
    fn slow_consumer_gets_gap_marker_with_exact_count() {
        let mut reg = SubscriptionRegistry::new(3);
        let s = reg.subscribe(SubscriptionFilter::All);
        let t = tracks(&[]);
        for i in 0..5 {
            reg.deliver(&[add(i as f64, i, 100 + i)], &t, false);
        }
        let items = reg.poll(s).unwrap();
        assert_eq!(items[0], OutboxItem::Gap { dropped: 2 });
        assert_eq!(items.len(), 4); // gap + the 3 newest deliveries
        assert_eq!(items[1], OutboxItem::Delta(add(2.0, 2, 102)));
        // The gap is reported once.
        assert!(reg.poll(s).unwrap().is_empty());
    }

    #[test]
    fn reseed_replaces_outbox_with_current_state() {
        let mut reg = SubscriptionRegistry::new(16);
        let s = reg.subscribe(SubscriptionFilter::All);
        let t = tracks(&[]);
        reg.deliver(&[add(1.0, 1, 2), add(1.0, 3, 4)], &t, false);
        let current = vec![(pair(5, 6), TimeInterval::from(2.0))];
        assert!(reg.reseed(s, 7, 2.0, &current, &t, false));
        let items = reg.poll(s).unwrap();
        assert_eq!(items[0], OutboxItem::Gap { dropped: 7 });
        assert_eq!(items.len(), 2);
        assert!(
            matches!(items[1], OutboxItem::Delta(d) if d.delta.pair() == pair(5, 6) && d.delta.is_add())
        );
        assert!(!reg.reseed(SubscriberId(99), 0, 2.0, &current, &t, false));
    }

    #[test]
    fn unsubscribe_stops_delivery_and_ids_stay_unique() {
        let mut reg = SubscriptionRegistry::new(16);
        let a = reg.subscribe(SubscriptionFilter::All);
        let b = reg.subscribe(SubscriptionFilter::All);
        assert_ne!(a, b);
        assert!(reg.unsubscribe(a));
        assert!(!reg.unsubscribe(a));
        assert!(reg.poll(a).is_none());
        assert_eq!(reg.ids(), vec![b]);
        // Replayed ids never collide with fresh ones.
        reg.insert_with_id(SubscriberId(10), SubscriptionFilter::All);
        let c = reg.subscribe(SubscriptionFilter::All);
        assert!(c.0 > 10);
    }
}
