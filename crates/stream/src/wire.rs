//! Wire format of the service's write-ahead log records and the shared
//! codec the distributed protocol (`cij-dist`) builds on.
//!
//! Each WAL payload (the framing — length prefix and CRC — lives in
//! [`cij_storage::Wal`]) is one tagged record encoded with the
//! byte-slice codec from `cij_storage::codec`. Everything an engine
//! needs to be rebuilt deterministically is journaled: the genesis
//! object sets, every applied update batch, object retirements, and the
//! subscription control operations.
//!
//! Every payload opens with a two-byte protocol header —
//! [`PROTOCOL_MAGIC`] then [`PROTOCOL_VERSION`] — so a peer (or a
//! recovery pass) reading bytes produced by a different build fails
//! fast with a typed [`WireError`] instead of misparsing garbage. The
//! cross-process transports in `cij-dist` stamp the same header on
//! their frames via [`put_header`]/[`check_header`].

use cij_geom::{MovingRect, Rect, Time};
use cij_storage::codec::{ByteReader, ByteWriter};
use cij_storage::{StorageError, StorageResult};
use cij_tpr::ObjectId;
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

use crate::subscribe::{SubscriberId, SubscriptionFilter};

/// First byte of every wire payload. Anything else is not ours.
pub const PROTOCOL_MAGIC: u8 = 0xC1;

/// Current protocol version, bumped on any incompatible layout change.
/// Peers (and recovery) refuse payloads from other versions outright —
/// there is no cross-version negotiation.
pub const PROTOCOL_VERSION: u8 = 1;

const TAG_GENESIS: u8 = 0x01;
const TAG_BATCH: u8 = 0x02;
const TAG_SUBSCRIBE: u8 = 0x03;
const TAG_UNSUBSCRIBE: u8 = 0x04;
const TAG_RETIRE: u8 = 0x05;

const FILTER_ALL: u8 = 0;
const FILTER_OBJECT: u8 = 1;
const FILTER_WINDOW: u8 = 2;

/// Why a wire payload was rejected. The magic/version variants are the
/// fail-fast path cross-process peers rely on: they fire on the first
/// two bytes, before any field of the payload is interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload does not start with [`PROTOCOL_MAGIC`] — it was not
    /// produced by this protocol at all.
    BadMagic {
        /// The byte found where the magic was expected (`None` when the
        /// payload was empty).
        found: Option<u8>,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The version this build supports ([`PROTOCOL_VERSION`]).
        supported: u8,
        /// The version stamped on the payload.
        found: u8,
    },
    /// The header checked out but the body failed validation (truncated
    /// fields, unknown tags, trailing bytes).
    Corrupt(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic { found: Some(b) } => {
                write!(
                    f,
                    "bad protocol magic {b:#04x} (expected {PROTOCOL_MAGIC:#04x})"
                )
            }
            Self::BadMagic { found: None } => write!(f, "empty payload (no protocol header)"),
            Self::VersionMismatch { supported, found } => write!(
                f,
                "protocol version mismatch: peer speaks v{found}, this build supports v{supported}"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt wire payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<StorageError> for WireError {
    fn from(e: StorageError) -> Self {
        Self::Corrupt(e.to_string())
    }
}

/// Stamps the two-byte protocol header on a payload under construction.
pub fn put_header(w: &mut ByteWriter) {
    w.put_u8(PROTOCOL_MAGIC);
    w.put_u8(PROTOCOL_VERSION);
}

/// Validates a payload's protocol header and returns the body after it.
///
/// # Errors
/// [`WireError::BadMagic`] when the first byte is not
/// [`PROTOCOL_MAGIC`]; [`WireError::VersionMismatch`] when the second
/// byte is not [`PROTOCOL_VERSION`].
pub fn check_header(payload: &[u8]) -> Result<&[u8], WireError> {
    match payload {
        [] => Err(WireError::BadMagic { found: None }),
        [magic, ..] if *magic != PROTOCOL_MAGIC => Err(WireError::BadMagic {
            found: Some(*magic),
        }),
        [_] => Err(WireError::Corrupt("header truncated after magic".into())),
        [_, version, ..] if *version != PROTOCOL_VERSION => Err(WireError::VersionMismatch {
            supported: PROTOCOL_VERSION,
            found: *version,
        }),
        [_, _, body @ ..] => Ok(body),
    }
}

/// One journaled service operation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// The initial object sets and start time — written once, first.
    Genesis {
        /// Service start time.
        start: Time,
        /// Initial A-side objects.
        set_a: Vec<MovingObject>,
        /// Initial B-side objects.
        set_b: Vec<MovingObject>,
    },
    /// One coalesced update batch, journaled before it is applied.
    Batch {
        /// The batch's tick.
        at: Time,
        /// The updates, in application order.
        updates: Vec<ObjectUpdate>,
    },
    /// A subscriber registration.
    Subscribe {
        /// The id handed to the subscriber.
        id: SubscriberId,
        /// Its filter.
        filter: SubscriptionFilter,
    },
    /// A subscriber removal.
    Unsubscribe {
        /// The removed id.
        id: SubscriberId,
    },
    /// An object retirement: the object leaves the engine, its tracks
    /// and its ingest translation entry are pruned.
    Retire {
        /// The service clock at retirement.
        at: Time,
        /// Which side the object belonged to.
        set: SetTag,
        /// The retired object.
        id: ObjectId,
    },
}

/// Appends a moving rectangle's fields.
pub fn put_mrect(w: &mut ByteWriter, r: &MovingRect) {
    for d in 0..cij_geom::DIMS {
        w.put_f64(r.lo[d]);
        w.put_f64(r.hi[d]);
        w.put_f64(r.vlo[d]);
        w.put_f64(r.vhi[d]);
    }
    w.put_f64(r.t_ref);
}

/// Reads a moving rectangle written by [`put_mrect`].
///
/// # Errors
/// [`StorageError::Corrupt`] on truncation.
pub fn get_mrect(r: &mut ByteReader<'_>) -> StorageResult<MovingRect> {
    let mut m = MovingRect {
        lo: [0.0; cij_geom::DIMS],
        hi: [0.0; cij_geom::DIMS],
        vlo: [0.0; cij_geom::DIMS],
        vhi: [0.0; cij_geom::DIMS],
        t_ref: 0.0,
    };
    for d in 0..cij_geom::DIMS {
        m.lo[d] = r.get_f64()?;
        m.hi[d] = r.get_f64()?;
        m.vlo[d] = r.get_f64()?;
        m.vhi[d] = r.get_f64()?;
    }
    m.t_ref = r.get_f64()?;
    Ok(m)
}

/// Appends a length-prefixed object list.
pub fn put_objects(w: &mut ByteWriter, objects: &[MovingObject]) {
    w.put_u32(objects.len() as u32);
    for o in objects {
        w.put_u64(o.id.0);
        put_mrect(w, &o.mbr);
    }
}

/// Reads an object list written by [`put_objects`].
///
/// # Errors
/// [`StorageError::Corrupt`] on truncation.
pub fn get_objects(r: &mut ByteReader<'_>) -> StorageResult<Vec<MovingObject>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let id = ObjectId(r.get_u64()?);
        let mbr = get_mrect(r)?;
        out.push(MovingObject { id, mbr });
    }
    Ok(out)
}

/// Encodes a set tag as one byte.
#[must_use]
pub fn set_to_byte(set: SetTag) -> u8 {
    match set {
        SetTag::A => 1,
        SetTag::B => 2,
    }
}

/// Decodes a set tag byte written by [`set_to_byte`].
///
/// # Errors
/// [`StorageError::Corrupt`] on any other byte.
pub fn set_from_byte(b: u8) -> StorageResult<SetTag> {
    match b {
        1 => Ok(SetTag::A),
        2 => Ok(SetTag::B),
        other => Err(StorageError::Corrupt(format!("invalid set tag {other}"))),
    }
}

/// Appends one trajectory update.
pub fn put_update(w: &mut ByteWriter, u: &ObjectUpdate) {
    w.put_u64(u.id.0);
    w.put_u8(set_to_byte(u.set));
    put_mrect(w, &u.old_mbr);
    w.put_f64(u.last_update);
    put_mrect(w, &u.new_mbr);
}

/// Reads one trajectory update written by [`put_update`].
///
/// # Errors
/// [`StorageError::Corrupt`] on truncation or an invalid set tag.
pub fn get_update(r: &mut ByteReader<'_>) -> StorageResult<ObjectUpdate> {
    let id = ObjectId(r.get_u64()?);
    let set = set_from_byte(r.get_u8()?)?;
    let old_mbr = get_mrect(r)?;
    let last_update = r.get_f64()?;
    let new_mbr = get_mrect(r)?;
    Ok(ObjectUpdate {
        id,
        set,
        old_mbr,
        last_update,
        new_mbr,
    })
}

impl WalRecord {
    /// Serializes the record into a WAL payload (protocol header
    /// included).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_header(&mut w);
        match self {
            Self::Genesis {
                start,
                set_a,
                set_b,
            } => {
                w.put_u8(TAG_GENESIS);
                w.put_f64(*start);
                put_objects(&mut w, set_a);
                put_objects(&mut w, set_b);
            }
            Self::Batch { at, updates } => {
                w.put_u8(TAG_BATCH);
                w.put_f64(*at);
                w.put_u32(updates.len() as u32);
                for u in updates {
                    put_update(&mut w, u);
                }
            }
            Self::Subscribe { id, filter } => {
                w.put_u8(TAG_SUBSCRIBE);
                w.put_u64(id.0);
                match filter {
                    SubscriptionFilter::All => w.put_u8(FILTER_ALL),
                    SubscriptionFilter::Object(oid) => {
                        w.put_u8(FILTER_OBJECT);
                        w.put_u64(oid.0);
                    }
                    SubscriptionFilter::Window(rect) => {
                        w.put_u8(FILTER_WINDOW);
                        for d in 0..cij_geom::DIMS {
                            w.put_f64(rect.lo[d]);
                            w.put_f64(rect.hi[d]);
                        }
                    }
                }
            }
            Self::Unsubscribe { id } => {
                w.put_u8(TAG_UNSUBSCRIBE);
                w.put_u64(id.0);
            }
            Self::Retire { at, set, id } => {
                w.put_u8(TAG_RETIRE);
                w.put_f64(*at);
                w.put_u8(set_to_byte(*set));
                w.put_u64(id.0);
            }
        }
        w.into_bytes()
    }

    /// Deserializes one WAL payload. The protocol header is validated
    /// first (typed magic/version errors); trailing bytes are rejected —
    /// a record is exactly one frame.
    pub(crate) fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let body = check_header(payload)?;
        let mut r = ByteReader::new(body);
        let record = match r.get_u8()? {
            TAG_GENESIS => {
                let start = r.get_f64()?;
                let set_a = get_objects(&mut r)?;
                let set_b = get_objects(&mut r)?;
                Self::Genesis {
                    start,
                    set_a,
                    set_b,
                }
            }
            TAG_BATCH => {
                let at = r.get_f64()?;
                let n = r.get_u32()? as usize;
                let mut updates = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    updates.push(get_update(&mut r)?);
                }
                Self::Batch { at, updates }
            }
            TAG_SUBSCRIBE => {
                let id = SubscriberId(r.get_u64()?);
                let filter = match r.get_u8()? {
                    FILTER_ALL => SubscriptionFilter::All,
                    FILTER_OBJECT => SubscriptionFilter::Object(ObjectId(r.get_u64()?)),
                    FILTER_WINDOW => {
                        let mut lo = [0.0; cij_geom::DIMS];
                        let mut hi = [0.0; cij_geom::DIMS];
                        for d in 0..cij_geom::DIMS {
                            lo[d] = r.get_f64()?;
                            hi[d] = r.get_f64()?;
                        }
                        SubscriptionFilter::Window(Rect::new(lo, hi))
                    }
                    other => {
                        return Err(WireError::Corrupt(format!(
                            "invalid subscription filter tag {other}"
                        )))
                    }
                };
                Self::Subscribe { id, filter }
            }
            TAG_UNSUBSCRIBE => Self::Unsubscribe {
                id: SubscriberId(r.get_u64()?),
            },
            TAG_RETIRE => {
                let at = r.get_f64()?;
                let set = set_from_byte(r.get_u8()?)?;
                let id = ObjectId(r.get_u64()?);
                Self::Retire { at, set, id }
            }
            other => {
                return Err(WireError::Corrupt(format!(
                    "unknown WAL record tag {other:#04x}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after WAL record",
                r.remaining()
            )));
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrect(seed: f64) -> MovingRect {
        MovingRect {
            lo: [seed, seed + 1.0],
            hi: [seed + 2.0, seed + 3.0],
            vlo: [-seed, 0.5],
            vhi: [-seed, 0.75],
            t_ref: seed * 10.0,
        }
    }

    #[test]
    fn all_record_kinds_round_trip() {
        let records = vec![
            WalRecord::Genesis {
                start: 3.5,
                set_a: vec![MovingObject {
                    id: ObjectId(1),
                    mbr: mrect(1.0),
                }],
                set_b: vec![
                    MovingObject {
                        id: ObjectId(2),
                        mbr: mrect(2.0),
                    },
                    MovingObject {
                        id: ObjectId(3),
                        mbr: mrect(3.0),
                    },
                ],
            },
            WalRecord::Batch {
                at: 7.0,
                updates: vec![ObjectUpdate {
                    id: ObjectId(9),
                    set: SetTag::B,
                    old_mbr: mrect(4.0),
                    last_update: 2.0,
                    new_mbr: mrect(5.0),
                }],
            },
            WalRecord::Batch {
                at: 8.0,
                updates: Vec::new(),
            },
            WalRecord::Subscribe {
                id: SubscriberId(11),
                filter: SubscriptionFilter::All,
            },
            WalRecord::Subscribe {
                id: SubscriberId(12),
                filter: SubscriptionFilter::Object(ObjectId(77)),
            },
            WalRecord::Subscribe {
                id: SubscriberId(13),
                filter: SubscriptionFilter::Window(Rect::new([0.0, 1.0], [10.0, 11.0])),
            },
            WalRecord::Unsubscribe {
                id: SubscriberId(12),
            },
            WalRecord::Retire {
                at: 9.5,
                set: SetTag::A,
                id: ObjectId(4),
            },
        ];
        for record in records {
            let bytes = record.encode();
            assert_eq!(bytes[0], PROTOCOL_MAGIC, "{record:?}");
            assert_eq!(bytes[1], PROTOCOL_VERSION, "{record:?}");
            assert_eq!(WalRecord::decode(&bytes).unwrap(), record, "{record:?}");
        }
    }

    #[test]
    fn garbage_is_rejected_not_misparsed() {
        assert_eq!(
            WalRecord::decode(&[]),
            Err(WireError::BadMagic { found: None })
        );
        assert_eq!(
            WalRecord::decode(&[0xFF]),
            Err(WireError::BadMagic { found: Some(0xFF) })
        );
        // Truncated batch: claims one update, carries none.
        let mut w = ByteWriter::new();
        put_header(&mut w);
        w.put_u8(0x02);
        w.put_f64(1.0);
        w.put_u32(1);
        assert!(matches!(
            WalRecord::decode(&w.into_bytes()),
            Err(WireError::Corrupt(_))
        ));
        // Trailing junk after a valid record.
        let mut bytes = WalRecord::Unsubscribe {
            id: SubscriberId(1),
        }
        .encode();
        bytes.push(0);
        assert!(matches!(
            WalRecord::decode(&bytes),
            Err(WireError::Corrupt(_))
        ));
    }

    #[test]
    fn foreign_magic_and_future_version_are_typed_errors() {
        let good = WalRecord::Unsubscribe {
            id: SubscriberId(1),
        }
        .encode();

        // Same bytes under a different magic: BadMagic, before any
        // payload field is read.
        let mut foreign = good.clone();
        foreign[0] = 0x42;
        assert_eq!(
            WalRecord::decode(&foreign),
            Err(WireError::BadMagic { found: Some(0x42) })
        );

        // A future version of our own protocol: VersionMismatch naming
        // both sides.
        let mut future = good.clone();
        future[1] = PROTOCOL_VERSION + 1;
        assert_eq!(
            WalRecord::decode(&future),
            Err(WireError::VersionMismatch {
                supported: PROTOCOL_VERSION,
                found: PROTOCOL_VERSION + 1
            })
        );

        // check_header returns the body unchanged on a good payload.
        assert_eq!(check_header(&good).unwrap(), &good[2..]);
    }

    #[test]
    fn update_codec_round_trips() {
        let u = ObjectUpdate {
            id: ObjectId(42),
            set: SetTag::B,
            old_mbr: mrect(1.5),
            last_update: 3.0,
            new_mbr: mrect(2.5),
        };
        let mut w = ByteWriter::new();
        put_update(&mut w, &u);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(get_update(&mut r).unwrap(), u);
        assert_eq!(r.remaining(), 0);
    }
}
