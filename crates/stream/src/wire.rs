//! Wire format of the service's write-ahead log records.
//!
//! Each WAL payload (the framing — length prefix and CRC — lives in
//! [`cij_storage::Wal`]) is one tagged record encoded with the
//! byte-slice codec from `cij_storage::codec`. Everything an engine
//! needs to be rebuilt deterministically is journaled: the genesis
//! object sets, every applied update batch, and the subscription
//! control operations.

use cij_geom::{MovingRect, Rect, Time};
use cij_storage::codec::{ByteReader, ByteWriter};
use cij_storage::{StorageError, StorageResult};
use cij_tpr::ObjectId;
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

use crate::subscribe::{SubscriberId, SubscriptionFilter};

const TAG_GENESIS: u8 = 0x01;
const TAG_BATCH: u8 = 0x02;
const TAG_SUBSCRIBE: u8 = 0x03;
const TAG_UNSUBSCRIBE: u8 = 0x04;

const FILTER_ALL: u8 = 0;
const FILTER_OBJECT: u8 = 1;
const FILTER_WINDOW: u8 = 2;

/// One journaled service operation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// The initial object sets and start time — written once, first.
    Genesis {
        /// Service start time.
        start: Time,
        /// Initial A-side objects.
        set_a: Vec<MovingObject>,
        /// Initial B-side objects.
        set_b: Vec<MovingObject>,
    },
    /// One coalesced update batch, journaled before it is applied.
    Batch {
        /// The batch's tick.
        at: Time,
        /// The updates, in application order.
        updates: Vec<ObjectUpdate>,
    },
    /// A subscriber registration.
    Subscribe {
        /// The id handed to the subscriber.
        id: SubscriberId,
        /// Its filter.
        filter: SubscriptionFilter,
    },
    /// A subscriber removal.
    Unsubscribe {
        /// The removed id.
        id: SubscriberId,
    },
}

fn put_mrect(w: &mut ByteWriter, r: &MovingRect) {
    for d in 0..cij_geom::DIMS {
        w.put_f64(r.lo[d]);
        w.put_f64(r.hi[d]);
        w.put_f64(r.vlo[d]);
        w.put_f64(r.vhi[d]);
    }
    w.put_f64(r.t_ref);
}

fn get_mrect(r: &mut ByteReader<'_>) -> StorageResult<MovingRect> {
    let mut m = MovingRect {
        lo: [0.0; cij_geom::DIMS],
        hi: [0.0; cij_geom::DIMS],
        vlo: [0.0; cij_geom::DIMS],
        vhi: [0.0; cij_geom::DIMS],
        t_ref: 0.0,
    };
    for d in 0..cij_geom::DIMS {
        m.lo[d] = r.get_f64()?;
        m.hi[d] = r.get_f64()?;
        m.vlo[d] = r.get_f64()?;
        m.vhi[d] = r.get_f64()?;
    }
    m.t_ref = r.get_f64()?;
    Ok(m)
}

fn put_objects(w: &mut ByteWriter, objects: &[MovingObject]) {
    w.put_u32(objects.len() as u32);
    for o in objects {
        w.put_u64(o.id.0);
        put_mrect(w, &o.mbr);
    }
}

fn get_objects(r: &mut ByteReader<'_>) -> StorageResult<Vec<MovingObject>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let id = ObjectId(r.get_u64()?);
        let mbr = get_mrect(r)?;
        out.push(MovingObject { id, mbr });
    }
    Ok(out)
}

fn set_to_byte(set: SetTag) -> u8 {
    match set {
        SetTag::A => 1,
        SetTag::B => 2,
    }
}

fn set_from_byte(b: u8) -> StorageResult<SetTag> {
    match b {
        1 => Ok(SetTag::A),
        2 => Ok(SetTag::B),
        other => Err(StorageError::Corrupt(format!("invalid set tag {other}"))),
    }
}

impl WalRecord {
    /// Serializes the record into a WAL payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Self::Genesis {
                start,
                set_a,
                set_b,
            } => {
                w.put_u8(TAG_GENESIS);
                w.put_f64(*start);
                put_objects(&mut w, set_a);
                put_objects(&mut w, set_b);
            }
            Self::Batch { at, updates } => {
                w.put_u8(TAG_BATCH);
                w.put_f64(*at);
                w.put_u32(updates.len() as u32);
                for u in updates {
                    w.put_u64(u.id.0);
                    w.put_u8(set_to_byte(u.set));
                    put_mrect(&mut w, &u.old_mbr);
                    w.put_f64(u.last_update);
                    put_mrect(&mut w, &u.new_mbr);
                }
            }
            Self::Subscribe { id, filter } => {
                w.put_u8(TAG_SUBSCRIBE);
                w.put_u64(id.0);
                match filter {
                    SubscriptionFilter::All => w.put_u8(FILTER_ALL),
                    SubscriptionFilter::Object(oid) => {
                        w.put_u8(FILTER_OBJECT);
                        w.put_u64(oid.0);
                    }
                    SubscriptionFilter::Window(rect) => {
                        w.put_u8(FILTER_WINDOW);
                        for d in 0..cij_geom::DIMS {
                            w.put_f64(rect.lo[d]);
                            w.put_f64(rect.hi[d]);
                        }
                    }
                }
            }
            Self::Unsubscribe { id } => {
                w.put_u8(TAG_UNSUBSCRIBE);
                w.put_u64(id.0);
            }
        }
        w.into_bytes()
    }

    /// Deserializes one WAL payload. Trailing bytes are rejected — a
    /// record is exactly one frame.
    pub(crate) fn decode(payload: &[u8]) -> StorageResult<Self> {
        let mut r = ByteReader::new(payload);
        let record = match r.get_u8()? {
            TAG_GENESIS => {
                let start = r.get_f64()?;
                let set_a = get_objects(&mut r)?;
                let set_b = get_objects(&mut r)?;
                Self::Genesis {
                    start,
                    set_a,
                    set_b,
                }
            }
            TAG_BATCH => {
                let at = r.get_f64()?;
                let n = r.get_u32()? as usize;
                let mut updates = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let id = ObjectId(r.get_u64()?);
                    let set = set_from_byte(r.get_u8()?)?;
                    let old_mbr = get_mrect(&mut r)?;
                    let last_update = r.get_f64()?;
                    let new_mbr = get_mrect(&mut r)?;
                    updates.push(ObjectUpdate {
                        id,
                        set,
                        old_mbr,
                        last_update,
                        new_mbr,
                    });
                }
                Self::Batch { at, updates }
            }
            TAG_SUBSCRIBE => {
                let id = SubscriberId(r.get_u64()?);
                let filter = match r.get_u8()? {
                    FILTER_ALL => SubscriptionFilter::All,
                    FILTER_OBJECT => SubscriptionFilter::Object(ObjectId(r.get_u64()?)),
                    FILTER_WINDOW => {
                        let mut lo = [0.0; cij_geom::DIMS];
                        let mut hi = [0.0; cij_geom::DIMS];
                        for d in 0..cij_geom::DIMS {
                            lo[d] = r.get_f64()?;
                            hi[d] = r.get_f64()?;
                        }
                        SubscriptionFilter::Window(Rect::new(lo, hi))
                    }
                    other => {
                        return Err(StorageError::Corrupt(format!(
                            "invalid subscription filter tag {other}"
                        )))
                    }
                };
                Self::Subscribe { id, filter }
            }
            TAG_UNSUBSCRIBE => Self::Unsubscribe {
                id: SubscriberId(r.get_u64()?),
            },
            other => {
                return Err(StorageError::Corrupt(format!(
                    "unknown WAL record tag {other:#04x}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(StorageError::Corrupt(format!(
                "{} trailing bytes after WAL record",
                r.remaining()
            )));
        }
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrect(seed: f64) -> MovingRect {
        MovingRect {
            lo: [seed, seed + 1.0],
            hi: [seed + 2.0, seed + 3.0],
            vlo: [-seed, 0.5],
            vhi: [-seed, 0.75],
            t_ref: seed * 10.0,
        }
    }

    #[test]
    fn all_record_kinds_round_trip() {
        let records = vec![
            WalRecord::Genesis {
                start: 3.5,
                set_a: vec![MovingObject {
                    id: ObjectId(1),
                    mbr: mrect(1.0),
                }],
                set_b: vec![
                    MovingObject {
                        id: ObjectId(2),
                        mbr: mrect(2.0),
                    },
                    MovingObject {
                        id: ObjectId(3),
                        mbr: mrect(3.0),
                    },
                ],
            },
            WalRecord::Batch {
                at: 7.0,
                updates: vec![ObjectUpdate {
                    id: ObjectId(9),
                    set: SetTag::B,
                    old_mbr: mrect(4.0),
                    last_update: 2.0,
                    new_mbr: mrect(5.0),
                }],
            },
            WalRecord::Batch {
                at: 8.0,
                updates: Vec::new(),
            },
            WalRecord::Subscribe {
                id: SubscriberId(11),
                filter: SubscriptionFilter::All,
            },
            WalRecord::Subscribe {
                id: SubscriberId(12),
                filter: SubscriptionFilter::Object(ObjectId(77)),
            },
            WalRecord::Subscribe {
                id: SubscriberId(13),
                filter: SubscriptionFilter::Window(Rect::new([0.0, 1.0], [10.0, 11.0])),
            },
            WalRecord::Unsubscribe {
                id: SubscriberId(12),
            },
        ];
        for record in records {
            let bytes = record.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), record, "{record:?}");
        }
    }

    #[test]
    fn garbage_is_rejected_not_misparsed() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[0xFF]).is_err());
        // Truncated batch: claims one update, carries none.
        let mut w = ByteWriter::new();
        w.put_u8(0x02);
        w.put_f64(1.0);
        w.put_u32(1);
        assert!(WalRecord::decode(&w.into_bytes()).is_err());
        // Trailing junk after a valid record.
        let mut bytes = WalRecord::Unsubscribe {
            id: SubscriberId(1),
        }
        .encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
    }
}
