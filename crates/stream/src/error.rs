//! Typed errors of the streaming service.
//!
//! Everything reachable on the WAL-recovery and batch-apply paths
//! surfaces here as a variant instead of a panic: a corrupt journal, a
//! missing `wal_path`, an invalid configuration are all *reported*
//! conditions an operator can act on, not programming errors.

use cij_storage::StorageError;
use cij_tpr::TprError;

/// `Result` specialized to [`StreamError`].
pub type StreamResult<T> = Result<T, StreamError>;

/// Why a streaming-service operation failed.
#[derive(Debug)]
pub enum StreamError {
    /// [`StreamService::recover`](crate::StreamService::recover) was
    /// called on a configuration without a
    /// [`wal_path`](crate::StreamConfig::wal_path) — there is no journal
    /// to recover from.
    MissingWalPath,
    /// The configuration violates its invariants (see
    /// [`StreamConfig::is_valid`](crate::StreamConfig::is_valid)); the
    /// message names the offending constraint.
    InvalidConfig(String),
    /// The write-ahead log's durable prefix is not a valid journal: no
    /// genesis record, a non-genesis first record, a duplicate genesis,
    /// or a record that fails to decode. (A torn *tail* is not this —
    /// torn tails are truncated and reported via
    /// [`RecoveryReport::tail_truncated`](crate::RecoveryReport::tail_truncated).)
    CorruptJournal(String),
    /// The storage layer failed (WAL I/O, page store).
    Storage(StorageError),
    /// The wrapped join engine failed.
    Engine(TprError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingWalPath => {
                write!(f, "recovery requires a wal_path in the stream config")
            }
            Self::InvalidConfig(msg) => write!(f, "invalid stream config: {msg}"),
            Self::CorruptJournal(msg) => write!(f, "corrupt WAL journal: {msg}"),
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            Self::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for StreamError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

impl From<TprError> for StreamError {
    fn from(e: TprError) -> Self {
        Self::Engine(e)
    }
}
