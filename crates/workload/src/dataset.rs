//! Dataset generators: uniform, Gaussian, battlefield (§VI-A).

use cij_geom::{MovingRect, Rect, Time};
use cij_tpr::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::params::Params;
use crate::updates::SetTag;

/// Spatial distribution of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Positions and directions uniform over the space.
    Uniform,
    /// Positions Gaussian around the space center (σ = space/6, clamped).
    Gaussian,
    /// The two sets cluster on opposite sides and advance toward each
    /// other — the paper's military scenario.
    Battlefield,
    /// All motion runs along the x axis (east–west highways): the
    /// axis-skew stress case for the §IV-D2 dimension-selection
    /// heuristic (extension workload, not in the paper's Table I).
    Highway,
    /// Uniform positions but a bimodal speed mix — a slow majority and a
    /// fast minority, with each object's speed class fixed by its id so
    /// the class survives trajectory updates. The motivating workload
    /// for velocity-band shard partitioning (arXiv:1205.6697): one
    /// mixed tree pays the fast movers' MBR expansion on every probe,
    /// while per-band trees keep the slow majority tight. (Extension
    /// workload, not in the paper's Table I.)
    VelocitySkew,
}

/// Fraction of a [`Distribution::VelocitySkew`] population in the fast
/// class: ids with `id % SKEW_FAST_MODULUS == SKEW_FAST_MODULUS - 1`.
pub const SKEW_FAST_MODULUS: u64 = 5;

/// The speed range `[lo, hi]` of `id`'s class under
/// [`Distribution::VelocitySkew`]: the slow majority draws from
/// `[0, 0.3·max_speed]`, the fast minority (1 in
/// [`SKEW_FAST_MODULUS`]) from `[0.7·max_speed, max_speed]`. Class
/// membership depends only on the id, so an object keeps its class
/// across updates — which keeps velocity-band shard placement stable
/// while still crossing intra-class band boundaries (at K = 4 bands the
/// slow range spans the 0.25·max_speed boundary and the fast range the
/// 0.75·max_speed one, so both classes exercise migration).
#[must_use]
pub fn skew_speed_bounds(id: ObjectId, max_speed: f64) -> (f64, f64) {
    if id.0 % SKEW_FAST_MODULUS == SKEW_FAST_MODULUS - 1 {
        (0.7 * max_speed, max_speed)
    } else {
        (0.0, 0.3 * max_speed)
    }
}

/// Velocity for a velocity-skew object: uniform direction, speed drawn
/// from the id's class range.
pub(crate) fn skewed_velocity(rng: &mut StdRng, max_speed: f64, id: ObjectId) -> [f64; 2] {
    let (lo, hi) = skew_speed_bounds(id, max_speed);
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let speed = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
    [speed * angle.cos(), speed * angle.sin()]
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Uniform => write!(f, "Uniform"),
            Self::Gaussian => write!(f, "Gaussian"),
            Self::Battlefield => write!(f, "Battlefield"),
            Self::Highway => write!(f, "Highway"),
            Self::VelocitySkew => write!(f, "VelocitySkew"),
        }
    }
}

/// One generated object: its id and trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingObject {
    /// Unique id (disjoint ranges per set).
    pub id: ObjectId,
    /// Trajectory at generation time.
    pub mbr: MovingRect,
}

/// Standard-normal sample via Box–Muller (keeps us off external distr
/// crates).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn uniform_velocity(rng: &mut StdRng, max_speed: f64) -> [f64; 2] {
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    let speed = rng.gen_range(0.0..=max_speed);
    [speed * angle.cos(), speed * angle.sin()]
}

/// Velocity for a highway object: full speed along x, either direction.
fn highway_velocity(rng: &mut StdRng, max_speed: f64) -> [f64; 2] {
    let speed = rng.gen_range(0.3 * max_speed..=max_speed.max(f64::MIN_POSITIVE));
    let dir = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    [dir * speed, 0.0]
}

/// Velocity for a battlefield object: advance toward the opposing side
/// (A moves +x, B moves −x) with mild lateral jitter.
fn battlefield_velocity(rng: &mut StdRng, max_speed: f64, tag: SetTag) -> [f64; 2] {
    let forward = rng.gen_range(0.3 * max_speed..=max_speed.max(f64::MIN_POSITIVE));
    let lateral = rng.gen_range(-0.3 * max_speed..=0.3 * max_speed);
    match tag {
        SetTag::A => [forward, lateral],
        SetTag::B => [-forward, lateral],
    }
}

fn position(rng: &mut StdRng, params: &Params, tag: SetTag) -> [f64; 2] {
    let s = params.space;
    let side = params.object_side();
    let clamp = |v: f64| v.clamp(0.0, s - side);
    match params.distribution {
        Distribution::Uniform => [rng.gen_range(0.0..s - side), rng.gen_range(0.0..s - side)],
        Distribution::Gaussian => {
            let sigma = s / 6.0;
            [
                clamp(s / 2.0 + sigma * gaussian(rng)),
                clamp(s / 2.0 + sigma * gaussian(rng)),
            ]
        }
        Distribution::Highway | Distribution::VelocitySkew => {
            [rng.gen_range(0.0..s - side), rng.gen_range(0.0..s - side)]
        }
        Distribution::Battlefield => {
            // Each side occupies the outer 20% strip of the x-axis.
            let strip = 0.2 * s;
            let x = match tag {
                SetTag::A => rng.gen_range(0.0..strip),
                SetTag::B => rng.gen_range(s - strip..s - side),
            };
            [x, rng.gen_range(0.0..s - side)]
        }
    }
}

/// Generates one dataset of `params.dataset_size` square objects tagged
/// as set `tag`, with ids starting at `id_base`, at reference time `now`.
#[must_use]
pub fn generate_set(params: &Params, tag: SetTag, id_base: u64, now: Time) -> Vec<MovingObject> {
    params.assert_valid();
    // Distinct stream per (seed, tag) so sets A and B are independent.
    let mut rng =
        StdRng::seed_from_u64(params.seed ^ (tag as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let side = params.object_side();
    (0..params.dataset_size)
        .map(|i| {
            let id = ObjectId(id_base + i as u64);
            let p = position(&mut rng, params, tag);
            let v = match params.distribution {
                Distribution::Battlefield => battlefield_velocity(&mut rng, params.max_speed, tag),
                Distribution::Highway => highway_velocity(&mut rng, params.max_speed),
                Distribution::VelocitySkew => skewed_velocity(&mut rng, params.max_speed, id),
                _ => uniform_velocity(&mut rng, params.max_speed),
            };
            MovingObject {
                id,
                mbr: MovingRect::rigid(Rect::new(p, [p[0] + side, p[1] + side]), v, now),
            }
        })
        .collect()
}

/// Generates the joined pair (A, B) with the paper's id convention:
/// A ids start at 0, B ids start at `2^32` (unique across A ∪ B).
#[must_use]
pub fn generate_pair(params: &Params, now: Time) -> (Vec<MovingObject>, Vec<MovingObject>) {
    let a = generate_set(params, SetTag::A, 0, now);
    let b = generate_set(params, SetTag::B, 1 << 32, now);
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn speed(m: &MovingRect) -> f64 {
        (m.vlo[0].powi(2) + m.vlo[1].powi(2)).sqrt()
    }

    #[test]
    fn uniform_set_respects_bounds() {
        let params = Params {
            dataset_size: 2000,
            ..Params::default()
        };
        let set = generate_set(&params, SetTag::A, 0, 0.0);
        assert_eq!(set.len(), 2000);
        for o in &set {
            let r = o.mbr.at(0.0);
            assert!(r.lo[0] >= 0.0 && r.hi[0] <= params.space);
            assert!(r.lo[1] >= 0.0 && r.hi[1] <= params.space);
            assert!((r.extent(0) - params.object_side()).abs() < 1e-9);
            assert!(speed(&o.mbr) <= params.max_speed + 1e-9);
            // Rigid bodies: both corners share the velocity.
            assert_eq!(o.mbr.vlo, o.mbr.vhi);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let params = Params {
            dataset_size: 100,
            ..Params::default()
        };
        let x = generate_set(&params, SetTag::A, 0, 0.0);
        let y = generate_set(&params, SetTag::A, 0, 0.0);
        assert_eq!(x, y);
    }

    #[test]
    fn sets_a_and_b_differ() {
        let params = Params {
            dataset_size: 100,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        assert_ne!(a[0].mbr, b[0].mbr, "A and B must be independent draws");
        // Ids are disjoint.
        assert!(a.iter().all(|o| o.id.0 < (1 << 32)));
        assert!(b.iter().all(|o| o.id.0 >= (1 << 32)));
    }

    #[test]
    fn gaussian_clusters_around_center() {
        let params = Params {
            dataset_size: 4000,
            distribution: Distribution::Gaussian,
            ..Params::default()
        };
        let set = generate_set(&params, SetTag::A, 0, 0.0);
        let mean_x: f64 =
            set.iter().map(|o| o.mbr.at(0.0).center()[0]).sum::<f64>() / set.len() as f64;
        assert!((mean_x - 500.0).abs() < 30.0, "mean_x = {mean_x}");
        // More than half the mass within one sigma band of the center.
        let near = set
            .iter()
            .filter(|o| {
                let c = o.mbr.at(0.0).center();
                (c[0] - 500.0).abs() < params.space / 6.0
                    && (c[1] - 500.0).abs() < params.space / 6.0
            })
            .count();
        // P(|X| < σ)² ≈ 0.466 for a 2-D Gaussian; a uniform cloud would
        // put only ~11 % there. 40 % cleanly separates the two.
        assert!(
            near as f64 > 0.4 * set.len() as f64,
            "only {near} of {} near center",
            set.len()
        );
    }

    #[test]
    fn battlefield_sides_and_headings() {
        let params = Params {
            dataset_size: 500,
            distribution: Distribution::Battlefield,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        for o in &a {
            assert!(o.mbr.at(0.0).center()[0] < 0.25 * params.space);
            assert!(o.mbr.vlo[0] > 0.0, "A advances in +x");
        }
        for o in &b {
            assert!(o.mbr.at(0.0).center()[0] > 0.75 * params.space);
            assert!(o.mbr.vlo[0] < 0.0, "B advances in −x");
        }
    }

    #[test]
    fn highway_motion_is_axis_locked() {
        let params = Params {
            dataset_size: 300,
            distribution: Distribution::Highway,
            ..Params::default()
        };
        let set = generate_set(&params, SetTag::A, 0, 0.0);
        for o in &set {
            assert_eq!(o.mbr.vlo[1], 0.0, "no y motion on the highway");
            assert!(o.mbr.vlo[0].abs() > 0.0, "highway objects move");
            assert!(o.mbr.vlo[0].abs() <= params.max_speed + 1e-9);
        }
        // Both directions represented.
        assert!(set.iter().any(|o| o.mbr.vlo[0] > 0.0));
        assert!(set.iter().any(|o| o.mbr.vlo[0] < 0.0));
    }

    #[test]
    fn velocity_skew_classes_are_id_stable_and_bimodal() {
        let params = Params {
            dataset_size: 500,
            distribution: Distribution::VelocitySkew,
            ..Params::default()
        };
        let set = generate_set(&params, SetTag::A, 0, 0.0);
        let mut fast = 0usize;
        for o in &set {
            let (lo, hi) = skew_speed_bounds(o.id, params.max_speed);
            let s = speed(&o.mbr);
            assert!(
                s >= lo - 1e-9 && s <= hi + 1e-9,
                "object {:?} speed {s} outside class [{lo}, {hi}]",
                o.id
            );
            if lo > 0.0 {
                fast += 1;
            }
        }
        // 1-in-SKEW_FAST_MODULUS ids are fast, exactly (deterministic).
        assert_eq!(fast, 500 / SKEW_FAST_MODULUS as usize);
    }

    #[test]
    fn zero_speed_is_legal() {
        let params = Params {
            max_speed: 0.0,
            dataset_size: 50,
            ..Params::default()
        };
        let set = generate_set(&params, SetTag::A, 0, 0.0);
        for o in &set {
            assert_eq!(speed(&o.mbr), 0.0);
        }
    }
}
