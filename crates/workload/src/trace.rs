//! Trace import/export: plain-text serialization of object sets and
//! update streams.
//!
//! The paper evaluates on synthetic data, but a system a downstream user
//! would adopt must accept *their* traces. The format is deliberately
//! boring — one record per line, comma-separated, `#` comments — so any
//! GPS pipeline can produce it without libraries:
//!
//! ```text
//! # objects: id, set(A|B), x_lo, y_lo, x_hi, y_hi, vx, vy, t_ref
//! 17,A,103.5,44.0,104.5,45.0,2.5,-0.5,0.0
//! ```
//!
//! ```text
//! # updates: time, id, set(A|B), x_lo, y_lo, x_hi, y_hi, vx, vy
//! 3.0,17,A,111.0,42.5,112.0,43.5,-1.0,0.0
//! ```
//!
//! Update application (old trajectory, last-update time) is reconstructed
//! by the replayer, so producers only state the *new* registration.

use std::collections::HashMap;
use std::io::{BufRead, Write};

use cij_geom::{MovingRect, Rect, Time};
use cij_tpr::ObjectId;

use crate::dataset::MovingObject;
use crate::updates::{ObjectUpdate, SetTag};

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with line number and description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
            Self::Parse { line, message } => write!(f, "trace line {line}: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn parse_set_tag(s: &str, line: usize) -> Result<SetTag, TraceError> {
    match s.trim() {
        "A" | "a" => Ok(SetTag::A),
        "B" | "b" => Ok(SetTag::B),
        other => Err(TraceError::Parse {
            line,
            message: format!("bad set tag {other:?} (expected A or B)"),
        }),
    }
}

fn parse_f64(s: &str, line: usize, field: &str) -> Result<f64, TraceError> {
    s.trim().parse().map_err(|e| TraceError::Parse {
        line,
        message: format!("bad {field} {s:?}: {e}"),
    })
}

fn parse_u64(s: &str, line: usize, field: &str) -> Result<u64, TraceError> {
    s.trim().parse().map_err(|e| TraceError::Parse {
        line,
        message: format!("bad {field} {s:?}: {e}"),
    })
}

/// Writes both object sets as an object trace.
///
/// ```
/// use cij_workload::{generate_pair, trace, Params};
///
/// let params = Params { dataset_size: 50, ..Params::default() };
/// let (a, b) = generate_pair(&params, 0.0);
/// let mut buf = Vec::new();
/// trace::write_objects(&mut buf, &a, &b).unwrap();
/// let (ra, rb) = trace::read_objects(&mut buf.as_slice()).unwrap();
/// assert_eq!((a, b), (ra, rb));
/// ```
pub fn write_objects(
    w: &mut impl Write,
    a: &[MovingObject],
    b: &[MovingObject],
) -> std::io::Result<()> {
    writeln!(
        w,
        "# objects: id, set(A|B), x_lo, y_lo, x_hi, y_hi, vx, vy, t_ref"
    )?;
    for (set, tag) in [(a, 'A'), (b, 'B')] {
        for o in set {
            let m = &o.mbr;
            writeln!(
                w,
                "{},{tag},{},{},{},{},{},{},{}",
                o.id.0, m.lo[0], m.lo[1], m.hi[0], m.hi[1], m.vlo[0], m.vlo[1], m.t_ref
            )?;
        }
    }
    Ok(())
}

/// Reads an object trace back into the two sets.
pub fn read_objects(
    r: &mut impl BufRead,
) -> Result<(Vec<MovingObject>, Vec<MovingObject>), TraceError> {
    let mut a = Vec::new();
    let mut b = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let f: Vec<&str> = body.split(',').collect();
        if f.len() != 9 {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("expected 9 fields, found {}", f.len()),
            });
        }
        let id = ObjectId(parse_u64(f[0], line_no, "id")?);
        let tag = parse_set_tag(f[1], line_no)?;
        let vals: Result<Vec<f64>, _> = f[2..]
            .iter()
            .map(|s| parse_f64(s, line_no, "coordinate"))
            .collect();
        let v = vals?;
        if v[0] > v[2] || v[1] > v[3] {
            return Err(TraceError::Parse {
                line: line_no,
                message: "inverted rectangle".into(),
            });
        }
        let mbr = MovingRect::rigid(Rect::new([v[0], v[1]], [v[2], v[3]]), [v[4], v[5]], v[6]);
        let obj = MovingObject { id, mbr };
        match tag {
            SetTag::A => a.push(obj),
            SetTag::B => b.push(obj),
        }
    }
    Ok((a, b))
}

/// Writes an update trace (typically produced by recording an
/// [`UpdateStream`](crate::UpdateStream) run).
pub fn write_updates(w: &mut impl Write, updates: &[ObjectUpdate]) -> std::io::Result<()> {
    writeln!(
        w,
        "# updates: time, id, set(A|B), x_lo, y_lo, x_hi, y_hi, vx, vy"
    )?;
    for u in updates {
        let m = &u.new_mbr;
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{}",
            m.t_ref,
            u.id.0,
            match u.set {
                SetTag::A => 'A',
                SetTag::B => 'B',
            },
            m.lo[0],
            m.lo[1],
            m.hi[0],
            m.hi[1],
            m.vlo[0],
            m.vlo[1],
        )?;
    }
    Ok(())
}

/// Replays an update trace against initial object sets: reconstructs the
/// `old_mbr`/`last_update` fields engines need, in trace order.
///
/// Update times must be non-decreasing; every updated id must exist in
/// the initial sets.
pub fn read_updates(
    r: &mut impl BufRead,
    initial_a: &[MovingObject],
    initial_b: &[MovingObject],
) -> Result<Vec<ObjectUpdate>, TraceError> {
    let mut state: HashMap<ObjectId, (SetTag, MovingRect, Time)> = HashMap::new();
    for (set, tag) in [(initial_a, SetTag::A), (initial_b, SetTag::B)] {
        for o in set {
            state.insert(o.id, (tag, o.mbr, o.mbr.t_ref));
        }
    }
    let mut out = Vec::new();
    let mut last_time = f64::NEG_INFINITY;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let f: Vec<&str> = body.split(',').collect();
        if f.len() != 9 {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("expected 9 fields, found {}", f.len()),
            });
        }
        let now = parse_f64(f[0], line_no, "time")?;
        if now < last_time {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("time went backwards ({now} after {last_time})"),
            });
        }
        last_time = now;
        let id = ObjectId(parse_u64(f[1], line_no, "id")?);
        let tag = parse_set_tag(f[2], line_no)?;
        let vals: Result<Vec<f64>, _> = f[3..]
            .iter()
            .map(|s| parse_f64(s, line_no, "coordinate"))
            .collect();
        let v = vals?;
        let new_mbr = MovingRect::rigid(Rect::new([v[0], v[1]], [v[2], v[3]]), [v[4], v[5]], now);
        let Some(&(known_tag, old_mbr, last_update)) = state.get(&id) else {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("update for unknown object {id}"),
            });
        };
        if known_tag != tag {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("object {id} changed sets"),
            });
        }
        out.push(ObjectUpdate {
            id,
            set: tag,
            old_mbr,
            last_update,
            new_mbr,
        });
        state.insert(id, (tag, new_mbr, now));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generate_pair;
    use crate::params::Params;
    use crate::updates::UpdateStream;

    #[test]
    fn objects_roundtrip() {
        let params = Params {
            dataset_size: 120,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut buf = Vec::new();
        write_objects(&mut buf, &a, &b).unwrap();
        let (ra, rb) = read_objects(&mut buf.as_slice()).unwrap();
        assert_eq!(a, ra);
        assert_eq!(b, rb);
    }

    #[test]
    fn updates_roundtrip_through_replay() {
        let params = Params {
            dataset_size: 80,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        let mut recorded = Vec::new();
        for tick in 1..=40u32 {
            recorded.extend(stream.tick(f64::from(tick)));
        }
        let mut buf = Vec::new();
        write_updates(&mut buf, &recorded).unwrap();
        let replayed = read_updates(&mut buf.as_slice(), &a, &b).unwrap();
        assert_eq!(recorded.len(), replayed.len());
        for (orig, rep) in recorded.iter().zip(&replayed) {
            // The replayer reconstructs old_mbr/last_update exactly.
            assert_eq!(orig.id, rep.id);
            assert_eq!(orig.set, rep.set);
            assert_eq!(orig.last_update, rep.last_update);
            assert_eq!(orig.new_mbr, rep.new_mbr);
            assert_eq!(orig.old_mbr, rep.old_mbr);
        }
    }

    #[test]
    fn traces_rewrite_byte_identically() {
        // write → read → write must be *byte*-equal, not just value-equal:
        // the reader reconstructs exactly what the writer serialized
        // (including `t_ref`, which travels as the update's time column),
        // so a trace can be archived, replayed and re-exported without
        // drift. This pins the round-trip audited for the similarity-join
        // replay path.
        let params = Params {
            dataset_size: 60,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut first = Vec::new();
        write_objects(&mut first, &a, &b).unwrap();
        let (ra, rb) = read_objects(&mut first.as_slice()).unwrap();
        let mut second = Vec::new();
        write_objects(&mut second, &ra, &rb).unwrap();
        assert_eq!(first, second, "object trace drifts across a round-trip");

        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        let mut recorded = Vec::new();
        for tick in 1..=30u32 {
            recorded.extend(stream.tick(f64::from(tick)));
        }
        let mut first = Vec::new();
        write_updates(&mut first, &recorded).unwrap();
        let replayed = read_updates(&mut first.as_slice(), &a, &b).unwrap();
        let mut second = Vec::new();
        write_updates(&mut second, &replayed).unwrap();
        assert_eq!(first, second, "update trace drifts across a round-trip");
    }

    #[test]
    fn checked_in_geolife_sample_parses_and_replays() {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
        let objects = std::fs::read(format!("{dir}/geolife_sample.objects.csv")).unwrap();
        let (a, b) = read_objects(&mut objects.as_slice()).unwrap();
        assert_eq!((a.len(), b.len()), (8, 8), "sample shape changed");
        let raw = std::fs::read(format!("{dir}/geolife_sample.updates.csv")).unwrap();
        let updates = read_updates(&mut raw.as_slice(), &a, &b).unwrap();
        assert_eq!(updates.len(), 72, "sample update count changed");
        // Every reconstructed update chains from the previous registration.
        for u in &updates {
            assert!(u.new_mbr.t_ref >= u.last_update);
            assert!(u.old_mbr.t_ref == u.last_update);
        }
        // And the parsed sample survives a re-export round-trip.
        let mut w = Vec::new();
        write_objects(&mut w, &a, &b).unwrap();
        let (ra, rb) = read_objects(&mut w.as_slice()).unwrap();
        assert_eq!((a, b), (ra, rb));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n1,A,0,0,1,1,0.5,0.5,0\n  # indented comment\n2,B,5,5,6,6,0,0,0\n";
        let (a, b) = read_objects(&mut text.as_bytes()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(a[0].id, ObjectId(1));
    }

    #[test]
    fn malformed_records_name_the_line() {
        let text = "1,A,0,0,1,1,0.5,0.5,0\n2,X,0,0,1,1,0,0,0\n";
        let err = read_objects(&mut text.as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("set tag"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Wrong field count.
        let text = "1,A,0,0\n";
        assert!(matches!(
            read_objects(&mut text.as_bytes()),
            Err(TraceError::Parse { line: 1, .. })
        ));
        // Inverted rect.
        let text = "1,A,5,0,1,1,0,0,0\n";
        assert!(matches!(
            read_objects(&mut text.as_bytes()),
            Err(TraceError::Parse { .. })
        ));
    }

    #[test]
    fn replay_rejects_unknown_objects_and_time_travel() {
        let params = Params {
            dataset_size: 3,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let text = "1.0,999999,A,0,0,1,1,0,0\n";
        assert!(matches!(
            read_updates(&mut text.as_bytes(), &a, &b),
            Err(TraceError::Parse { .. })
        ));
        let id = a[0].id.0;
        let text = format!("5.0,{id},A,0,0,1,1,0,0\n3.0,{id},A,0,0,1,1,0,0\n");
        let err = read_updates(&mut text.as_bytes(), &a, &b).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 2, .. }), "{err}");
    }
}
