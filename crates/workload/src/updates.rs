//! Update streams: the paper's maintenance workload.
//!
//! "At every timestamp, we randomly change directions or speed of some
//! objects to generate updates. Every object is required to be updated at
//! least once during the maximum update interval `T_M`." (§VI-A)
//!
//! [`UpdateStream`] reproduces that discipline: a voluntary update rate
//! of `1/T_M` per object per tick plus a forced heartbeat for any object
//! whose age reaches `T_M`. Updates preserve position continuity (the new
//! trajectory starts where the old one currently is) and steer objects
//! back into the space domain when they approach the border.

use std::collections::HashMap;

use cij_geom::{MovingRect, Rect, Time};
use cij_tpr::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::MovingObject;
use crate::params::Params;

/// Which joined set an object belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetTag {
    /// The left set of the join.
    A = 1,
    /// The right set of the join.
    B = 2,
}

/// One object update, carrying everything an engine needs to apply it:
/// the old trajectory (for the index delete) and the time of the previous
/// update (for MTB-tree bucket location).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectUpdate {
    /// The updated object.
    pub id: ObjectId,
    /// Its set.
    pub set: SetTag,
    /// Trajectory registered before this update.
    pub old_mbr: MovingRect,
    /// Timestamp of the previous update (== `old_mbr.t_ref`).
    pub last_update: Time,
    /// New trajectory (reference time = now).
    pub new_mbr: MovingRect,
}

struct ObjectState {
    tag: SetTag,
    mbr: MovingRect,
    last_update: Time,
}

/// Deterministic per-tick update generator over two object sets.
///
/// ```
/// use cij_workload::{generate_pair, Params, UpdateStream};
///
/// let params = Params { dataset_size: 100, ..Params::default() };
/// let (a, b) = generate_pair(&params, 0.0);
/// let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
/// let mut total = 0usize;
/// for tick in 1..=60 {
///     total += stream.tick(f64::from(tick)).len();
/// }
/// // Every object updated at least once within T_M = 60 ticks.
/// assert!(total >= 200, "heartbeat discipline: {total} updates");
/// ```
pub struct UpdateStream {
    params: Params,
    rng: StdRng,
    states: HashMap<ObjectId, ObjectState>,
    /// Stable iteration order (HashMap order is nondeterministic).
    ids: Vec<ObjectId>,
}

impl UpdateStream {
    /// Creates a stream over freshly generated sets, all considered
    /// updated at `now`.
    #[must_use]
    pub fn new(params: &Params, a: &[MovingObject], b: &[MovingObject], now: Time) -> Self {
        let mut states = HashMap::with_capacity(a.len() + b.len());
        let mut ids = Vec::with_capacity(a.len() + b.len());
        for (objs, tag) in [(a, SetTag::A), (b, SetTag::B)] {
            for o in objs {
                states.insert(
                    o.id,
                    ObjectState {
                        tag,
                        mbr: o.mbr,
                        last_update: now,
                    },
                );
                ids.push(o.id);
            }
        }
        Self {
            params: *params,
            rng: StdRng::seed_from_u64(params.seed ^ 0x5EED_CAFE),
            states,
            ids,
        }
    }

    /// Produces the updates for timestamp `now`: voluntary updates at
    /// rate `1/T_M` plus forced heartbeats for objects of age ≥ `T_M`.
    pub fn tick(&mut self, now: Time) -> Vec<ObjectUpdate> {
        let t_m = self.params.maximum_update_interval;
        let p_voluntary = 1.0 / t_m;
        let mut out = Vec::new();
        let ids = std::mem::take(&mut self.ids);
        for &id in &ids {
            let state = self.states.get(&id).expect("ids track states");
            let due = now - state.last_update >= t_m;
            let voluntary = self.rng.gen_bool(p_voluntary.clamp(0.0, 1.0));
            if !(due || voluntary) {
                continue;
            }
            let tag = state.tag;
            let old_mbr = state.mbr;
            let last_update = state.last_update;
            let new_mbr = self.steer(id, &old_mbr, tag, now);
            let state = self.states.get_mut(&id).expect("ids track states");
            state.mbr = new_mbr;
            state.last_update = now;
            out.push(ObjectUpdate {
                id,
                set: tag,
                old_mbr,
                last_update,
                new_mbr,
            });
        }
        self.ids = ids;
        out
    }

    /// New trajectory: continue from the current position, pick a fresh
    /// velocity (honoring the object's id-stable speed class under the
    /// velocity-skew distribution), and point it inward when the object
    /// strays near the border.
    fn steer(&mut self, id: ObjectId, old: &MovingRect, tag: SetTag, now: Time) -> MovingRect {
        let s = self.params.space;
        let side = self.params.object_side();
        let here = old.at(now);
        // Clamp the position back into the domain (objects may drift out
        // between updates; the paper's generator keeps them in the space).
        let x = here.lo[0].clamp(0.0, s - side);
        let y = here.lo[1].clamp(0.0, s - side);

        let mut v = match self.params.distribution {
            crate::dataset::Distribution::Highway => {
                let speed = self.rng.gen_range(
                    0.3 * self.params.max_speed..=self.params.max_speed.max(f64::MIN_POSITIVE),
                );
                let dir = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                [dir * speed, 0.0]
            }
            crate::dataset::Distribution::Battlefield => {
                // Battlefield objects keep advancing; once they cross the
                // space they behave like uniform movers.
                let forward = self.rng.gen_range(
                    0.3 * self.params.max_speed..=self.params.max_speed.max(f64::MIN_POSITIVE),
                );
                let lateral = self
                    .rng
                    .gen_range(-0.3 * self.params.max_speed..=0.3 * self.params.max_speed);
                match tag {
                    SetTag::A => [forward, lateral],
                    SetTag::B => [-forward, lateral],
                }
            }
            crate::dataset::Distribution::VelocitySkew => {
                crate::dataset::skewed_velocity(&mut self.rng, self.params.max_speed, id)
            }
            _ => {
                let angle = self.rng.gen_range(0.0..std::f64::consts::TAU);
                let speed = self.rng.gen_range(0.0..=self.params.max_speed);
                [speed * angle.cos(), speed * angle.sin()]
            }
        };
        // Reflect inward near borders so objects stay in the domain.
        let margin = 0.05 * s;
        if x < margin {
            v[0] = v[0].abs();
        } else if x > s - side - margin {
            v[0] = -v[0].abs();
        }
        if y < margin {
            v[1] = v[1].abs();
        } else if y > s - side - margin {
            v[1] = -v[1].abs();
        }
        MovingRect::rigid(Rect::new([x, y], [x + side, y + side]), v, now)
    }

    /// The currently registered trajectory of `id`.
    #[must_use]
    pub fn current(&self, id: ObjectId) -> Option<&MovingRect> {
        self.states.get(&id).map(|s| &s.mbr)
    }

    /// Snapshot of one set's `(id, trajectory)` list, in id order.
    #[must_use]
    pub fn snapshot(&self, tag: SetTag) -> Vec<(ObjectId, MovingRect)> {
        let mut v: Vec<_> = self
            .states
            .iter()
            .filter(|(_, s)| s.tag == tag)
            .map(|(id, s)| (*id, s.mbr))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    /// Total number of tracked objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the stream tracks no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::generate_pair;

    fn stream(n: usize) -> UpdateStream {
        let params = Params {
            dataset_size: n,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        UpdateStream::new(&params, &a, &b, 0.0)
    }

    #[test]
    fn every_object_updates_within_t_m() {
        let params = Params {
            dataset_size: 300,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut s = UpdateStream::new(&params, &a, &b, 0.0);
        let mut last: HashMap<ObjectId, Time> = a.iter().chain(&b).map(|o| (o.id, 0.0)).collect();
        for tick in 1..=180 {
            let now = tick as f64;
            for u in s.tick(now) {
                // Interval between consecutive updates never exceeds T_M.
                assert!(
                    now - last[&u.id] <= params.maximum_update_interval + 1e-9,
                    "object {} waited {} ticks",
                    u.id,
                    now - last[&u.id]
                );
                assert_eq!(u.last_update, last[&u.id]);
                last.insert(u.id, now);
            }
        }
        // After T_M ticks past t=120, everyone must have updated since 120.
        for (&id, &t) in &last {
            assert!(
                180.0 - t < params.maximum_update_interval + 1e-9,
                "object {id} stale since {t}"
            );
        }
    }

    #[test]
    fn updates_preserve_position_continuity() {
        let mut s = stream(200);
        for tick in 1..=60 {
            let now = tick as f64;
            for u in s.tick(now) {
                let before = u.old_mbr.at(now);
                let after = u.new_mbr.at(now);
                // Position may only change by the border clamp.
                let dx = (before.lo[0] - after.lo[0]).abs();
                let dy = (before.lo[1] - after.lo[1]).abs();
                let slack = 200.0; // clamp distance bound: speed × T_M
                assert!(dx <= slack && dy <= slack);
                assert_eq!(u.new_mbr.t_ref, now);
                // Extents unchanged.
                assert!((before.extent(0) - after.extent(0)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let mut s1 = stream(100);
        let mut s2 = stream(100);
        for tick in 1..=30 {
            assert_eq!(s1.tick(tick as f64), s2.tick(tick as f64));
        }
    }

    #[test]
    fn snapshot_tracks_applied_updates() {
        let mut s = stream(100);
        for tick in 1..=70 {
            s.tick(tick as f64);
        }
        for (id, mbr) in s.snapshot(SetTag::A) {
            assert_eq!(s.current(id), Some(&mbr));
            // Everyone has re-registered at least once in 70 > T_M ticks.
            assert!(mbr.t_ref > 0.0, "{id} never updated");
        }
    }

    #[test]
    fn objects_stay_roughly_in_domain() {
        let params = Params {
            dataset_size: 200,
            ..Params::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut s = UpdateStream::new(&params, &a, &b, 0.0);
        for tick in 1..=240 {
            s.tick(tick as f64);
        }
        let drift_bound = params.max_speed * params.maximum_update_interval;
        for (_, mbr) in s
            .snapshot(SetTag::A)
            .iter()
            .chain(s.snapshot(SetTag::B).iter())
        {
            let r = mbr.at(240.0);
            assert!(r.lo[0] > -drift_bound && r.hi[0] < params.space + drift_bound);
            assert!(r.lo[1] > -drift_bound && r.hi[1] < params.space + drift_bound);
        }
    }
}
