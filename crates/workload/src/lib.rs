//! # cij-workload — synthetic moving-object workloads
//!
//! The paper evaluates on synthetic datasets produced by the generator of
//! the TPR-tree authors (not publicly released); this crate rebuilds the
//! same workload family from the published description (§VI-A, Table I):
//!
//! * **Uniform** — positions and directions uniform, speed uniform in
//!   `(0, max_speed]`.
//! * **Gaussian** — positions Gaussian around the space center, motion as
//!   uniform.
//! * **Battlefield** — the two joined sets start clustered on opposite
//!   sides of the space and move toward the opposing party.
//!
//! Objects are squares; every object updates at least once every `T_M`
//! timestamps (the maximum update interval), with voluntary
//! direction/speed changes on top — [`UpdateStream`] produces exactly
//! that discipline, deterministically from a seed.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod dataset;
mod params;
pub mod trace;
mod updates;

pub use dataset::{
    generate_pair, generate_set, skew_speed_bounds, Distribution, MovingObject, SKEW_FAST_MODULUS,
};
pub use params::Params;
pub use updates::{ObjectUpdate, SetTag, UpdateStream};
