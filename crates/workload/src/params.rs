//! The experiment parameter space of Table I.

use cij_geom::Time;

use crate::dataset::Distribution;

/// Workload parameters, defaults matching the bold entries of the
/// paper's Table I (see DESIGN.md for the two OCR-ambiguous defaults —
/// maximum speed and object size — and how they were resolved).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Objects per joined set (Table I: 1K, **10K**, 50K, 100K).
    pub dataset_size: usize,
    /// Side length of the square space domain (paper: 1000).
    pub space: f64,
    /// Maximum object speed in space units per timestamp
    /// (Table I: 1, 2, **3**, 4, 5).
    pub max_speed: f64,
    /// Object side length as a fraction of the space side
    /// (Table I: 0.05 %, **0.1 %**, 0.2 %, 0.4 %, 0.8 %).
    pub object_size_pct: f64,
    /// Maximum update interval `T_M` (Table I: **60**, 120, 240).
    pub maximum_update_interval: Time,
    /// TPR-tree node capacity (Table I: 30).
    pub node_capacity: usize,
    /// Spatial distribution of the datasets.
    pub distribution: Distribution,
    /// RNG seed — every experiment is reproducible from its parameters.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            dataset_size: 10_000,
            space: 1000.0,
            max_speed: 3.0,
            object_size_pct: 0.1,
            maximum_update_interval: 60.0,
            node_capacity: 30,
            distribution: Distribution::Uniform,
            seed: 0xC1_1AB5,
        }
    }
}

impl Params {
    /// Object side length in space units.
    #[must_use]
    pub fn object_side(&self) -> f64 {
        self.space * self.object_size_pct / 100.0
    }

    /// Convenience: default parameters with a different dataset size.
    #[must_use]
    pub fn with_size(dataset_size: usize) -> Self {
        Self {
            dataset_size,
            ..Self::default()
        }
    }

    /// Convenience: default parameters with a different distribution.
    #[must_use]
    pub fn with_distribution(distribution: Distribution) -> Self {
        Self {
            distribution,
            ..Self::default()
        }
    }

    /// Sanity-checks the parameter combination.
    ///
    /// # Panics
    /// Panics on non-positive sizes/speeds or an object larger than the
    /// space.
    pub fn assert_valid(&self) {
        assert!(self.dataset_size > 0, "empty dataset");
        assert!(self.space > 0.0, "degenerate space");
        assert!(self.max_speed >= 0.0, "negative speed");
        assert!(
            self.object_side() < self.space,
            "objects larger than the space"
        );
        assert!(self.maximum_update_interval > 0.0, "T_M must be positive");
        assert!(self.node_capacity >= 4, "node capacity too small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_table_i_bold() {
        let p = Params::default();
        assert_eq!(p.dataset_size, 10_000);
        assert_eq!(p.maximum_update_interval, 60.0);
        assert_eq!(p.node_capacity, 30);
        assert_eq!(p.max_speed, 3.0);
        assert!((p.object_side() - 1.0).abs() < 1e-12, "0.1% of 1000 = 1");
        p.assert_valid();
    }

    #[test]
    fn object_side_scales_with_pct() {
        let p = Params {
            object_size_pct: 0.8,
            ..Params::default()
        };
        assert!((p.object_side() - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn zero_size_rejected() {
        Params {
            dataset_size: 0,
            ..Params::default()
        }
        .assert_valid();
    }
}
