//! Property tests: the buffer pool must behave exactly like a reference
//! model (hash map contents + ideal LRU), and the page codec must
//! round-trip arbitrary field sequences.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cij_storage::codec::{PageReader, PageWriter};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, PageId, PageStore};
use proptest::prelude::*;

/// A serializable field for codec round-trip tests.
#[derive(Debug, Clone)]
enum Field {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    F64(f64),
    Bytes(Vec<u8>),
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u16>().prop_map(Field::U16),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<f64>().prop_map(Field::F64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of fields that fits in a page reads back identically.
    #[test]
    fn codec_roundtrip(fields in proptest::collection::vec(arb_field(), 0..40)) {
        let mut page = cij_storage::zeroed_page();
        let mut written = Vec::new();
        {
            let mut w = PageWriter::new(&mut page);
            for f in &fields {
                let ok = match f {
                    Field::U8(v) => w.put_u8(*v).is_ok(),
                    Field::U16(v) => w.put_u16(*v).is_ok(),
                    Field::U32(v) => w.put_u32(*v).is_ok(),
                    Field::U64(v) => w.put_u64(*v).is_ok(),
                    Field::F64(v) => w.put_f64(*v).is_ok(),
                    Field::Bytes(v) => w.put_bytes(v).is_ok(),
                };
                if ok {
                    written.push(f.clone());
                } else {
                    break; // page full; everything before must read back
                }
            }
        }
        let mut r = PageReader::new(&page);
        for f in &written {
            match f {
                Field::U8(v) => prop_assert_eq!(r.get_u8().unwrap(), *v),
                Field::U16(v) => prop_assert_eq!(r.get_u16().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Field::F64(v) => {
                    let back = r.get_f64().unwrap();
                    prop_assert!(back == *v || (back.is_nan() && v.is_nan()));
                }
                Field::Bytes(v) => prop_assert_eq!(r.get_bytes(v.len()).unwrap(), &v[..]),
            }
        }
    }
}

/// Reference model of the pool: page contents plus an ideal LRU queue.
struct Model {
    capacity: usize,
    contents: HashMap<u32, u8>, // page → marker byte ("disk truth")
    lru: VecDeque<u32>,         // front = MRU
}

impl Model {
    fn touch(&mut self, id: u32) {
        self.lru.retain(|&x| x != id);
        self.lru.push_front(id);
        while self.lru.len() > self.capacity {
            self.lru.pop_back();
        }
    }
    fn resident(&self, id: u32) -> bool {
        self.lru.contains(&id)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write(u8, u8), // (page index, marker)
    Read(u8),
    Flush,
    Clear,
}

fn arb_op(pages: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages, any::<u8>()).prop_map(|(p, m)| Op::Write(p, m)),
        (0..pages).prop_map(Op::Read),
        Just(Op::Flush),
        Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pool contents and *physical read* behaviour match the model under
    /// arbitrary operation sequences.
    #[test]
    fn pool_matches_lru_model(
        capacity in 1usize..6,
        ops in proptest::collection::vec(arb_op(8), 1..120),
    ) {
        let store = Arc::new(InMemoryStore::new());
        let pool = BufferPool::new(store.clone(), BufferPoolConfig::with_capacity(capacity));
        let ids: Vec<PageId> = (0..8).map(|_| store.allocate()).collect();
        let mut model = Model { capacity, contents: HashMap::new(), lru: VecDeque::new() };

        for op in &ops {
            match op {
                Op::Write(p, marker) => {
                    let mut page = cij_storage::zeroed_page();
                    page[0] = *marker;
                    pool.write(ids[*p as usize], &page).unwrap();
                    model.contents.insert(u32::from(*p), *marker);
                    model.touch(u32::from(*p));
                }
                Op::Read(p) => {
                    let expected = model.contents.get(&u32::from(*p)).copied().unwrap_or(0);
                    let before = pool.stats().snapshot();
                    let byte = pool.read(ids[*p as usize], |data| data[0]).unwrap();
                    let delta = pool.stats().snapshot() - before;
                    prop_assert_eq!(byte, expected, "page {} content", p);
                    // Physical read iff the model says non-resident.
                    let miss = delta.physical_reads == 1;
                    prop_assert_eq!(
                        miss,
                        !model.resident(u32::from(*p)),
                        "page {} residency (cap {})", p, capacity
                    );
                    model.touch(u32::from(*p));
                }
                Op::Flush => {
                    pool.flush().unwrap();
                }
                Op::Clear => {
                    pool.clear().unwrap();
                    model.lru.clear();
                }
            }
            prop_assert!(pool.resident() <= capacity);
        }

        // Final disk truth: clear the pool and read everything raw.
        pool.clear().unwrap();
        for (p, marker) in &model.contents {
            let byte = pool.read(ids[*p as usize], |data| data[0]).unwrap();
            prop_assert_eq!(byte, *marker, "final content of page {}", p);
        }
    }
}
