//! Property tests: the buffer pool must behave exactly like a reference
//! model (hash map contents + ideal LRU), and the page codec must
//! round-trip arbitrary field sequences.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use cij_storage::codec::{PageReader, PageWriter};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, PageId, PageStore};
use proptest::prelude::*;

/// A serializable field for codec round-trip tests.
#[derive(Debug, Clone)]
enum Field {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    F64(f64),
    Bytes(Vec<u8>),
}

fn arb_field() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u16>().prop_map(Field::U16),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<f64>().prop_map(Field::F64),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Field::Bytes),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of fields that fits in a page reads back identically.
    #[test]
    fn codec_roundtrip(fields in proptest::collection::vec(arb_field(), 0..40)) {
        let mut page = cij_storage::zeroed_page();
        let mut written = Vec::new();
        {
            let mut w = PageWriter::new(&mut page);
            for f in &fields {
                let ok = match f {
                    Field::U8(v) => w.put_u8(*v).is_ok(),
                    Field::U16(v) => w.put_u16(*v).is_ok(),
                    Field::U32(v) => w.put_u32(*v).is_ok(),
                    Field::U64(v) => w.put_u64(*v).is_ok(),
                    Field::F64(v) => w.put_f64(*v).is_ok(),
                    Field::Bytes(v) => w.put_bytes(v).is_ok(),
                };
                if ok {
                    written.push(f.clone());
                } else {
                    break; // page full; everything before must read back
                }
            }
        }
        let mut r = PageReader::new(&page);
        for f in &written {
            match f {
                Field::U8(v) => prop_assert_eq!(r.get_u8().unwrap(), *v),
                Field::U16(v) => prop_assert_eq!(r.get_u16().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Field::F64(v) => {
                    let back = r.get_f64().unwrap();
                    prop_assert!(back == *v || (back.is_nan() && v.is_nan()));
                }
                Field::Bytes(v) => prop_assert_eq!(r.get_bytes(v.len()).unwrap(), &v[..]),
            }
        }
    }
}

/// Reference model of the pool: page contents plus an ideal LRU queue.
struct Model {
    capacity: usize,
    contents: HashMap<u32, u8>, // page → marker byte ("disk truth")
    lru: VecDeque<u32>,         // front = MRU
}

impl Model {
    fn touch(&mut self, id: u32) {
        self.lru.retain(|&x| x != id);
        self.lru.push_front(id);
        while self.lru.len() > self.capacity {
            self.lru.pop_back();
        }
    }
    fn resident(&self, id: u32) -> bool {
        self.lru.contains(&id)
    }
}

#[derive(Debug, Clone)]
enum Op {
    Write(u8, u8), // (page index, marker)
    Read(u8),
    Flush,
    Clear,
}

fn arb_op(pages: u8) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages, any::<u8>()).prop_map(|(p, m)| Op::Write(p, m)),
        (0..pages).prop_map(Op::Read),
        Just(Op::Flush),
        Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pool contents and *physical read* behaviour match the model under
    /// arbitrary operation sequences.
    #[test]
    fn pool_matches_lru_model(
        capacity in 1usize..6,
        ops in proptest::collection::vec(arb_op(8), 1..120),
    ) {
        let store = Arc::new(InMemoryStore::new());
        let pool = BufferPool::new(store.clone(), BufferPoolConfig::with_capacity(capacity));
        let ids: Vec<PageId> = (0..8).map(|_| store.allocate()).collect();
        let mut model = Model { capacity, contents: HashMap::new(), lru: VecDeque::new() };

        for op in &ops {
            match op {
                Op::Write(p, marker) => {
                    let mut page = cij_storage::zeroed_page();
                    page[0] = *marker;
                    pool.write(ids[*p as usize], &page).unwrap();
                    model.contents.insert(u32::from(*p), *marker);
                    model.touch(u32::from(*p));
                }
                Op::Read(p) => {
                    let expected = model.contents.get(&u32::from(*p)).copied().unwrap_or(0);
                    let before = pool.stats().snapshot();
                    let byte = pool.read(ids[*p as usize], |data| data[0]).unwrap();
                    let delta = pool.stats().snapshot() - before;
                    prop_assert_eq!(byte, expected, "page {} content", p);
                    // Physical read iff the model says non-resident.
                    let miss = delta.physical_reads == 1;
                    prop_assert_eq!(
                        miss,
                        !model.resident(u32::from(*p)),
                        "page {} residency (cap {})", p, capacity
                    );
                    model.touch(u32::from(*p));
                }
                Op::Flush => {
                    pool.flush().unwrap();
                }
                Op::Clear => {
                    pool.clear().unwrap();
                    model.lru.clear();
                }
            }
            prop_assert!(pool.resident() <= capacity);
        }

        // Final disk truth: clear the pool and read everything raw.
        pool.clear().unwrap();
        for (p, marker) in &model.contents {
            let byte = pool.read(ids[*p as usize], |data| data[0]).unwrap();
            prop_assert_eq!(byte, *marker, "final content of page {}", p);
        }
    }
}

/// One step of a random miss-fill / writer interleaving on the decoded
/// cache (see `decoded_cache_stale_fill_never_beats_invalidation`).
#[derive(Debug, Clone, Copy)]
enum CacheOp {
    /// Start a miss-fill for the id: record the generation stamp.
    Begin(u32),
    /// Complete some pending fill (picked by index) with `try_insert`.
    Finish(u8),
    /// Writer install (bumps the generation, replaces the value).
    Install(u32),
    /// Writer invalidate (bumps the generation, drops the value).
    Invalidate(u32),
    /// Read the id and check it against the model.
    Get(u32),
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    let id = || 0..6u32;
    prop_oneof![
        id().prop_map(CacheOp::Begin),
        any::<u8>().prop_map(CacheOp::Finish),
        id().prop_map(CacheOp::Install),
        id().prop_map(CacheOp::Invalidate),
        id().prop_map(CacheOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The generation protocol of `DecodedCache`: interleaving
    /// `begin_insert`/`try_insert` miss-fills with writer
    /// `install`/`invalidate` calls, a fill stamped before a writer's
    /// generation bump must be rejected — a stale decode can never
    /// overwrite a newer invalidation, and a hit only ever returns the
    /// newest accepted value for its id.
    #[test]
    fn decoded_cache_stale_fill_never_beats_invalidation(
        ops in proptest::collection::vec(arb_cache_op(), 1..80)
    ) {
        use cij_storage::DecodedCache;

        // Capacity 4 over 2 shards so evictions and shared-generation
        // collisions (ids 0,2,4 vs 1,3,5) both occur.
        let cache: DecodedCache<u64> = DecodedCache::new(4, 2);
        let shard_of = |id: u32| (id as usize) % cache.shard_count();

        // The model: per-shard writer generation, newest authoritative
        // value per id (None = invalidated or never written), pending
        // fills, and expected counter totals.
        let mut model_gen = vec![0u64; cache.shard_count()];
        let mut latest: HashMap<u32, Option<u64>> = HashMap::new();
        let mut pending: Vec<(u32, u64, u64)> = Vec::new(); // (id, stamp, value)
        let mut next_value = 0u64;
        let (mut accepted, mut rejected) = (0u64, 0u64);

        for op in ops {
            match op {
                CacheOp::Begin(id) => {
                    let stamp = cache.begin_insert(PageId(id));
                    next_value += 1;
                    pending.push((id, stamp, next_value));
                    // The stamp must be the shard's current generation —
                    // that is the whole protocol.
                    prop_assert_eq!(stamp, model_gen[shard_of(id)]);
                }
                CacheOp::Finish(pick) => {
                    if pending.is_empty() {
                        continue;
                    }
                    let (id, stamp, value) =
                        pending.swap_remove(usize::from(pick) % pending.len());
                    let installed = cache.try_insert(PageId(id), Arc::new(value), stamp);
                    // Accepted iff no writer bumped the shard since the
                    // begin_insert: a stale fill NEVER lands.
                    prop_assert_eq!(installed, stamp == model_gen[shard_of(id)]);
                    if installed {
                        latest.insert(id, Some(value));
                        accepted += 1;
                    } else {
                        rejected += 1;
                    }
                }
                CacheOp::Install(id) => {
                    next_value += 1;
                    cache.install(PageId(id), Arc::new(next_value));
                    model_gen[shard_of(id)] += 1;
                    latest.insert(id, Some(next_value));
                }
                CacheOp::Invalidate(id) => {
                    cache.invalidate(PageId(id));
                    model_gen[shard_of(id)] += 1;
                    latest.insert(id, None);
                    // The invalidation is immediately visible.
                    prop_assert!(cache.get(PageId(id)).is_none());
                }
                CacheOp::Get(id) => {
                    if let Some(v) = cache.get(PageId(id)) {
                        // A hit may be evicted away (None is always
                        // legal) but can never resurrect a value older
                        // than the last writer action on the id.
                        prop_assert_eq!(Some(*v), latest.get(&id).copied().flatten());
                    }
                }
            }
        }

        // Every fill raced by a writer was counted as a stale rejection.
        let s = cache.snapshot();
        prop_assert_eq!(s.stale_rejections, rejected);
        prop_assert!(s.insertions >= accepted);
    }
}
