//! Concurrency stress for the sharded buffer pool: 8 threads × 10 000
//! mixed read/write (pin) operations over an overlapping page set, with
//! three invariants checked:
//!
//! 1. **No lost writes** — every page carries one write-count slot per
//!    thread plus a grand total; writers do a read-modify-write under a
//!    test-level page latch (the pool itself, like a real buffer
//!    manager, serializes only frame access). At the end each slot must
//!    equal the thread's own write tally and the total must equal the
//!    slot sum — any write dropped by an eviction/reload race breaks
//!    the count.
//! 2. **Torn-page freedom** — the total slot always equals the sum of
//!    the per-thread slots in *every* read snapshot, latched or not: a
//!    page observed mid-flight must still be some complete previously
//!    written image.
//! 3. **Accounting exactness** — per-shard residency never exceeds the
//!    shard's frame budget, and the pool's logical I/O counters equal
//!    the sum of the operations the threads actually issued.

use std::sync::Arc;
use std::thread;

use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, PageId, PAGE_SIZE};
use parking_lot::Mutex;

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 10_000;
const PAGES: usize = 64;
const POOL_CAPACITY: usize = 32;
const POOL_SHARDS: usize = 4;

/// Slot layout on each page: `u64` write count per thread, then the
/// grand total.
fn slot(buf: &[u8; PAGE_SIZE], i: usize) -> u64 {
    let o = i * 8;
    u64::from_le_bytes(buf[o..o + 8].try_into().expect("slot within page"))
}

fn set_slot(buf: &mut [u8; PAGE_SIZE], i: usize, v: u64) {
    let o = i * 8;
    buf[o..o + 8].copy_from_slice(&v.to_le_bytes());
}

/// Deterministic per-thread operation stream (xorshift64*; the pool's
/// behaviour under test must not depend on the mix, only the checks do).
struct OpRng(u64);

impl OpRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// The per-shard frame budget the pool documents: `capacity / shards`,
/// first `capacity % shards` shards get one extra.
fn shard_budget(shard: usize) -> usize {
    let extra = POOL_CAPACITY % POOL_SHARDS;
    POOL_CAPACITY / POOL_SHARDS + usize::from(shard < extra)
}

#[test]
fn stress_sharded_pool_keeps_writes_counters_and_budgets_exact() {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(POOL_CAPACITY, POOL_SHARDS),
    );
    let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate()).collect();
    for &id in &pages {
        pool.write(id, &[0u8; PAGE_SIZE]).expect("init page");
    }
    let latches: Vec<Mutex<()>> = (0..PAGES).map(|_| Mutex::new(())).collect();
    let before = pool.stats().snapshot();

    // (reads issued, writes issued, per-page own-write tallies).
    let per_thread: Vec<(u64, u64, Vec<u64>)> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pool = &pool;
                let pages = &pages;
                let latches = &latches;
                s.spawn(move || {
                    let mut rng = OpRng(0x9E37_79B9 + t as u64);
                    let mut reads = 0u64;
                    let mut writes = 0u64;
                    let mut own = vec![0u64; PAGES];
                    for op in 0..OPS_PER_THREAD {
                        let p = (rng.next() % PAGES as u64) as usize;
                        if rng.next().is_multiple_of(4) {
                            // Write op: latched read-modify-write.
                            let _latch = latches[p].lock();
                            let mut buf = pool.read(pages[p], |data| *data).expect("read for rmw");
                            let mine = slot(&buf, t) + 1;
                            let total = slot(&buf, THREADS) + 1;
                            set_slot(&mut buf, t, mine);
                            set_slot(&mut buf, THREADS, total);
                            pool.write(pages[p], &buf).expect("write back");
                            own[p] += 1;
                            reads += 1;
                            writes += 1;
                        } else {
                            // Read op: unlatched snapshot; must be torn-free.
                            let (total, sum) = pool
                                .read(pages[p], |data| {
                                    let sum: u64 = (0..THREADS).map(|i| slot(data, i)).sum();
                                    (slot(data, THREADS), sum)
                                })
                                .expect("read");
                            assert_eq!(total, sum, "torn page observed by thread {t}");
                            reads += 1;
                        }
                        if op % 1_000 == 0 {
                            for (shard, &resident) in pool.shard_residents().iter().enumerate() {
                                assert!(
                                    resident <= shard_budget(shard),
                                    "shard {shard} holds {resident} frames mid-run"
                                );
                            }
                        }
                    }
                    (reads, writes, own)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // No lost writes: each page's slots equal the threads' own tallies.
    for (p, &id) in pages.iter().enumerate() {
        let _latch = latches[p].lock();
        pool.read(id, |data| {
            let mut sum = 0u64;
            for (t, stats) in per_thread.iter().enumerate() {
                assert_eq!(slot(data, t), stats.2[p], "lost write: page {p} slot {t}");
                sum += stats.2[p];
            }
            assert_eq!(slot(data, THREADS), sum, "page {p} total drifted");
        })
        .expect("final read");
    }

    // Per-shard residency bound still holds after the dust settles.
    let residents = pool.shard_residents();
    assert_eq!(residents.len(), POOL_SHARDS);
    for (shard, &resident) in residents.iter().enumerate() {
        assert!(resident <= shard_budget(shard), "shard {shard} over budget");
    }
    assert_eq!(pool.resident(), residents.iter().sum::<usize>());

    // Logical I/O totals equal the sum of issued operations (the final
    // verification pass reads each page once more, latched).
    let delta = pool.stats().snapshot().delta_since(&before);
    let issued_reads: u64 = per_thread.iter().map(|s| s.0).sum::<u64>() + PAGES as u64;
    let issued_writes: u64 = per_thread.iter().map(|s| s.1).sum();
    assert_eq!(delta.logical_reads, issued_reads, "logical read accounting");
    assert_eq!(
        delta.logical_writes, issued_writes,
        "logical write accounting"
    );
    let total_writes: u64 = per_thread.iter().map(|s| s.2.iter().sum::<u64>()).sum();
    assert_eq!(
        issued_writes, total_writes,
        "every write op incremented a slot"
    );
}
