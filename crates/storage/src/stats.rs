//! I/O counters with snapshot/delta arithmetic.
//!
//! The paper reports two metrics per experiment: the number of disk I/Os
//! and the total response time. Physical reads/writes are counted by the
//! store and buffer pool; the harness takes an [`IoSnapshot`] before a
//! phase and subtracts it afterwards to attribute I/O to that phase
//! (initial join vs. maintenance, per update, per tree, …).
//!
//! Since the observability layer landed, both [`IoStats`] and
//! [`CacheStats`] are built on `cij-obs` [`CounterCell`]s. Calling
//! [`IoStats::register_in`] (or [`CacheStats::register_in`]) shares the
//! *same* atomics into a [`MetricsRegistry`], so the registry's snapshot
//! is a bit-exact live view of the legacy counters — not a copy that can
//! drift. The record/snapshot/reset API is unchanged.

use std::sync::Arc;

use cij_obs::{CounterCell, MetricsRegistry};

/// Shared, thread-safe I/O counters. One instance is threaded through a
/// store and its buffer pool; indexes on the same "disk" share it.
#[derive(Debug, Default)]
pub struct IoStats {
    physical_reads: Arc<CounterCell>,
    physical_writes: Arc<CounterCell>,
    logical_reads: Arc<CounterCell>,
    logical_writes: Arc<CounterCell>,
    allocations: Arc<CounterCell>,
    frees: Arc<CounterCell>,
}

impl IoStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a physical (buffer-miss) page read.
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.inc();
    }

    /// Records a physical page write (eviction of a dirty frame / flush).
    #[inline]
    pub fn record_physical_write(&self) {
        self.physical_writes.inc();
    }

    /// Records a logical page read (every buffer-pool `read`, hit or miss).
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.inc();
    }

    /// Records a logical page write.
    #[inline]
    pub fn record_logical_write(&self) {
        self.logical_writes.inc();
    }

    /// Records a page allocation.
    #[inline]
    pub fn record_alloc(&self) {
        self.allocations.inc();
    }

    /// Records a page free.
    #[inline]
    pub fn record_free(&self) {
        self.frees.inc();
    }

    /// Captures the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.get(),
            physical_writes: self.physical_writes.get(),
            logical_reads: self.logical_reads.get(),
            logical_writes: self.logical_writes.get(),
            allocations: self.allocations.get(),
            frees: self.frees.get(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.physical_reads.store(0);
        self.physical_writes.store(0);
        self.logical_reads.store(0);
        self.logical_writes.store(0);
        self.allocations.store(0);
        self.frees.store(0);
    }

    /// Registers every counter in `registry` under `prefix` (e.g.
    /// `storage.pool` → `storage.pool.physical_reads`, …). The registry
    /// shares this struct's atomics, so its view stays bit-exact with
    /// [`snapshot`](Self::snapshot) forever after. No-op when the
    /// registry is disabled.
    pub fn register_in(&self, registry: &MetricsRegistry, prefix: &str) {
        for (name, cell) in [
            ("physical_reads", &self.physical_reads),
            ("physical_writes", &self.physical_writes),
            ("logical_reads", &self.logical_reads),
            ("logical_writes", &self.logical_writes),
            ("allocations", &self.allocations),
            ("frees", &self.frees),
        ] {
            registry.register_counter_cell(&format!("{prefix}.{name}"), Arc::clone(cell));
        }
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to obtain
/// per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Buffer-miss page reads that hit the store.
    pub physical_reads: u64,
    /// Page writes that hit the store (dirty evictions + flushes).
    pub physical_writes: u64,
    /// Buffer-pool reads, hits included.
    pub logical_reads: u64,
    /// Buffer-pool writes, hits included.
    pub logical_writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

impl IoSnapshot {
    /// Total physical I/O operations — the paper's "number of disk I/Os".
    #[must_use]
    pub fn physical_total(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio over logical reads, `None` when no reads happened.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.logical_reads == 0 {
            None
        } else {
            let hits = self.logical_reads.saturating_sub(self.physical_reads);
            Some(hits as f64 / self.logical_reads as f64)
        }
    }

    /// Component-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            logical_writes: self.logical_writes.saturating_sub(earlier.logical_writes),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            frees: self.frees.saturating_sub(earlier.frees),
        }
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: Self) -> Self {
        self.delta_since(&rhs)
    }
}

/// Shared, thread-safe counters of a [`DecodedCache`](crate::DecodedCache).
///
/// Mirrors the [`IoStats`] pattern: record methods on atomics, a
/// [`snapshot`](Self::snapshot) for per-phase deltas. Kept separate from
/// `IoStats` because the decoded cache sits *above* the buffer pool — its
/// hits never reach the pool and must not perturb the paper's logical /
/// physical I/O accounting.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: Arc<CounterCell>,
    misses: Arc<CounterCell>,
    insertions: Arc<CounterCell>,
    evictions: Arc<CounterCell>,
    invalidations: Arc<CounterCell>,
    stale_rejections: Arc<CounterCell>,
    zero_copy_reads: Arc<CounterCell>,
    decode_fallbacks: Arc<CounterCell>,
}

impl CacheStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a lookup that returned a cached value.
    #[inline]
    pub fn record_hit(&self) {
        self.hits.inc();
    }

    /// Records a lookup that found nothing.
    #[inline]
    pub fn record_miss(&self) {
        self.misses.inc();
    }

    /// Records a value installed (miss-fill or write-through).
    #[inline]
    pub fn record_insertion(&self) {
        self.insertions.inc();
    }

    /// Records an LRU victim dropped to make room.
    #[inline]
    pub fn record_eviction(&self) {
        self.evictions.inc();
    }

    /// Records a cached value dropped or replaced because its page
    /// changed or was freed.
    #[inline]
    pub fn record_invalidation(&self) {
        self.invalidations.inc();
    }

    /// Records a miss-fill rejected by the generation stamp.
    #[inline]
    pub fn record_stale_rejection(&self) {
        self.stale_rejections.inc();
    }

    /// Records a page served through the zero-copy SoA view (no decoded
    /// `Node` was materialized).
    #[inline]
    pub fn record_zero_copy_read(&self) {
        self.zero_copy_reads.inc();
    }

    /// Records a page that had to go through the legacy (v1, AoS)
    /// field-by-field decode because it predates the SoA layout.
    #[inline]
    pub fn record_decode_fallback(&self) {
        self.decode_fallbacks.inc();
    }

    /// Captures the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            stale_rejections: self.stale_rejections.get(),
            zero_copy_reads: self.zero_copy_reads.get(),
            decode_fallbacks: self.decode_fallbacks.get(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.hits.store(0);
        self.misses.store(0);
        self.insertions.store(0);
        self.evictions.store(0);
        self.invalidations.store(0);
        self.stale_rejections.store(0);
        self.zero_copy_reads.store(0);
        self.decode_fallbacks.store(0);
    }

    /// Registers every counter in `registry` under `prefix` (e.g.
    /// `storage.cache` → `storage.cache.hits`, …), sharing this struct's
    /// atomics so the registry view is live and bit-exact. No-op when the
    /// registry is disabled.
    pub fn register_in(&self, registry: &MetricsRegistry, prefix: &str) {
        for (name, cell) in [
            ("hits", &self.hits),
            ("misses", &self.misses),
            ("insertions", &self.insertions),
            ("evictions", &self.evictions),
            ("invalidations", &self.invalidations),
            ("stale_rejections", &self.stale_rejections),
            ("zero_copy_reads", &self.zero_copy_reads),
            ("decode_fallbacks", &self.decode_fallbacks),
        ] {
            registry.register_counter_cell(&format!("{prefix}.{name}"), Arc::clone(cell));
        }
    }
}

/// A point-in-time copy of [`CacheStats`], supporting subtraction to
/// obtain per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values installed (miss-fills + write-throughs).
    pub insertions: u64,
    /// LRU victims dropped for capacity.
    pub evictions: u64,
    /// Values dropped or replaced by writers.
    pub invalidations: u64,
    /// Miss-fills rejected by the generation stamp.
    pub stale_rejections: u64,
    /// Pages served through the zero-copy SoA view (no `Node` decode).
    pub zero_copy_reads: u64,
    /// Legacy (v1, AoS) pages decoded through the compat path.
    pub decode_fallbacks: u64,
}

impl CacheSnapshot {
    /// Fraction of lookups served from the cache; `None` when no lookups
    /// happened.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Component-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            stale_rejections: self
                .stale_rejections
                .saturating_sub(earlier.stale_rejections),
            zero_copy_reads: self.zero_copy_reads.saturating_sub(earlier.zero_copy_reads),
            decode_fallbacks: self
                .decode_fallbacks
                .saturating_sub(earlier.decode_fallbacks),
        }
    }

    /// Component-wise sum — for aggregating over several caches (e.g.
    /// MTB-Join's per-bucket trees).
    #[must_use]
    pub fn merged(&self, other: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            stale_rejections: self.stale_rejections + other.stale_rejections,
            zero_copy_reads: self.zero_copy_reads + other.zero_copy_reads,
            decode_fallbacks: self.decode_fallbacks + other.decode_fallbacks,
        }
    }
}

impl std::ops::Sub for CacheSnapshot {
    type Output = CacheSnapshot;
    fn sub(self, rhs: Self) -> Self {
        self.delta_since(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_physical_read();
        s.record_physical_read();
        s.record_physical_write();
        s.record_logical_read();
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.logical_reads, 1);
        assert_eq!(snap.physical_total(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_physical_read();
        let before = s.snapshot();
        s.record_physical_read();
        s.record_physical_write();
        let delta = s.snapshot() - before;
        assert_eq!(delta.physical_reads, 1);
        assert_eq!(delta.physical_writes, 1);
    }

    #[test]
    fn hit_ratio() {
        let s = IoStats::new();
        assert_eq!(s.snapshot().hit_ratio(), None);
        for _ in 0..10 {
            s.record_logical_read();
        }
        s.record_physical_read(); // 1 miss in 10 reads
        assert!((s.snapshot().hit_ratio().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_physical_read();
        s.record_alloc();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn cache_counters_accumulate_and_delta() {
        let s = CacheStats::new();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insertion();
        let before = s.snapshot();
        assert_eq!(before.hits, 2);
        assert_eq!(before.hit_rate(), Some(2.0 / 3.0));
        s.record_hit();
        s.record_eviction();
        s.record_invalidation();
        s.record_stale_rejection();
        let delta = s.snapshot() - before;
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.invalidations, 1);
        assert_eq!(delta.stale_rejections, 1);
        s.reset();
        assert_eq!(s.snapshot(), CacheSnapshot::default());
        assert_eq!(CacheSnapshot::default().hit_rate(), None);
    }

    #[test]
    fn register_in_exposes_live_bit_exact_views() {
        let registry = MetricsRegistry::new();
        let io = IoStats::new();
        io.record_physical_read();
        io.register_in(&registry, "storage.pool");
        io.record_physical_read();
        io.record_logical_write();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.pool.physical_reads"), Some(2));
        assert_eq!(snap.counter("storage.pool.logical_writes"), Some(1));
        assert_eq!(
            snap.counter("storage.pool.physical_reads"),
            Some(io.snapshot().physical_reads)
        );

        let cache = CacheStats::new();
        cache.register_in(&registry, "storage.cache");
        cache.record_hit();
        cache.record_miss();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.cache.hits"), Some(1));
        assert_eq!(snap.counter("storage.cache.misses"), Some(1));

        // Disabled registries accept the call and record nothing.
        let disabled = MetricsRegistry::disabled();
        io.register_in(&disabled, "storage.pool");
        assert!(disabled.snapshot().is_empty());
    }

    #[test]
    fn cache_snapshot_merged_sums() {
        let a = CacheSnapshot {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            invalidations: 5,
            stale_rejections: 6,
            zero_copy_reads: 7,
            decode_fallbacks: 8,
        };
        let b = a.merged(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.stale_rejections, 12);
        assert_eq!(b.zero_copy_reads, 14);
        assert_eq!(b.decode_fallbacks, 16);
    }

    #[test]
    fn page_format_counters_record_delta_and_register() {
        let s = CacheStats::new();
        s.record_zero_copy_read();
        s.record_zero_copy_read();
        s.record_decode_fallback();
        let before = s.snapshot();
        assert_eq!(before.zero_copy_reads, 2);
        assert_eq!(before.decode_fallbacks, 1);
        s.record_zero_copy_read();
        let delta = s.snapshot() - before;
        assert_eq!(delta.zero_copy_reads, 1);
        assert_eq!(delta.decode_fallbacks, 0);

        let registry = MetricsRegistry::new();
        s.register_in(&registry, "storage.page");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("storage.page.zero_copy_reads"), Some(3));
        assert_eq!(snap.counter("storage.page.decode_fallbacks"), Some(1));

        s.reset();
        assert_eq!(s.snapshot(), CacheSnapshot::default());
    }
}
