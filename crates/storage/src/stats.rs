//! I/O counters with snapshot/delta arithmetic.
//!
//! The paper reports two metrics per experiment: the number of disk I/Os
//! and the total response time. Physical reads/writes are counted by the
//! store and buffer pool; the harness takes an [`IoSnapshot`] before a
//! phase and subtracts it afterwards to attribute I/O to that phase
//! (initial join vs. maintenance, per update, per tree, …).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe I/O counters. One instance is threaded through a
/// store and its buffer pool; indexes on the same "disk" share it.
#[derive(Debug, Default)]
pub struct IoStats {
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    logical_reads: AtomicU64,
    logical_writes: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a physical (buffer-miss) page read.
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page write (eviction of a dirty frame / flush).
    #[inline]
    pub fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical page read (every buffer-pool `read`, hit or miss).
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical page write.
    #[inline]
    pub fn record_logical_write(&self) {
        self.logical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page allocation.
    #[inline]
    pub fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page free.
    #[inline]
    pub fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            logical_writes: self.logical_writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.logical_reads.store(0, Ordering::Relaxed);
        self.logical_writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to obtain
/// per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Buffer-miss page reads that hit the store.
    pub physical_reads: u64,
    /// Page writes that hit the store (dirty evictions + flushes).
    pub physical_writes: u64,
    /// Buffer-pool reads, hits included.
    pub logical_reads: u64,
    /// Buffer-pool writes, hits included.
    pub logical_writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

impl IoSnapshot {
    /// Total physical I/O operations — the paper's "number of disk I/Os".
    #[must_use]
    pub fn physical_total(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio over logical reads, `None` when no reads happened.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.logical_reads == 0 {
            None
        } else {
            let hits = self.logical_reads.saturating_sub(self.physical_reads);
            Some(hits as f64 / self.logical_reads as f64)
        }
    }

    /// Component-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            logical_writes: self.logical_writes.saturating_sub(earlier.logical_writes),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            frees: self.frees.saturating_sub(earlier.frees),
        }
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: Self) -> Self {
        self.delta_since(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_physical_read();
        s.record_physical_read();
        s.record_physical_write();
        s.record_logical_read();
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.logical_reads, 1);
        assert_eq!(snap.physical_total(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_physical_read();
        let before = s.snapshot();
        s.record_physical_read();
        s.record_physical_write();
        let delta = s.snapshot() - before;
        assert_eq!(delta.physical_reads, 1);
        assert_eq!(delta.physical_writes, 1);
    }

    #[test]
    fn hit_ratio() {
        let s = IoStats::new();
        assert_eq!(s.snapshot().hit_ratio(), None);
        for _ in 0..10 {
            s.record_logical_read();
        }
        s.record_physical_read(); // 1 miss in 10 reads
        assert!((s.snapshot().hit_ratio().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_physical_read();
        s.record_alloc();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }
}
