//! I/O counters with snapshot/delta arithmetic.
//!
//! The paper reports two metrics per experiment: the number of disk I/Os
//! and the total response time. Physical reads/writes are counted by the
//! store and buffer pool; the harness takes an [`IoSnapshot`] before a
//! phase and subtracts it afterwards to attribute I/O to that phase
//! (initial join vs. maintenance, per update, per tree, …).

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe I/O counters. One instance is threaded through a
/// store and its buffer pool; indexes on the same "disk" share it.
#[derive(Debug, Default)]
pub struct IoStats {
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    logical_reads: AtomicU64,
    logical_writes: AtomicU64,
    allocations: AtomicU64,
    frees: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a physical (buffer-miss) page read.
    #[inline]
    pub fn record_physical_read(&self) {
        self.physical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a physical page write (eviction of a dirty frame / flush).
    #[inline]
    pub fn record_physical_write(&self) {
        self.physical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical page read (every buffer-pool `read`, hit or miss).
    #[inline]
    pub fn record_logical_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a logical page write.
    #[inline]
    pub fn record_logical_write(&self) {
        self.logical_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page allocation.
    #[inline]
    pub fn record_alloc(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a page free.
    #[inline]
    pub fn record_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            logical_writes: self.logical_writes.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.logical_reads.store(0, Ordering::Relaxed);
        self.logical_writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoStats`], supporting subtraction to obtain
/// per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Buffer-miss page reads that hit the store.
    pub physical_reads: u64,
    /// Page writes that hit the store (dirty evictions + flushes).
    pub physical_writes: u64,
    /// Buffer-pool reads, hits included.
    pub logical_reads: u64,
    /// Buffer-pool writes, hits included.
    pub logical_writes: u64,
    /// Pages allocated.
    pub allocations: u64,
    /// Pages freed.
    pub frees: u64,
}

impl IoSnapshot {
    /// Total physical I/O operations — the paper's "number of disk I/Os".
    #[must_use]
    pub fn physical_total(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio over logical reads, `None` when no reads happened.
    #[must_use]
    pub fn hit_ratio(&self) -> Option<f64> {
        if self.logical_reads == 0 {
            None
        } else {
            let hits = self.logical_reads.saturating_sub(self.physical_reads);
            Some(hits as f64 / self.logical_reads as f64)
        }
    }

    /// Component-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            logical_reads: self.logical_reads.saturating_sub(earlier.logical_reads),
            logical_writes: self.logical_writes.saturating_sub(earlier.logical_writes),
            allocations: self.allocations.saturating_sub(earlier.allocations),
            frees: self.frees.saturating_sub(earlier.frees),
        }
    }
}

impl std::ops::Sub for IoSnapshot {
    type Output = IoSnapshot;
    fn sub(self, rhs: Self) -> Self {
        self.delta_since(&rhs)
    }
}

/// Shared, thread-safe counters of a [`DecodedCache`](crate::DecodedCache).
///
/// Mirrors the [`IoStats`] pattern: record methods on atomics, a
/// [`snapshot`](Self::snapshot) for per-phase deltas. Kept separate from
/// `IoStats` because the decoded cache sits *above* the buffer pool — its
/// hits never reach the pool and must not perturb the paper's logical /
/// physical I/O accounting.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    stale_rejections: AtomicU64,
}

impl CacheStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a lookup that returned a cached value.
    #[inline]
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that found nothing.
    #[inline]
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a value installed (miss-fill or write-through).
    #[inline]
    pub fn record_insertion(&self) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an LRU victim dropped to make room.
    #[inline]
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cached value dropped or replaced because its page
    /// changed or was freed.
    #[inline]
    pub fn record_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss-fill rejected by the generation stamp.
    #[inline]
    pub fn record_stale_rejection(&self) {
        self.stale_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current counter values.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            stale_rejections: self.stale_rejections.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.stale_rejections.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`CacheStats`], supporting subtraction to
/// obtain per-phase deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values installed (miss-fills + write-throughs).
    pub insertions: u64,
    /// LRU victims dropped for capacity.
    pub evictions: u64,
    /// Values dropped or replaced by writers.
    pub invalidations: u64,
    /// Miss-fills rejected by the generation stamp.
    pub stale_rejections: u64,
}

impl CacheSnapshot {
    /// Fraction of lookups served from the cache; `None` when no lookups
    /// happened.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(self.hits as f64 / total as f64)
        }
    }

    /// Component-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            stale_rejections: self
                .stale_rejections
                .saturating_sub(earlier.stale_rejections),
        }
    }

    /// Component-wise sum — for aggregating over several caches (e.g.
    /// MTB-Join's per-bucket trees).
    #[must_use]
    pub fn merged(&self, other: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            insertions: self.insertions + other.insertions,
            evictions: self.evictions + other.evictions,
            invalidations: self.invalidations + other.invalidations,
            stale_rejections: self.stale_rejections + other.stale_rejections,
        }
    }
}

impl std::ops::Sub for CacheSnapshot {
    type Output = CacheSnapshot;
    fn sub(self, rhs: Self) -> Self {
        self.delta_since(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_physical_read();
        s.record_physical_read();
        s.record_physical_write();
        s.record_logical_read();
        let snap = s.snapshot();
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.logical_reads, 1);
        assert_eq!(snap.physical_total(), 3);
    }

    #[test]
    fn snapshot_delta() {
        let s = IoStats::new();
        s.record_physical_read();
        let before = s.snapshot();
        s.record_physical_read();
        s.record_physical_write();
        let delta = s.snapshot() - before;
        assert_eq!(delta.physical_reads, 1);
        assert_eq!(delta.physical_writes, 1);
    }

    #[test]
    fn hit_ratio() {
        let s = IoStats::new();
        assert_eq!(s.snapshot().hit_ratio(), None);
        for _ in 0..10 {
            s.record_logical_read();
        }
        s.record_physical_read(); // 1 miss in 10 reads
        assert!((s.snapshot().hit_ratio().unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_physical_read();
        s.record_alloc();
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn cache_counters_accumulate_and_delta() {
        let s = CacheStats::new();
        s.record_hit();
        s.record_hit();
        s.record_miss();
        s.record_insertion();
        let before = s.snapshot();
        assert_eq!(before.hits, 2);
        assert_eq!(before.hit_rate(), Some(2.0 / 3.0));
        s.record_hit();
        s.record_eviction();
        s.record_invalidation();
        s.record_stale_rejection();
        let delta = s.snapshot() - before;
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.evictions, 1);
        assert_eq!(delta.invalidations, 1);
        assert_eq!(delta.stale_rejections, 1);
        s.reset();
        assert_eq!(s.snapshot(), CacheSnapshot::default());
        assert_eq!(CacheSnapshot::default().hit_rate(), None);
    }

    #[test]
    fn cache_snapshot_merged_sums() {
        let a = CacheSnapshot {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            invalidations: 5,
            stale_rejections: 6,
        };
        let b = a.merged(&a);
        assert_eq!(b.hits, 2);
        assert_eq!(b.stale_rejections, 12);
    }
}
