//! Storage-layer error type.

use crate::PageId;

/// Errors surfaced by the storage layer.
///
/// The simulated disk cannot fail physically, so every variant indicates a
/// logic error in the caller (use-after-free, codec overflow, corrupt
/// serialization) — but they are surfaced as values rather than panics so
/// the index layer can add context and tests can assert on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The page was never allocated or has been freed.
    PageNotFound(PageId),
    /// A codec read or write ran past the end of the page.
    PageOverflow {
        /// Byte offset at which the access was attempted.
        offset: usize,
        /// Number of bytes requested.
        requested: usize,
    },
    /// Serialized bytes failed validation while decoding.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PageNotFound(id) => write!(f, "{id} not found (freed or never allocated)"),
            Self::PageOverflow { offset, requested } => write!(
                f,
                "page access overflow: {requested} bytes at offset {offset} exceeds page size"
            ),
            Self::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
