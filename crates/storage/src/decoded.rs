//! A sharded LRU cache of *decoded* page payloads.
//!
//! The buffer pool caches raw 4 KB pages; every consumer still pays the
//! full decode (parse + `Vec` allocation) on each access. [`DecodedCache`]
//! sits **above** the pool and memoizes the decoded form behind an
//! `Arc<T>`, so a cache hit returns a shared immutable value with zero
//! parsing and zero allocation. `cij-tpr` uses it with `T = Node`.
//!
//! # Sharding
//!
//! Shards mirror the buffer pool's striping (`page_id % shards`), so
//! concurrent traversals that already avoid pool-shard contention avoid
//! cache-shard contention for free.
//!
//! # Consistency: generation-stamped invalidation
//!
//! Writers must call [`DecodedCache::install`] (write-through replace) or
//! [`DecodedCache::invalidate`] (drop) *before* the underlying page write
//! or free becomes visible. Both bump the shard's **generation**. Readers
//! that miss follow the protocol
//!
//! 1. `begin_insert(id)` — record the shard generation,
//! 2. decode the page through the buffer pool,
//! 3. `try_insert(id, value, gen)` — rejected if the generation moved,
//!
//! so a decode raced by a concurrent writer can never install a stale
//! value. (With Rust's `&mut` aliasing rules a tree writer excludes
//! readers of the *same* tree anyway; the stamp keeps the cache safe as a
//! standalone component and under future sharing.)
//!
//! # I/O accounting
//!
//! A cache hit never reaches the buffer pool: it records **no** logical
//! read and refreshes no pool LRU state. The paper's I/O methodology is
//! preserved by keeping the cache *off* by default (capacity 0 at the
//! consumer level); when enabled, the cache's own [`CacheStats`] carry
//! the accounting.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::lru::{LruLink, LruList};
use crate::stats::{CacheSnapshot, CacheStats};
use crate::PageId;

struct CacheShard<T> {
    /// Entry budget of this shard alone.
    capacity: usize,
    /// Bumped by every `install`/`invalidate`; stamps in-flight decodes.
    generation: u64,
    map: HashMap<PageId, usize>,
    /// Slot slab, `None` = free slot.
    slots: Vec<Option<(PageId, Arc<T>)>>,
    /// LRU link fields, parallel to `slots`.
    links: Vec<LruLink>,
    free: Vec<usize>,
    lru: LruList,
}

impl<T> CacheShard<T> {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            generation: 0,
            map: HashMap::with_capacity(capacity * 2),
            slots: Vec::with_capacity(capacity),
            links: Vec::with_capacity(capacity),
            free: Vec::new(),
            lru: LruList::new(),
        }
    }

    /// Obtains a free slot index, evicting the LRU entry when full.
    /// Returns `(idx, evicted)`.
    fn take_slot(&mut self) -> (usize, bool) {
        if let Some(idx) = self.free.pop() {
            return (idx, false);
        }
        if self.slots.len() < self.capacity {
            self.slots.push(None);
            self.links.push(LruLink::default());
            return (self.slots.len() - 1, false);
        }
        let idx = {
            let Self { lru, links, .. } = self;
            lru.pop_lru(links).expect("full shard has an LRU victim")
        };
        let (victim, _) = self.slots[idx].take().expect("LRU slot is occupied");
        self.map.remove(&victim);
        (idx, true)
    }

    /// Inserts or replaces `id`. Returns `(evicted, replaced)`.
    fn put(&mut self, id: PageId, value: Arc<T>) -> (bool, bool) {
        if let Some(&idx) = self.map.get(&id) {
            self.slots[idx] = Some((id, value));
            let Self { lru, links, .. } = self;
            lru.touch(idx, links);
            return (false, true);
        }
        let (idx, evicted) = self.take_slot();
        self.slots[idx] = Some((id, value));
        self.map.insert(id, idx);
        let Self { lru, links, .. } = self;
        lru.push_front(idx, links);
        (evicted, false)
    }

    /// Removes `id` if present; returns whether an entry was dropped.
    fn remove(&mut self, id: PageId) -> bool {
        let Some(idx) = self.map.remove(&id) else {
            return false;
        };
        self.slots[idx] = None;
        let Self { lru, links, .. } = self;
        lru.unlink(idx, links);
        self.free.push(idx);
        true
    }
}

/// A sharded LRU cache of decoded page payloads (see module docs).
///
/// All methods take `&self`; shards are individually locked. Cheap
/// lookups (`get`) touch exactly one shard mutex.
pub struct DecodedCache<T> {
    shards: Box<[Mutex<CacheShard<T>>]>,
    stats: CacheStats,
    capacity: usize,
}

impl<T> std::fmt::Debug for DecodedCache<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> DecodedCache<T> {
    /// Creates a cache holding at most `capacity` decoded values, striped
    /// over `shards` segments (pass the buffer pool's shard count so the
    /// stripings align). The shard count is clamped to `capacity` so every
    /// shard holds at least one entry.
    ///
    /// # Panics
    /// Panics when `capacity == 0` or `shards == 0` — a disabled cache is
    /// expressed by not constructing one.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "decoded cache needs at least one entry");
        assert!(shards > 0, "decoded cache needs at least one shard");
        let shards = shards.min(capacity);
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards: Box<[Mutex<CacheShard<T>>]> = (0..shards)
            .map(|i| Mutex::new(CacheShard::with_capacity(base + usize::from(i < extra))))
            .collect();
        Self {
            shards,
            stats: CacheStats::new(),
            capacity,
        }
    }

    /// Total entry budget across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of currently cached values across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cache's counters.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Convenience: a point-in-time copy of the counters.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    fn shard(&self, id: PageId) -> &Mutex<CacheShard<T>> {
        &self.shards[id.0 as usize % self.shards.len()]
    }

    /// Looks up `id`, refreshing its recency. Counts one hit or miss.
    #[must_use]
    pub fn get(&self, id: PageId) -> Option<Arc<T>> {
        let mut shard = self.shard(id).lock();
        match shard.map.get(&id).copied() {
            Some(idx) => {
                let CacheShard { lru, links, .. } = &mut *shard;
                lru.touch(idx, links);
                let value = shard.slots[idx]
                    .as_ref()
                    .map(|(_, v)| Arc::clone(v))
                    .expect("mapped slot is occupied");
                drop(shard);
                self.stats.record_hit();
                Some(value)
            }
            None => {
                drop(shard);
                self.stats.record_miss();
                None
            }
        }
    }

    /// Starts a miss-fill: returns the shard generation to stamp the
    /// subsequent [`try_insert`](Self::try_insert) with. Call *before*
    /// decoding the page.
    #[must_use]
    pub fn begin_insert(&self, id: PageId) -> u64 {
        self.shard(id).lock().generation
    }

    /// Completes a miss-fill started at generation `gen`. The value is
    /// installed only if no writer touched the shard in between; a stale
    /// decode is rejected (and counted). Returns whether it was installed.
    pub fn try_insert(&self, id: PageId, value: Arc<T>, gen: u64) -> bool {
        let mut shard = self.shard(id).lock();
        if shard.generation != gen {
            drop(shard);
            self.stats.record_stale_rejection();
            return false;
        }
        let (evicted, _) = shard.put(id, value);
        drop(shard);
        self.stats.record_insertion();
        if evicted {
            self.stats.record_eviction();
        }
        true
    }

    /// Writer path: installs the authoritative decoded value for `id`
    /// (write-through), bumping the shard generation so concurrent
    /// miss-fills of older bytes are rejected. Replacing an existing
    /// entry counts as an invalidation of the old value.
    pub fn install(&self, id: PageId, value: Arc<T>) {
        let mut shard = self.shard(id).lock();
        shard.generation += 1;
        let (evicted, replaced) = shard.put(id, value);
        drop(shard);
        self.stats.record_insertion();
        if evicted {
            self.stats.record_eviction();
        }
        if replaced {
            self.stats.record_invalidation();
        }
    }

    /// Writer path: drops `id` (page freed / contents dead), bumping the
    /// shard generation. Counts an invalidation when an entry was present.
    pub fn invalidate(&self, id: PageId) {
        let mut shard = self.shard(id).lock();
        shard.generation += 1;
        let removed = shard.remove(id);
        drop(shard);
        if removed {
            self.stats.record_invalidation();
        }
    }

    /// Drops every cached value (generations bump, counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.generation += 1;
            shard.map.clear();
            loop {
                let CacheShard { lru, links, .. } = &mut *shard;
                let Some(idx) = lru.pop_lru(links) else { break };
                shard.slots[idx] = None;
                shard.free.push(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize, shards: usize) -> DecodedCache<u64> {
        DecodedCache::new(capacity, shards)
    }

    fn fill(c: &DecodedCache<u64>, id: u32, v: u64) -> bool {
        let gen = c.begin_insert(PageId(id));
        c.try_insert(PageId(id), Arc::new(v), gen)
    }

    #[test]
    fn miss_then_hit() {
        let c = cache(4, 1);
        assert!(c.get(PageId(1)).is_none());
        assert!(fill(&c, 1, 11));
        assert_eq!(*c.get(PageId(1)).unwrap(), 11);
        let s = c.snapshot();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.hit_rate(), Some(0.5));
    }

    #[test]
    fn lru_eviction_order() {
        let c = cache(2, 1);
        assert!(fill(&c, 1, 1));
        assert!(fill(&c, 2, 2));
        let _ = c.get(PageId(1)); // 2 becomes LRU
        assert!(fill(&c, 3, 3)); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(PageId(2)).is_none());
        assert!(c.get(PageId(1)).is_some());
        assert!(c.get(PageId(3)).is_some());
        assert_eq!(c.snapshot().evictions, 1);
    }

    #[test]
    fn stale_fill_is_rejected() {
        let c = cache(4, 1);
        let gen = c.begin_insert(PageId(7));
        // A writer intervenes between begin_insert and try_insert.
        c.install(PageId(7), Arc::new(99));
        assert!(!c.try_insert(PageId(7), Arc::new(1), gen));
        // The writer's value survives.
        assert_eq!(*c.get(PageId(7)).unwrap(), 99);
        assert_eq!(c.snapshot().stale_rejections, 1);
    }

    #[test]
    fn invalidate_drops_and_stamps() {
        let c = cache(4, 1);
        let gen = c.begin_insert(PageId(3));
        assert!(fill(&c, 3, 3));
        c.invalidate(PageId(3));
        assert!(c.get(PageId(3)).is_none());
        assert_eq!(c.snapshot().invalidations, 1);
        // The pre-invalidation generation is dead even for fresh inserts.
        assert!(!c.try_insert(PageId(3), Arc::new(4), gen));
        // Invalidating an absent key bumps no counter.
        c.invalidate(PageId(100));
        assert_eq!(c.snapshot().invalidations, 1);
    }

    #[test]
    fn install_replaces_and_counts_invalidation() {
        let c = cache(4, 1);
        assert!(fill(&c, 5, 50));
        c.install(PageId(5), Arc::new(51));
        assert_eq!(*c.get(PageId(5)).unwrap(), 51);
        let s = c.snapshot();
        assert_eq!(s.insertions, 2);
        assert_eq!(s.invalidations, 1);
    }

    #[test]
    fn sharding_respects_total_capacity_and_striping() {
        let c = cache(5, 2); // budgets 3 + 2
        assert_eq!(c.shard_count(), 2);
        for i in 0..20u32 {
            assert!(fill(&c, i, u64::from(i)));
        }
        assert!(c.len() <= 5);
        // Entries survive per-shard LRU independently.
        for i in 0..20u32 {
            if let Some(v) = c.get(PageId(i)) {
                assert_eq!(*v, u64::from(i));
            }
        }
    }

    #[test]
    fn shard_count_clamped_to_capacity() {
        let c = cache(2, 8);
        assert_eq!(c.shard_count(), 2);
        assert!(fill(&c, 0, 0));
        assert!(fill(&c, 1, 1));
        assert!(c.len() <= 2);
    }

    #[test]
    fn clear_drops_everything_and_bumps_generations() {
        let c = cache(4, 2);
        let gen = c.begin_insert(PageId(0));
        assert!(fill(&c, 0, 0));
        assert!(fill(&c, 1, 1));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(PageId(0)).is_none());
        assert!(!c.try_insert(PageId(0), Arc::new(9), gen));
        // A post-clear fill works again.
        assert!(fill(&c, 0, 7));
        assert_eq!(*c.get(PageId(0)).unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = cache(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = cache(4, 0);
    }

    #[test]
    fn concurrent_readers_and_writer_never_see_torn_state() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let c = Arc::new(cache(64, 4));
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                let stop = &stop;
                s.spawn(move || {
                    let mut x = 0x9e3779b9u64.wrapping_add(t);
                    while !stop.load(Ordering::Relaxed) {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let id = PageId((x % 128) as u32);
                        match x % 4 {
                            0 => {
                                let _ = fill(c, id.0, u64::from(id.0));
                            }
                            1 => c.install(id, Arc::new(u64::from(id.0))),
                            2 => c.invalidate(id),
                            _ => {
                                if let Some(v) = c.get(id) {
                                    // Values are keyed by id; a hit must
                                    // return the id's own value.
                                    assert_eq!(*v, u64::from(id.0));
                                }
                            }
                        }
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            stop.store(true, Ordering::Relaxed);
        });
        assert!(c.len() <= 64);
    }
}
