//! Write-ahead log: length+CRC framed records in a single append-only
//! file.
//!
//! The stream subsystem journals every ingested update batch here
//! *before* applying it to the engine, so a crash can lose at most the
//! batch whose frame never finished reaching the disk. Each record is
//! framed as
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Recovery ([`Wal::open`]) scans frames from the start and stops at the
//! first incomplete or CRC-mismatching frame — the classic torn-tail
//! rule — then truncates the file back to the durable prefix so new
//! appends never interleave with garbage. Everything before the tear is
//! returned to the caller for replay.
//!
//! Payload contents are opaque bytes; callers encode them with
//! [`codec::ByteWriter`](crate::codec::ByteWriter).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use cij_obs::{CounterCell, MetricsRegistry};

use crate::{StorageError, StorageResult};

/// Upper bound on a single record's payload. A length field above this
/// is treated as corruption rather than honoured with a huge allocation.
pub const MAX_RECORD_LEN: usize = 1 << 24; // 16 MiB

const FRAME_HEADER: usize = 8; // len + crc

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 checksum of `bytes` (IEEE polynomial, as in zlib/PNG).
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What [`Wal::open`] found in an existing log file.
#[derive(Debug)]
pub struct WalRecovery {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the durable prefix (the file was truncated to
    /// this length).
    pub durable_len: u64,
    /// Whether a torn or corrupt tail was found (and cut off).
    pub tail_corrupt: bool,
}

/// Shared, thread-safe WAL activity counters, built on `cij-obs`
/// [`CounterCell`]s so they can be registered as a live view in a
/// [`MetricsRegistry`] (same pattern as [`IoStats`](crate::IoStats)).
#[derive(Debug, Default)]
pub struct WalStats {
    appends: Arc<CounterCell>,
    appended_bytes: Arc<CounterCell>,
    syncs: Arc<CounterCell>,
}

impl WalStats {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records appended this log's lifetime.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends.get()
    }

    /// Payload + frame bytes appended this log's lifetime.
    #[must_use]
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes.get()
    }

    /// `sync` calls this log's lifetime.
    #[must_use]
    pub fn syncs(&self) -> u64 {
        self.syncs.get()
    }

    /// Registers every counter in `registry` under `prefix` (e.g.
    /// `stream.wal` → `stream.wal.appends`, …), sharing this struct's
    /// atomics. No-op when the registry is disabled.
    pub fn register_in(&self, registry: &MetricsRegistry, prefix: &str) {
        for (name, cell) in [
            ("appends", &self.appends),
            ("appended_bytes", &self.appended_bytes),
            ("syncs", &self.syncs),
        ] {
            registry.register_counter_cell(&format!("{prefix}.{name}"), Arc::clone(cell));
        }
    }
}

/// An open write-ahead log, positioned for appending.
pub struct Wal {
    file: File,
    len: u64,
    stats: Arc<WalStats>,
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Corrupt(format!("WAL I/O error: {e}"))
}

impl Wal {
    /// Creates a fresh (truncated) log at `path`.
    pub fn create(path: &Path) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        Ok(Self {
            file,
            len: 0,
            stats: Arc::new(WalStats::new()),
        })
    }

    /// Opens (or creates) the log at `path`, scanning it for intact
    /// records and truncating any torn tail. The returned recovery holds
    /// every durable record for replay.
    pub fn open(path: &Path) -> StorageResult<(Self, WalRecovery)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io_err)?;

        let mut records = Vec::new();
        let mut pos = 0usize;
        let mut tail_corrupt = false;
        while bytes.len() - pos >= FRAME_HEADER {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN || bytes.len() - pos - FRAME_HEADER < len {
                tail_corrupt = true;
                break;
            }
            let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
            if crc32(payload) != crc {
                tail_corrupt = true;
                break;
            }
            records.push(payload.to_vec());
            pos += FRAME_HEADER + len;
        }
        // Trailing bytes shorter than a header are also a torn tail.
        if !tail_corrupt && pos < bytes.len() {
            tail_corrupt = true;
        }

        let durable_len = pos as u64;
        if durable_len < bytes.len() as u64 {
            file.set_len(durable_len).map_err(io_err)?;
        }
        file.seek(SeekFrom::Start(durable_len)).map_err(io_err)?;
        Ok((
            Self {
                file,
                len: durable_len,
                stats: Arc::new(WalStats::new()),
            },
            WalRecovery {
                records,
                durable_len,
                tail_corrupt,
            },
        ))
    }

    /// Appends one record and returns the file length after the append.
    /// The record is durable (up to OS buffering; see [`Wal::sync`])
    /// once this returns.
    pub fn append(&mut self, payload: &[u8]) -> StorageResult<u64> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(StorageError::Corrupt(format!(
                "WAL record of {} bytes exceeds MAX_RECORD_LEN",
                payload.len()
            )));
        }
        let len = u32::try_from(payload.len()).expect("bounded by MAX_RECORD_LEN");
        self.file.write_all(&len.to_le_bytes()).map_err(io_err)?;
        self.file
            .write_all(&crc32(payload).to_le_bytes())
            .map_err(io_err)?;
        self.file.write_all(payload).map_err(io_err)?;
        self.len += (FRAME_HEADER + payload.len()) as u64;
        self.stats.appends.inc();
        self.stats
            .appended_bytes
            .add((FRAME_HEADER + payload.len()) as u64);
        Ok(self.len)
    }

    /// Flushes appended records to the OS.
    pub fn sync(&self) -> StorageResult<()> {
        self.stats.syncs.inc();
        self.file.sync_data().map_err(io_err)
    }

    /// Activity counters for this log (appends, bytes, syncs). The
    /// returned handle stays live across appends.
    #[must_use]
    pub fn stats(&self) -> Arc<WalStats> {
        Arc::clone(&self.stats)
    }

    /// Current file length in bytes.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempFile(PathBuf);
    impl TempFile {
        fn new(name: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("cij-wal-{}-{}", std::process::id(), name));
            let _ = std::fs::remove_file(&p);
            Self(p)
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_recover_roundtrip() {
        let tmp = TempFile::new("roundtrip");
        {
            let mut wal = Wal::create(&tmp.0).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"").unwrap(); // empty payloads are legal
            wal.append(&[7u8; 1000]).unwrap();
            wal.sync().unwrap();
        }
        let (wal, rec) = Wal::open(&tmp.0).unwrap();
        assert!(!rec.tail_corrupt);
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[0], b"alpha");
        assert!(rec.records[1].is_empty());
        assert_eq!(rec.records[2], vec![7u8; 1000]);
        assert_eq!(wal.len(), rec.durable_len);
    }

    #[test]
    fn torn_payload_is_cut_back_to_last_record() {
        let tmp = TempFile::new("torn-payload");
        let keep;
        {
            let mut wal = Wal::create(&tmp.0).unwrap();
            keep = wal.append(b"first").unwrap();
            wal.append(b"second-record-payload").unwrap();
        }
        // Chop mid-way through the second record's payload.
        let f = OpenOptions::new().write(true).open(&tmp.0).unwrap();
        f.set_len(keep + FRAME_HEADER as u64 + 3).unwrap();
        drop(f);

        let (mut wal, rec) = Wal::open(&tmp.0).unwrap();
        assert!(rec.tail_corrupt);
        assert_eq!(rec.records, vec![b"first".to_vec()]);
        assert_eq!(rec.durable_len, keep);
        assert_eq!(std::fs::metadata(&tmp.0).unwrap().len(), keep);
        // Appending after recovery continues cleanly.
        wal.append(b"third").unwrap();
        drop(wal);
        let (_, rec) = Wal::open(&tmp.0).unwrap();
        assert!(!rec.tail_corrupt);
        assert_eq!(rec.records, vec![b"first".to_vec(), b"third".to_vec()]);
    }

    #[test]
    fn torn_header_and_flipped_bit_are_detected() {
        let tmp = TempFile::new("torn-header");
        let keep;
        {
            let mut wal = Wal::create(&tmp.0).unwrap();
            keep = wal.append(b"solid").unwrap();
            wal.append(b"doomed").unwrap();
        }
        // Case 1: only 5 bytes of the second frame's header survive.
        let f = OpenOptions::new().write(true).open(&tmp.0).unwrap();
        f.set_len(keep + 5).unwrap();
        drop(f);
        let (_, rec) = Wal::open(&tmp.0).unwrap();
        assert!(rec.tail_corrupt);
        assert_eq!(rec.records, vec![b"solid".to_vec()]);

        // Case 2: full frame present but a payload bit flipped.
        {
            let mut wal = Wal::open(&tmp.0).unwrap().0;
            wal.append(b"doomed").unwrap();
        }
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&tmp.0, &bytes).unwrap();
        let (_, rec) = Wal::open(&tmp.0).unwrap();
        assert!(rec.tail_corrupt);
        assert_eq!(rec.records, vec![b"solid".to_vec()]);
        assert_eq!(rec.durable_len, keep);
    }

    #[test]
    fn oversized_length_field_is_corruption_not_allocation() {
        let tmp = TempFile::new("oversize");
        {
            let mut wal = Wal::create(&tmp.0).unwrap();
            wal.append(b"good").unwrap();
        }
        let mut bytes = std::fs::read(&tmp.0).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd len
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        std::fs::write(&tmp.0, &bytes).unwrap();
        let (_, rec) = Wal::open(&tmp.0).unwrap();
        assert!(rec.tail_corrupt);
        assert_eq!(rec.records, vec![b"good".to_vec()]);
    }

    #[test]
    fn opening_a_missing_file_creates_an_empty_log() {
        let tmp = TempFile::new("fresh");
        let (wal, rec) = Wal::open(&tmp.0).unwrap();
        assert!(wal.is_empty());
        assert!(rec.records.is_empty());
        assert!(!rec.tail_corrupt);
    }
}
