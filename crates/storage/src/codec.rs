//! Bounds-checked little-endian page codec.
//!
//! Tree nodes serialize into 4 KB pages through [`PageWriter`] and come
//! back through [`PageReader`]. Both are plain cursors over the page
//! bytes; every access is bounds-checked and surfaces
//! [`StorageError::PageOverflow`] instead of panicking, so a corrupt page
//! turns into an error the index layer can report.
//!
//! Variable-length records (the [`wal`](crate::wal) frames, the stream
//! subsystem's journal payloads) use the growable [`ByteWriter`] /
//! bounds-checked [`ByteReader`] pair instead — the same little-endian
//! wire format without the fixed page size.

use crate::{StorageError, StorageResult, PAGE_SIZE};

/// Sequential little-endian writer over a page buffer.
pub struct PageWriter<'a> {
    buf: &'a mut [u8; PAGE_SIZE],
    pos: usize,
}

impl<'a> PageWriter<'a> {
    /// Starts writing at offset 0.
    pub fn new(buf: &'a mut [u8; PAGE_SIZE]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining in the page.
    #[must_use]
    pub fn remaining(&self) -> usize {
        PAGE_SIZE - self.pos
    }

    fn claim(&mut self, n: usize) -> StorageResult<&mut [u8]> {
        // `checked_add`: a hostile `n` near `usize::MAX` would wrap the
        // naive `pos + n` in release builds and bypass the bounds check.
        let end = match self.pos.checked_add(n) {
            Some(end) if end <= PAGE_SIZE => end,
            _ => {
                return Err(StorageError::PageOverflow {
                    offset: self.pos,
                    requested: n,
                });
            }
        };
        let slice = &mut self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) -> StorageResult<()> {
        self.claim(1)?[0] = v;
        Ok(())
    }

    /// Writes a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) -> StorageResult<()> {
        self.claim(2)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) -> StorageResult<()> {
        self.claim(4)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) -> StorageResult<()> {
        self.claim(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes an `f64` (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) -> StorageResult<()> {
        self.claim(8)?.copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) -> StorageResult<()> {
        self.claim(bytes.len())?.copy_from_slice(bytes);
        Ok(())
    }
}

/// Sequential little-endian reader over a page buffer.
pub struct PageReader<'a> {
    buf: &'a [u8; PAGE_SIZE],
    pos: usize,
}

impl<'a> PageReader<'a> {
    /// Starts reading at offset 0.
    pub fn new(buf: &'a [u8; PAGE_SIZE]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&[u8]> {
        // `checked_add`: see `PageWriter::claim` — `pos + n` must not wrap.
        let end = match self.pos.checked_add(n) {
            Some(end) if end <= PAGE_SIZE => end,
            _ => {
                return Err(StorageError::PageOverflow {
                    offset: self.pos,
                    requested: n,
                });
            }
        };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> StorageResult<&[u8]> {
        self.take(n)
    }
}

/// Growable little-endian writer for variable-length records.
///
/// Unlike [`PageWriter`] it never overflows — the buffer grows on
/// demand — so every `put_*` is infallible.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Starts an empty record.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts an empty record with `cap` bytes preallocated.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns the record bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` (IEEE-754 bits, little-endian).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian reader over a variable-length record.
///
/// Overruns surface as [`StorageError::PageOverflow`] (the offsets in the
/// error are record offsets here, not page offsets), so a truncated or
/// corrupt record decodes into an error instead of a panic.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at offset 0.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current offset.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        // `checked_add`: see `PageWriter::claim` — `pos + n` must not wrap.
        let end = match self.pos.checked_add(n) {
            Some(end) if end <= self.buf.len() => end,
            _ => {
                return Err(StorageError::PageOverflow {
                    offset: self.pos,
                    requested: n,
                });
            }
        };
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut page = crate::zeroed_page();
        {
            let mut w = PageWriter::new(&mut page);
            w.put_u8(0xFE).unwrap();
            w.put_u16(0xBEEF).unwrap();
            w.put_u32(0xDEAD_BEEF).unwrap();
            w.put_u64(0x0123_4567_89AB_CDEF).unwrap();
            w.put_f64(-1234.5678e9).unwrap();
            w.put_f64(f64::INFINITY).unwrap();
            w.put_bytes(b"hello").unwrap();
            assert_eq!(w.position(), 1 + 2 + 4 + 8 + 8 + 8 + 5);
        }
        let mut r = PageReader::new(&page);
        assert_eq!(r.get_u8().unwrap(), 0xFE);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), -1234.5678e9);
        assert_eq!(r.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(r.get_bytes(5).unwrap(), b"hello");
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let mut page = crate::zeroed_page();
        PageWriter::new(&mut page).put_f64(f64::NAN).unwrap();
        assert!(PageReader::new(&page).get_f64().unwrap().is_nan());
    }

    #[test]
    fn write_overflow_is_an_error() {
        let mut page = crate::zeroed_page();
        let mut w = PageWriter::new(&mut page);
        w.put_bytes(&vec![0u8; PAGE_SIZE - 4]).unwrap();
        assert_eq!(w.remaining(), 4);
        assert!(w.put_u32(1).is_ok());
        assert_eq!(
            w.put_u8(1),
            Err(StorageError::PageOverflow {
                offset: PAGE_SIZE,
                requested: 1
            })
        );
    }

    #[test]
    fn read_overflow_is_an_error() {
        let page = crate::zeroed_page();
        let mut r = PageReader::new(&page);
        r.get_bytes(PAGE_SIZE).unwrap();
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn partial_write_does_not_advance() {
        let mut page = crate::zeroed_page();
        let mut w = PageWriter::new(&mut page);
        w.put_bytes(&vec![0u8; PAGE_SIZE - 2]).unwrap();
        let pos = w.position();
        assert!(w.put_u32(7).is_err());
        assert_eq!(w.position(), pos, "failed write must not consume space");
        assert!(w.put_u16(7).is_ok());
    }

    /// Regression: `pos + n` used to be computed unchecked, so a length
    /// near `usize::MAX` wrapped in release builds and sailed past the
    /// bounds check straight into a slice panic (or worse). All three
    /// cursors must reject it as a clean `PageOverflow` and stay usable.
    #[test]
    fn huge_length_does_not_wrap_bounds_check() {
        let mut page = crate::zeroed_page();
        let mut w = PageWriter::new(&mut page);
        w.put_u32(7).unwrap();
        assert_eq!(
            w.claim(usize::MAX).unwrap_err(),
            StorageError::PageOverflow {
                offset: 4,
                requested: usize::MAX
            }
        );
        assert_eq!(w.position(), 4, "failed write must not consume space");
        assert!(w.put_u32(8).is_ok());

        let mut r = PageReader::new(&page);
        r.get_u32().unwrap();
        assert_eq!(
            r.get_bytes(usize::MAX),
            Err(StorageError::PageOverflow {
                offset: 4,
                requested: usize::MAX
            })
        );
        assert_eq!(r.position(), 4, "failed read must not advance");
        assert_eq!(r.get_u32().unwrap(), 8);

        let bytes = [1u8, 2, 3, 4];
        let mut br = ByteReader::new(&bytes);
        br.get_u16().unwrap();
        assert_eq!(
            br.get_bytes(usize::MAX),
            Err(StorageError::PageOverflow {
                offset: 2,
                requested: usize::MAX
            })
        );
        assert_eq!(br.position(), 2);
        assert!(br.get_u16().is_ok());
    }

    #[test]
    fn byte_cursor_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xFE);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(f64::NEG_INFINITY);
        w.put_bytes(b"stream");
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8 + 8 + 6);

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xFE);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.get_bytes(6).unwrap(), b"stream");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn byte_reader_overrun_is_an_error() {
        let mut w = ByteWriter::with_capacity(4);
        w.put_u32(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u16().unwrap(), 7);
        assert_eq!(
            r.get_u32(),
            Err(StorageError::PageOverflow {
                offset: 2,
                requested: 4
            })
        );
        // A failed read does not advance.
        assert_eq!(r.position(), 2);
        assert!(r.get_u16().is_ok());
    }
}
