//! The LRU buffer pool: a fixed number of page frames in front of a
//! [`PageStore`].
//!
//! Semantics follow the paper's experimental setup: an LRU buffer of 50
//! pages; a read that hits the buffer is free (logical only), a miss
//! costs one physical read, and evicting a dirty frame costs one physical
//! write. The pool is shared by every index on the same simulated disk,
//! exactly as one buffer pool would be shared on the real machine.
//!
//! # Sharding
//!
//! The pool can be **lock-striped** into `shards` independent segments,
//! each guarding its own frames and LRU list behind its own mutex. Pages
//! map to segments by `page_id % shards`, so concurrent traversals over
//! disjoint pages proceed without contention. With `shards = 1` (the
//! default and the paper-faithful configuration) there is a single
//! global LRU and behaviour — including every I/O count — is identical
//! to the unsharded pool. I/O accounting is unaffected by sharding:
//! counters live in [`IoStats`] atomics on the store, so totals stay
//! exact under any thread interleaving.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::lru::{LruLink, LruList};
use crate::{IoStats, PageBuf, PageId, PageStore, StorageResult, DEFAULT_POOL_PAGES, PAGE_SIZE};

/// Buffer pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct BufferPoolConfig {
    /// Total number of page frames across all shards (paper default: 50).
    pub capacity: usize,
    /// Number of lock-striped segments (default 1 = one global LRU, the
    /// paper-faithful mode).
    pub shards: usize,
}

impl Default for BufferPoolConfig {
    fn default() -> Self {
        Self {
            capacity: DEFAULT_POOL_PAGES,
            shards: 1,
        }
    }
}

impl BufferPoolConfig {
    /// An unsharded pool with `capacity` frames — the paper's setup.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            shards: 1,
        }
    }

    /// A pool with `capacity` frames striped across `shards` segments.
    #[must_use]
    pub fn sharded(capacity: usize, shards: usize) -> Self {
        Self { capacity, shards }
    }
}

struct Frame {
    page_id: PageId,
    data: PageBuf,
    dirty: bool,
}

struct PoolInner {
    /// Frame budget of this shard alone.
    capacity: usize,
    frames: Vec<Frame>,
    /// LRU link fields, parallel to `frames` (kept separate so the list
    /// can mutate links while frame data is borrowed elsewhere).
    links: Vec<LruLink>,
    free_frames: Vec<usize>,
    map: HashMap<PageId, usize>,
    lru: LruList,
}

impl PoolInner {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            frames: Vec::with_capacity(capacity),
            links: Vec::with_capacity(capacity),
            free_frames: Vec::new(),
            map: HashMap::with_capacity(capacity * 2),
            lru: LruList::new(),
        }
    }
}

/// A shared LRU buffer pool, optionally lock-striped (see module docs).
/// Cheap to clone (`Arc` inside); clones see the same frames and
/// counters.
#[derive(Clone)]
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    shards: Arc<[Mutex<PoolInner>]>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool over `store` with the given configuration.
    ///
    /// # Panics
    /// Panics when `config.capacity == 0`, `config.shards == 0`, or there
    /// are more shards than frames (each shard needs at least one frame).
    #[must_use]
    pub fn new(store: Arc<dyn PageStore>, config: BufferPoolConfig) -> Self {
        assert!(config.capacity > 0, "buffer pool needs at least one frame");
        assert!(config.shards > 0, "buffer pool needs at least one shard");
        assert!(
            config.shards <= config.capacity,
            "buffer pool needs at least one frame per shard ({} shards, {} frames)",
            config.shards,
            config.capacity
        );
        // Split the frame budget as evenly as possible: the first
        // `capacity % shards` shards get one extra frame.
        let base = config.capacity / config.shards;
        let extra = config.capacity % config.shards;
        let shards: Arc<[Mutex<PoolInner>]> = (0..config.shards)
            .map(|i| Mutex::new(PoolInner::with_capacity(base + usize::from(i < extra))))
            .collect();
        Self {
            store,
            shards,
            capacity: config.capacity,
        }
    }

    /// Creates a pool with the paper's default 50-page capacity.
    #[must_use]
    pub fn with_default_capacity(store: Arc<dyn PageStore>) -> Self {
        Self::new(store, BufferPoolConfig::default())
    }

    /// Total number of page frames across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock-striped segments.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The I/O counters of the underlying store.
    #[must_use]
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(self.store.stats())
    }

    /// The shard responsible for `id`.
    fn shard(&self, id: PageId) -> &Mutex<PoolInner> {
        &self.shards[id.0 as usize % self.shards.len()]
    }

    /// Allocates a fresh page on the store (not yet buffered).
    #[must_use]
    pub fn allocate(&self) -> PageId {
        self.store.allocate()
    }

    /// Frees a page, dropping any buffered copy without writing it back.
    pub fn free(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.shard(id).lock();
        if let Some(idx) = inner.map.remove(&id) {
            let PoolInner { lru, links, .. } = &mut *inner;
            lru.unlink(idx, links);
            inner.free_frames.push(idx);
        }
        drop(inner);
        self.store.free(id)
    }

    /// Reads a page through the buffer and hands a view of its bytes to
    /// `f`. Counts one logical read always; one physical read iff the
    /// page was not resident.
    pub fn read<R>(&self, id: PageId, f: impl FnOnce(&[u8; PAGE_SIZE]) -> R) -> StorageResult<R> {
        self.store.stats().record_logical_read();
        let mut inner = self.shard(id).lock();
        let idx = self.fault_in(&mut inner, id)?;
        Ok(f(&inner.frames[idx].data))
    }

    /// Writes a page through the buffer (write-back): the frame is
    /// updated and marked dirty; the store sees it on eviction or flush.
    /// Counts one logical write. No physical read is needed because
    /// `data` overwrites the whole page.
    pub fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        self.store.stats().record_logical_write();
        let mut inner = self.shard(id).lock();
        let idx = match inner.map.get(&id) {
            Some(&idx) => {
                let PoolInner { lru, links, .. } = &mut *inner;
                lru.touch(idx, links);
                idx
            }
            None => {
                let idx = self.take_frame(&mut inner)?;
                inner.frames[idx].page_id = id;
                inner.map.insert(id, idx);
                let PoolInner { lru, links, .. } = &mut *inner;
                lru.push_front(idx, links);
                idx
            }
        };
        inner.frames[idx].data.copy_from_slice(&data[..]);
        inner.frames[idx].dirty = true;
        Ok(())
    }

    /// Writes every dirty resident frame back to the store (frames stay
    /// resident and clean).
    pub fn flush(&self) -> StorageResult<()> {
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            for idx in 0..inner.frames.len() {
                let id = inner.frames[idx].page_id;
                if inner.frames[idx].dirty && inner.map.contains_key(&id) {
                    self.store.write(id, &inner.frames[idx].data)?;
                    inner.frames[idx].dirty = false;
                }
            }
        }
        Ok(())
    }

    /// Flushes, then drops every frame. Used between experiment phases to
    /// cold-start the buffer, mirroring the paper's fresh-cache
    /// measurements.
    pub fn clear(&self) -> StorageResult<()> {
        self.flush()?;
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            inner.map.clear();
            loop {
                let PoolInner { lru, links, .. } = &mut *inner;
                if lru.pop_lru(links).is_none() {
                    break;
                }
            }
            let n = inner.frames.len();
            inner.free_frames = (0..n).collect();
        }
        Ok(())
    }

    /// Number of currently resident pages across all shards.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                let inner = shard.lock();
                debug_assert_eq!(
                    inner.lru.len(),
                    inner.map.len(),
                    "LRU list tracks residency"
                );
                debug_assert!(!inner.lru.is_empty() || inner.map.is_empty());
                inner.map.len()
            })
            .sum()
    }

    /// Resident page count per shard, in shard-index order. Each entry
    /// is bounded by that shard's frame budget: `capacity / shards`,
    /// with the first `capacity % shards` shards holding one extra
    /// frame.
    #[must_use]
    pub fn shard_residents(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|shard| shard.lock().map.len())
            .collect()
    }

    /// Ensures `id` is resident; returns its frame index. Updates LRU.
    fn fault_in(&self, inner: &mut PoolInner, id: PageId) -> StorageResult<usize> {
        if let Some(&idx) = inner.map.get(&id) {
            let PoolInner { lru, links, .. } = &mut *inner;
            lru.touch(idx, links);
            return Ok(idx);
        }
        let idx = self.take_frame(inner)?;
        self.store.read(id, &mut inner.frames[idx].data)?;
        inner.frames[idx].page_id = id;
        inner.frames[idx].dirty = false;
        inner.map.insert(id, idx);
        let PoolInner { lru, links, .. } = &mut *inner;
        lru.push_front(idx, links);
        Ok(idx)
    }

    /// Obtains an unused frame index in the shard, evicting its LRU
    /// resident page (writing it back if dirty) when the shard is full.
    fn take_frame(&self, inner: &mut PoolInner) -> StorageResult<usize> {
        if let Some(idx) = inner.free_frames.pop() {
            return Ok(idx);
        }
        if inner.frames.len() < inner.capacity {
            inner.frames.push(Frame {
                page_id: PageId::INVALID,
                data: crate::zeroed_page(),
                dirty: false,
            });
            inner.links.push(LruLink::default());
            return Ok(inner.frames.len() - 1);
        }
        let idx = {
            let PoolInner { lru, links, .. } = &mut *inner;
            lru.pop_lru(links).expect("full shard has an LRU victim")
        };
        let victim = inner.frames[idx].page_id;
        if inner.frames[idx].dirty {
            self.store.write(victim, &inner.frames[idx].data)?;
            inner.frames[idx].dirty = false;
        }
        inner.map.remove(&victim);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(capacity),
        )
    }

    fn sharded_pool(capacity: usize, shards: usize) -> BufferPool {
        BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::sharded(capacity, shards),
        )
    }

    fn page_with(byte: u8) -> PageBuf {
        let mut p = crate::zeroed_page();
        p[0] = byte;
        p
    }

    #[test]
    fn read_hit_costs_no_physical_io() {
        let pool = pool(4);
        let id = pool.allocate();
        pool.write(id, &page_with(7)).unwrap();
        let before = pool.stats().snapshot();
        for _ in 0..5 {
            let b = pool.read(id, |p| p[0]).unwrap();
            assert_eq!(b, 7);
        }
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_reads, 0, "hits must be free");
        assert_eq!(delta.logical_reads, 5);
    }

    #[test]
    fn miss_costs_one_physical_read() {
        let pool = pool(2);
        let id = pool.allocate();
        pool.write(id, &page_with(1)).unwrap();
        pool.clear().unwrap();
        let before = pool.stats().snapshot();
        pool.read(id, |_| ()).unwrap();
        pool.read(id, |_| ()).unwrap();
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_reads, 1);
    }

    #[test]
    fn eviction_follows_lru_order() {
        let pool = pool(2);
        let ids: Vec<_> = (0..3).map(|_| pool.allocate()).collect();
        // Seed store contents directly through the pool then clear.
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &page_with(i as u8)).unwrap();
        }
        pool.clear().unwrap();

        // Read 0 then 1 (pool holds {0, 1}); touching 0 makes 1 the LRU.
        pool.read(ids[0], |_| ()).unwrap();
        pool.read(ids[1], |_| ()).unwrap();
        pool.read(ids[0], |_| ()).unwrap();
        // Faulting 2 evicts 1.
        pool.read(ids[2], |_| ()).unwrap();
        let before = pool.stats().snapshot();
        pool.read(ids[0], |_| ()).unwrap(); // still resident → hit
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_reads, 0);
        let before = pool.stats().snapshot();
        pool.read(ids[1], |_| ()).unwrap(); // was evicted → miss
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_reads, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let pool = pool(1);
        let a = pool.allocate();
        let b = pool.allocate();
        pool.write(a, &page_with(0xAA)).unwrap();
        let before = pool.stats().snapshot();
        // Faulting b evicts dirty a → one physical write.
        pool.read(b, |_| ()).unwrap();
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_writes, 1);
        // a's data survived the round trip.
        let byte = pool.read(a, |p| p[0]).unwrap();
        assert_eq!(byte, 0xAA);
    }

    #[test]
    fn clean_eviction_writes_nothing() {
        let pool = pool(1);
        let a = pool.allocate();
        let b = pool.allocate();
        pool.write(a, &page_with(1)).unwrap();
        pool.flush().unwrap(); // a resident + clean
        let before = pool.stats().snapshot();
        pool.read(b, |_| ()).unwrap(); // evicts clean a
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_writes, 0);
    }

    #[test]
    fn write_back_coalesces_physical_writes() {
        let pool = pool(4);
        let id = pool.allocate();
        let before = pool.stats().snapshot();
        for i in 0..10 {
            pool.write(id, &page_with(i)).unwrap();
        }
        pool.flush().unwrap();
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.logical_writes, 10);
        assert_eq!(delta.physical_writes, 1, "ten logical writes, one flush");
    }

    #[test]
    fn freeing_resident_page_discards_frame() {
        let pool = pool(2);
        let id = pool.allocate();
        pool.write(id, &page_with(9)).unwrap();
        assert_eq!(pool.resident(), 1);
        pool.free(id).unwrap();
        assert_eq!(pool.resident(), 0);
        assert!(pool.read(id, |_| ()).is_err());
    }

    #[test]
    fn shared_clones_see_same_frames() {
        let pool = pool(2);
        let clone = pool.clone();
        let id = pool.allocate();
        pool.write(id, &page_with(5)).unwrap();
        let byte = clone.read(id, |p| p[0]).unwrap();
        assert_eq!(byte, 5);
        assert_eq!(clone.resident(), pool.resident());
    }

    #[test]
    fn capacity_is_respected() {
        let pool = pool(3);
        let ids: Vec<_> = (0..10).map(|_| pool.allocate()).collect();
        for &id in &ids {
            pool.write(id, &page_with(0)).unwrap();
        }
        assert!(pool.resident() <= 3);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = pool(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = sharded_pool(4, 0);
    }

    #[test]
    #[should_panic(expected = "one frame per shard")]
    fn more_shards_than_frames_panics() {
        let _ = sharded_pool(2, 4);
    }

    #[test]
    fn sharded_pool_roundtrips_and_respects_capacity() {
        let pool = sharded_pool(5, 2); // shard budgets 3 + 2
        assert_eq!(pool.capacity(), 5);
        assert_eq!(pool.shard_count(), 2);
        let ids: Vec<_> = (0..16).map(|_| pool.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.write(id, &page_with(i as u8)).unwrap();
        }
        assert!(pool.resident() <= 5);
        pool.clear().unwrap();
        for (i, &id) in ids.iter().enumerate() {
            let b = pool.read(id, |p| p[0]).unwrap();
            assert_eq!(b, i as u8, "page {i} content survived sharded eviction");
        }
    }

    #[test]
    fn sharded_hits_are_free_like_unsharded() {
        let pool = sharded_pool(8, 4);
        let id = pool.allocate();
        pool.write(id, &page_with(3)).unwrap();
        let before = pool.stats().snapshot();
        for _ in 0..4 {
            assert_eq!(pool.read(id, |p| p[0]).unwrap(), 3);
        }
        let delta = pool.stats().snapshot() - before;
        assert_eq!(delta.physical_reads, 0);
        assert_eq!(delta.logical_reads, 4);
    }

    #[test]
    fn shard_one_matches_unsharded_io_exactly() {
        // The same operation sequence against shards=1 and the legacy
        // default must produce identical I/O counters.
        let run = |pool: &BufferPool| {
            let ids: Vec<_> = (0..12).map(|_| pool.allocate()).collect();
            for (i, &id) in ids.iter().enumerate() {
                pool.write(id, &page_with(i as u8)).unwrap();
            }
            for &id in ids.iter().rev() {
                pool.read(id, |_| ()).unwrap();
            }
            pool.flush().unwrap();
            for &id in &ids {
                pool.read(id, |_| ()).unwrap();
            }
            pool.stats().snapshot()
        };
        let a = run(&pool(4));
        let b = run(&BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig {
                capacity: 4,
                shards: 1,
            },
        ));
        assert_eq!(a.physical_reads, b.physical_reads);
        assert_eq!(a.physical_writes, b.physical_writes);
        assert_eq!(a.logical_reads, b.logical_reads);
        assert_eq!(a.logical_writes, b.logical_writes);
    }
}
