//! An O(1) intrusive LRU list over slab indices.
//!
//! The buffer pool stores frames in a slab (`Vec`) and keeps recency as a
//! doubly-linked list threaded through index fields — no per-access
//! allocation, no timestamp scans.

/// Sentinel for "no link".
const NIL: usize = usize::MAX;

/// Per-entry link fields. The owner embeds one of these per slab slot.
#[derive(Debug, Clone, Copy)]
pub struct LruLink {
    prev: usize,
    next: usize,
}

impl Default for LruLink {
    fn default() -> Self {
        Self {
            prev: NIL,
            next: NIL,
        }
    }
}

/// Doubly-linked recency list: front = most recently used, back = least.
///
/// The list stores slab indices; the caller owns the slab and passes a
/// mutable view of the link fields into every operation. Keeping the
/// links outside the list makes the structure borrow-checker friendly
/// without unsafe code.
#[derive(Debug)]
pub struct LruList {
    head: usize,
    tail: usize,
    len: usize,
}

impl Default for LruList {
    fn default() -> Self {
        Self::new()
    }
}

impl LruList {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The least-recently-used index, if any.
    #[must_use]
    pub fn lru(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }

    /// Pushes `idx` to the front (most recently used).
    ///
    /// `idx` must not currently be linked.
    pub fn push_front(&mut self, idx: usize, links: &mut [LruLink]) {
        debug_assert!(links[idx].prev == NIL && links[idx].next == NIL);
        links[idx].next = self.head;
        links[idx].prev = NIL;
        if self.head != NIL {
            links[self.head].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
        self.len += 1;
    }

    /// Unlinks `idx` from wherever it is.
    ///
    /// `idx` must currently be linked.
    pub fn unlink(&mut self, idx: usize, links: &mut [LruLink]) {
        let LruLink { prev, next } = links[idx];
        if prev != NIL {
            links[prev].next = next;
        } else {
            debug_assert_eq!(self.head, idx);
            self.head = next;
        }
        if next != NIL {
            links[next].prev = prev;
        } else {
            debug_assert_eq!(self.tail, idx);
            self.tail = prev;
        }
        links[idx] = LruLink::default();
        self.len -= 1;
    }

    /// Moves an already-linked `idx` to the front.
    pub fn touch(&mut self, idx: usize, links: &mut [LruLink]) {
        if self.head == idx {
            return;
        }
        self.unlink(idx, links);
        self.push_front(idx, links);
    }

    /// Removes and returns the least-recently-used index.
    pub fn pop_lru(&mut self, links: &mut [LruLink]) -> Option<usize> {
        let idx = self.lru()?;
        self.unlink(idx, links);
        Some(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize) -> (LruList, Vec<LruLink>) {
        (LruList::new(), vec![LruLink::default(); n])
    }

    #[test]
    fn push_and_pop_order() {
        let (mut l, mut links) = setup(4);
        for i in 0..4 {
            l.push_front(i, &mut links);
        }
        // 0 was pushed first ⇒ least recently used.
        assert_eq!(l.pop_lru(&mut links), Some(0));
        assert_eq!(l.pop_lru(&mut links), Some(1));
        assert_eq!(l.pop_lru(&mut links), Some(2));
        assert_eq!(l.pop_lru(&mut links), Some(3));
        assert_eq!(l.pop_lru(&mut links), None);
        assert!(l.is_empty());
    }

    #[test]
    fn touch_promotes() {
        let (mut l, mut links) = setup(3);
        for i in 0..3 {
            l.push_front(i, &mut links);
        }
        l.touch(0, &mut links); // order now (front) 0, 2, 1 (back)
        assert_eq!(l.pop_lru(&mut links), Some(1));
        assert_eq!(l.pop_lru(&mut links), Some(2));
        assert_eq!(l.pop_lru(&mut links), Some(0));
    }

    #[test]
    fn touch_front_is_noop() {
        let (mut l, mut links) = setup(2);
        l.push_front(0, &mut links);
        l.push_front(1, &mut links);
        l.touch(1, &mut links);
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_lru(&mut links), Some(0));
    }

    #[test]
    fn unlink_middle() {
        let (mut l, mut links) = setup(3);
        for i in 0..3 {
            l.push_front(i, &mut links);
        }
        l.unlink(1, &mut links);
        assert_eq!(l.len(), 2);
        assert_eq!(l.pop_lru(&mut links), Some(0));
        assert_eq!(l.pop_lru(&mut links), Some(2));
    }

    #[test]
    fn unlink_single_element() {
        let (mut l, mut links) = setup(1);
        l.push_front(0, &mut links);
        l.unlink(0, &mut links);
        assert!(l.is_empty());
        assert_eq!(l.lru(), None);
        // Re-link after unlink works.
        l.push_front(0, &mut links);
        assert_eq!(l.lru(), Some(0));
    }

    #[test]
    fn random_workout_matches_reference() {
        use std::collections::VecDeque;
        let n = 16;
        let (mut l, mut links) = setup(n);
        let mut reference: VecDeque<usize> = VecDeque::new(); // front = MRU
        let mut rng = 0x12345678u64;
        let mut next = move || {
            // xorshift
            let mut x = rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            rng = x;
            x
        };
        for _ in 0..10_000 {
            let idx = (next() % n as u64) as usize;
            let linked = reference.contains(&idx);
            match next() % 3 {
                0 if !linked => {
                    l.push_front(idx, &mut links);
                    reference.push_front(idx);
                }
                1 if linked => {
                    l.touch(idx, &mut links);
                    reference.retain(|&x| x != idx);
                    reference.push_front(idx);
                }
                2 if linked => {
                    l.unlink(idx, &mut links);
                    reference.retain(|&x| x != idx);
                }
                _ => {}
            }
            assert_eq!(l.len(), reference.len());
            assert_eq!(l.lru(), reference.back().copied());
        }
    }
}
