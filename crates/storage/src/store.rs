//! The simulated disk: a flat page space with allocation and physical I/O
//! accounting.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::{IoStats, PageBuf, PageId, StorageError, StorageResult, PAGE_SIZE};

/// Abstraction over the physical page device.
///
/// Implementations count *physical* I/O on every read/write; the buffer
/// pool in front of a store is what turns logical accesses into (fewer)
/// physical ones.
pub trait PageStore: Send + Sync {
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> PageId;

    /// Releases a page; its id may be recycled by future allocations.
    fn free(&self, id: PageId) -> StorageResult<()>;

    /// Copies the page contents into `out`.
    fn read(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> StorageResult<()>;

    /// Overwrites the page contents with `data`.
    fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> StorageResult<()>;

    /// Number of live (allocated, not freed) pages.
    fn live_pages(&self) -> usize;

    /// The shared I/O counters for this device.
    fn stats(&self) -> &Arc<IoStats>;
}

/// An in-memory [`PageStore`].
///
/// Stands in for the disk of the paper's testbed: contents are held in
/// RAM, but every read/write is tallied, so "number of disk I/Os" — the
/// paper's hardware-independent metric — is reproduced exactly while the
/// experiments stay fast enough to sweep 100 K-object workloads.
pub struct InMemoryStore {
    inner: Mutex<StoreInner>,
    stats: Arc<IoStats>,
}

struct StoreInner {
    pages: Vec<Option<PageBuf>>,
    free_list: Vec<u32>,
}

impl InMemoryStore {
    /// Creates an empty store with fresh counters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_stats(Arc::new(IoStats::new()))
    }

    /// Creates an empty store sharing externally-owned counters (so two
    /// trees on the same simulated disk report into one ledger).
    #[must_use]
    pub fn with_stats(stats: Arc<IoStats>) -> Self {
        Self {
            inner: Mutex::new(StoreInner {
                pages: Vec::new(),
                free_list: Vec::new(),
            }),
            stats,
        }
    }
}

impl Default for InMemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore for InMemoryStore {
    fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        self.stats.record_alloc();
        if let Some(idx) = inner.free_list.pop() {
            inner.pages[idx as usize] = Some(crate::zeroed_page());
            PageId(idx)
        } else {
            inner.pages.push(Some(crate::zeroed_page()));
            PageId(u32::try_from(inner.pages.len() - 1).expect("page space < 2^32"))
        }
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let slot = inner
            .pages
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        if slot.take().is_none() {
            return Err(StorageError::PageNotFound(id));
        }
        inner.free_list.push(id.0);
        self.stats.record_free();
        Ok(())
    }

    fn read(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let inner = self.inner.lock();
        let page = inner
            .pages
            .get(id.0 as usize)
            .and_then(|p| p.as_ref())
            .ok_or(StorageError::PageNotFound(id))?;
        out.copy_from_slice(&page[..]);
        self.stats.record_physical_read();
        Ok(())
    }

    fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let page = inner
            .pages
            .get_mut(id.0 as usize)
            .and_then(|p| p.as_mut())
            .ok_or(StorageError::PageNotFound(id))?;
        page.copy_from_slice(&data[..]);
        self.stats.record_physical_write();
        Ok(())
    }

    fn live_pages(&self) -> usize {
        let inner = self.inner.lock();
        inner.pages.iter().filter(|p| p.is_some()).count()
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let store = InMemoryStore::new();
        let id = store.allocate();
        let mut page = crate::zeroed_page();
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        store.write(id, &page).unwrap();
        let mut out = crate::zeroed_page();
        store.read(id, &mut out).unwrap();
        assert_eq!(out[0], 0xAB);
        assert_eq!(out[PAGE_SIZE - 1], 0xCD);
    }

    #[test]
    fn fresh_pages_are_zeroed() {
        let store = InMemoryStore::new();
        let id = store.allocate();
        let mut out = crate::zeroed_page();
        out[7] = 99;
        store.read(id, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn free_then_access_fails() {
        let store = InMemoryStore::new();
        let id = store.allocate();
        store.free(id).unwrap();
        let mut out = crate::zeroed_page();
        assert_eq!(
            store.read(id, &mut out),
            Err(StorageError::PageNotFound(id))
        );
        assert_eq!(store.free(id), Err(StorageError::PageNotFound(id)));
    }

    #[test]
    fn freed_ids_are_recycled_zeroed() {
        let store = InMemoryStore::new();
        let a = store.allocate();
        let mut page = crate::zeroed_page();
        page[0] = 1;
        store.write(a, &page).unwrap();
        store.free(a).unwrap();
        let b = store.allocate();
        assert_eq!(a, b, "free list should recycle ids");
        let mut out = crate::zeroed_page();
        out[0] = 42;
        store.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0, "recycled page must be zeroed");
    }

    #[test]
    fn live_pages_counts() {
        let store = InMemoryStore::new();
        let a = store.allocate();
        let _b = store.allocate();
        assert_eq!(store.live_pages(), 2);
        store.free(a).unwrap();
        assert_eq!(store.live_pages(), 1);
    }

    #[test]
    fn physical_io_is_counted() {
        let store = InMemoryStore::new();
        let id = store.allocate();
        let page = crate::zeroed_page();
        store.write(id, &page).unwrap();
        let mut out = crate::zeroed_page();
        store.read(id, &mut out).unwrap();
        store.read(id, &mut out).unwrap();
        let snap = store.stats().snapshot();
        assert_eq!(snap.physical_writes, 1);
        assert_eq!(snap.physical_reads, 2);
        assert_eq!(snap.allocations, 1);
    }
}
