//! # cij-storage — disk simulation for the CIJ stack
//!
//! The paper's evaluation (§VI-A) assumes disk-resident indexes: 4 KB
//! pages behind an LRU buffer of 50 pages, with *number of disk I/Os* as
//! one of the two reported metrics. This crate reproduces that setup in
//! process:
//!
//! * [`PageId`] / [`PAGE_SIZE`] — fixed-size page addressing.
//! * [`PageStore`] / [`InMemoryStore`] — the "disk": a flat page space
//!   with physical read/write counters.
//! * [`BufferPool`] — a shared, thread-safe LRU buffer pool in front of a
//!   store; every index node access in `cij-tpr` goes through it, so the
//!   I/O numbers the benchmark harness reports follow the paper's
//!   methodology (buffer hits are free, misses cost a physical read,
//!   dirty evictions cost a physical write).
//! * [`IoStats`] — counters with snapshot/delta arithmetic for per-phase
//!   accounting (initial join vs. maintenance).
//! * [`DecodedCache`] — an optional sharded LRU of *decoded* page
//!   payloads above the pool (generation-stamped invalidation,
//!   [`CacheStats`] counters); `cij-tpr` uses it to skip node re-parsing
//!   on hot traversals.
//! * [`codec`] — bounds-checked little-endian cursors used to serialize
//!   tree nodes into pages and variable-length journal records.
//! * [`wal`] — a length+CRC framed write-ahead log with torn-tail
//!   recovery, the durability substrate of the `cij-stream` service.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
mod decoded;
mod error;
mod file_store;
mod lru;
mod pool;
mod stats;
mod store;
pub mod wal;

pub use decoded::DecodedCache;
pub use error::{StorageError, StorageResult};
pub use file_store::FileStore;
pub use pool::{BufferPool, BufferPoolConfig};
pub use stats::{CacheSnapshot, CacheStats, IoSnapshot, IoStats};
pub use store::{InMemoryStore, PageStore};
pub use wal::{Wal, WalRecovery, WalStats};

/// Size of a disk page in bytes (paper §VI-A: "the disk page size is 4K
/// bytes").
pub const PAGE_SIZE: usize = 4096;

/// Default buffer pool capacity in pages (paper §VI-A: "an LRU buffer
/// with 50 pages is used").
pub const DEFAULT_POOL_PAGES: usize = 50;

/// Identifier of a disk page. Allocated densely by the store; never
/// reused until freed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel used in serialized nodes for "no page" (e.g. leaf child
    /// pointers).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// Whether this id is the sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// A fixed-size page buffer. Heap-allocated so frames move cheaply.
pub type PageBuf = Box<[u8; PAGE_SIZE]>;

/// Allocates a zeroed page buffer.
#[must_use]
pub fn zeroed_page() -> PageBuf {
    vec![0u8; PAGE_SIZE]
        .into_boxed_slice()
        .try_into()
        .expect("PAGE_SIZE-length vec converts to array")
}
