//! A file-backed [`PageStore`]: the genuinely disk-resident option.
//!
//! [`InMemoryStore`](crate::InMemoryStore) reproduces the paper's I/O
//! *counts* while staying fast; `FileStore` additionally pays real disk
//! latency — pages live at `page_id × PAGE_SIZE` offsets in a single
//! file, read and written with positioned I/O. Free-list state is kept in
//! memory (rebuilding it on open is out of scope: the experiments always
//! start from an empty index, and durability of the *allocator* is not
//! part of the paper's model — the data pages themselves are durable).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{IoStats, PageId, PageStore, StorageError, StorageResult, PAGE_SIZE};

/// A [`PageStore`] persisting pages to a single file.
pub struct FileStore {
    inner: Mutex<FileInner>,
    stats: Arc<IoStats>,
}

struct FileInner {
    file: File,
    /// Number of page slots ever allocated (file length / PAGE_SIZE).
    slots: u32,
    /// Allocation bitmap: `true` = live.
    live: Vec<bool>,
    free_list: Vec<u32>,
}

impl FileStore {
    /// Creates (truncating) a store at `path`.
    pub fn create(path: &Path) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(io_err)?;
        Ok(Self {
            inner: Mutex::new(FileInner {
                file,
                slots: 0,
                live: Vec::new(),
                free_list: Vec::new(),
            }),
            stats: Arc::new(IoStats::new()),
        })
    }

    /// Flushes file contents to the OS (used by tests and shutdown
    /// paths; the simulation itself measures page I/O, not fsyncs).
    pub fn sync(&self) -> StorageResult<()> {
        self.inner.lock().file.sync_data().map_err(io_err)
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Corrupt(format!("file I/O error: {e}"))
}

impl PageStore for FileStore {
    fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        self.stats.record_alloc();
        if let Some(idx) = inner.free_list.pop() {
            inner.live[idx as usize] = true;
            // Zero the recycled slot so fresh pages read back zeroed.
            let zero = crate::zeroed_page();
            let _ = inner
                .file
                .seek(SeekFrom::Start(u64::from(idx) * PAGE_SIZE as u64))
                .and_then(|_| inner.file.write_all(&zero[..]));
            return PageId(idx);
        }
        let idx = inner.slots;
        inner.slots += 1;
        inner.live.push(true);
        let zero = crate::zeroed_page();
        let _ = inner
            .file
            .seek(SeekFrom::Start(u64::from(idx) * PAGE_SIZE as u64))
            .and_then(|_| inner.file.write_all(&zero[..]));
        PageId(idx)
    }

    fn free(&self, id: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        let slot = inner
            .live
            .get_mut(id.0 as usize)
            .ok_or(StorageError::PageNotFound(id))?;
        if !*slot {
            return Err(StorageError::PageNotFound(id));
        }
        *slot = false;
        inner.free_list.push(id.0);
        self.stats.record_free();
        Ok(())
    }

    fn read(&self, id: PageId, out: &mut [u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if !inner.live.get(id.0 as usize).copied().unwrap_or(false) {
            return Err(StorageError::PageNotFound(id));
        }
        inner
            .file
            .seek(SeekFrom::Start(u64::from(id.0) * PAGE_SIZE as u64))
            .map_err(io_err)?;
        inner.file.read_exact(&mut out[..]).map_err(io_err)?;
        self.stats.record_physical_read();
        Ok(())
    }

    fn write(&self, id: PageId, data: &[u8; PAGE_SIZE]) -> StorageResult<()> {
        let mut inner = self.inner.lock();
        if !inner.live.get(id.0 as usize).copied().unwrap_or(false) {
            return Err(StorageError::PageNotFound(id));
        }
        inner
            .file
            .seek(SeekFrom::Start(u64::from(id.0) * PAGE_SIZE as u64))
            .map_err(io_err)?;
        inner.file.write_all(&data[..]).map_err(io_err)?;
        self.stats.record_physical_write();
        Ok(())
    }

    fn live_pages(&self) -> usize {
        self.inner.lock().live.iter().filter(|&&l| l).count()
    }

    fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempFile(std::path::PathBuf);
    impl TempFile {
        fn new(name: &str) -> Self {
            let mut p = std::env::temp_dir();
            p.push(format!("cij-filestore-{}-{}", std::process::id(), name));
            Self(p)
        }
    }
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn roundtrip_on_disk() {
        let tmp = TempFile::new("roundtrip");
        let store = FileStore::create(&tmp.0).unwrap();
        let a = store.allocate();
        let b = store.allocate();
        let mut page = crate::zeroed_page();
        page[0] = 0xAA;
        page[PAGE_SIZE - 1] = 0xBB;
        store.write(a, &page).unwrap();
        page[0] = 0xCC;
        store.write(b, &page).unwrap();
        store.sync().unwrap();

        let mut out = crate::zeroed_page();
        store.read(a, &mut out).unwrap();
        assert_eq!((out[0], out[PAGE_SIZE - 1]), (0xAA, 0xBB));
        store.read(b, &mut out).unwrap();
        assert_eq!(out[0], 0xCC);
        assert_eq!(store.live_pages(), 2);
        // The backing file has exactly two pages.
        assert_eq!(
            std::fs::metadata(&tmp.0).unwrap().len(),
            2 * PAGE_SIZE as u64
        );
    }

    #[test]
    fn free_and_recycle_zeroes() {
        let tmp = TempFile::new("recycle");
        let store = FileStore::create(&tmp.0).unwrap();
        let a = store.allocate();
        let mut page = crate::zeroed_page();
        page[7] = 9;
        store.write(a, &page).unwrap();
        store.free(a).unwrap();
        let mut out = crate::zeroed_page();
        assert_eq!(store.read(a, &mut out), Err(StorageError::PageNotFound(a)));
        let b = store.allocate();
        assert_eq!(a, b);
        out[7] = 1;
        store.read(b, &mut out).unwrap();
        assert_eq!(out[7], 0, "recycled page must read back zeroed");
    }

    #[test]
    fn works_under_buffer_pool_and_tree_sized_load() {
        let tmp = TempFile::new("pool");
        let store = Arc::new(FileStore::create(&tmp.0).unwrap());
        let pool = crate::BufferPool::new(store, crate::BufferPoolConfig::with_capacity(8));
        // Write/read far more pages than the pool holds.
        let ids: Vec<PageId> = (0..64).map(|_| pool.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            let mut page = crate::zeroed_page();
            page[0] = i as u8;
            pool.write(id, &page).unwrap();
        }
        for (i, &id) in ids.iter().enumerate() {
            let byte = pool.read(id, |p| p[0]).unwrap();
            assert_eq!(byte, i as u8);
        }
        assert!(pool.resident() <= 8);
    }
}
