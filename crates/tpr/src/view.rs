//! Zero-copy structure-of-arrays page views.
//!
//! The v2 page layout stores a node as a fixed-offset header followed by
//! ten parallel lanes (one per `MovingRect` field plus the child
//! reference), so a reader can address any field of any entry at a fixed
//! byte offset without a sequential decode. [`NodeView`] is the typed
//! borrow of such a page: parsing is O(entries) validation only, and
//! every accessor is a single 8-byte little-endian load — on
//! little-endian targets the compiler lowers `f64::from_le_bytes` to a
//! plain memory load, which is as close to "view the page as `&[f64]`"
//! as safe code gets (the crate denies `unsafe_code`, and a
//! `Box<[u8; 4096]>` carries no alignment guarantee to transmute on
//! anyway).
//!
//! ```text
//! offset   size   field
//! 0        2      magic 0x5453 ("TS", le bytes 53 54)
//! 2        1      layout version (2)
//! 3        1      level (0 = leaf)
//! 4        2      entry count (u16, le)
//! 6        2      padding (zero)
//! 8        408    lane 0: lo[0]   (51 slots x 8 bytes, f64 le)
//! 416      408    lane 1: lo[1]
//! 824      408    lane 2: hi[0]
//! 1232     408    lane 3: hi[1]
//! 1640     408    lane 4: vlo[0]
//! 2048     408    lane 5: vlo[1]
//! 2456     408    lane 6: vhi[0]
//! 2864     408    lane 7: vhi[1]
//! 3272     408    lane 8: t_ref
//! 3680     408    lane 9: child (u64 le: ObjectId on leaves, PageId above)
//! 4088     8      slack
//! ```
//!
//! Every lane offset is a multiple of 8, so lane element `i` of lane `k`
//! lives at `8 + k·408 + i·8` — naturally aligned for 8-byte loads
//! whenever the page buffer itself is 8-aligned. Entry *kind* is implied
//! by the level (leaves hold objects, internal nodes hold pages), which
//! is what lets the per-entry tag byte of the v1 layout disappear.
//!
//! Pages written before this layout (magic `0x5452`) are still readable:
//! [`NodeView::parse`] reports them as `None` and callers fall back to
//! the legacy field-by-field decode (`Node::from_page_legacy`), counted
//! by the `storage.page.decode_fallbacks` metric. Any rewrite of the
//! node persists it in the v2 layout, migrating old files one page at a
//! time as they are touched.

use cij_geom::MovingRect;
use cij_storage::{PageId, StorageError, StorageResult, PAGE_SIZE};

use crate::entry::{ChildRef, Entry, ObjectId};
use crate::node::Node;

/// Magic of the v2 structure-of-arrays page layout.
pub const SOA_MAGIC: u16 = 0x5453; // "TS"

/// Layout version byte stored at offset 2.
pub const SOA_VERSION: u8 = 2;

/// Bytes of fixed v2 header before the lanes.
pub const SOA_HEADER_BYTES: usize = 8;

/// Number of 8-byte fields per entry (9 × f64 + 1 × u64 child).
pub const SOA_LANES: usize = 10;

/// Slots per lane: entries that physically fit one v2 page.
pub const SOA_SLOTS: usize = (PAGE_SIZE - SOA_HEADER_BYTES) / (SOA_LANES * 8);

/// Byte stride between consecutive lanes.
pub const SOA_LANE_BYTES: usize = SOA_SLOTS * 8;

/// Lane indices, in on-page order.
const L_LO0: usize = 0;
const L_LO1: usize = 1;
const L_HI0: usize = 2;
const L_HI1: usize = 3;
const L_VLO0: usize = 4;
const L_VLO1: usize = 5;
const L_VHI0: usize = 6;
const L_VHI1: usize = 7;
const L_TREF: usize = 8;
const L_CHILD: usize = 9;

// Accessors index dimension lanes as `L_*0 + d`; the dim-1 lane must sit
// directly after its dim-0 twin for that to hold.
const _: () = assert!(
    L_LO1 == L_LO0 + 1 && L_HI1 == L_HI0 + 1 && L_VLO1 == L_VLO0 + 1 && L_VHI1 == L_VHI0 + 1
);

/// Byte offset of element `i` in lane `k`.
#[inline(always)]
const fn lane_off(k: usize, i: usize) -> usize {
    SOA_HEADER_BYTES + k * SOA_LANE_BYTES + i * 8
}

#[inline(always)]
fn load_f64(page: &[u8; PAGE_SIZE], k: usize, i: usize) -> f64 {
    let off = lane_off(k, i);
    f64::from_le_bytes(page[off..off + 8].try_into().expect("8 bytes"))
}

#[inline(always)]
fn load_u64(page: &[u8; PAGE_SIZE], k: usize, i: usize) -> u64 {
    let off = lane_off(k, i);
    u64::from_le_bytes(page[off..off + 8].try_into().expect("8 bytes"))
}

/// A validated, zero-copy view of a v2 (SoA) node page.
///
/// Borrowing the page buffer directly, so it can only live inside a
/// buffer-pool `read` closure; anything that must outlive the frame goes
/// through [`NodeView::to_node`] or [`EntryLanes`].
#[derive(Clone, Copy)]
pub struct NodeView<'a> {
    page: &'a [u8; PAGE_SIZE],
    level: u8,
    len: usize,
}

impl<'a> NodeView<'a> {
    /// Parses a page as a v2 SoA node.
    ///
    /// Returns `Ok(Some(view))` for a valid v2 page, `Ok(None)` for a
    /// legacy v1 page (caller falls back to the sequential decode), and
    /// `Err` for anything corrupt. Validation mirrors the legacy decode:
    /// entry count against capacity, `lo <= hi` per dimension, and child
    /// page ids within `u32` range on internal nodes.
    pub fn parse(page: &'a [u8; PAGE_SIZE]) -> StorageResult<Option<Self>> {
        let magic = u16::from_le_bytes([page[0], page[1]]);
        if magic == crate::node::NODE_MAGIC {
            return Ok(None);
        }
        if magic != SOA_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad node magic {magic:#06x} (expected {SOA_MAGIC:#06x} or legacy)"
            )));
        }
        let version = page[2];
        if version != SOA_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported SoA layout version {version} (expected {SOA_VERSION})"
            )));
        }
        let level = page[3];
        let len = u16::from_le_bytes([page[4], page[5]]) as usize;
        if len > Node::max_capacity() {
            return Err(StorageError::Corrupt(format!(
                "entry count {len} exceeds physical capacity {}",
                Node::max_capacity()
            )));
        }
        let view = Self { page, level, len };
        for i in 0..len {
            if !(view.lo(0, i) <= view.hi(0, i) && view.lo(1, i) <= view.hi(1, i)) {
                return Err(StorageError::Corrupt(format!(
                    "inverted entry rect lo=({}, {}) hi=({}, {})",
                    view.lo(0, i),
                    view.lo(1, i),
                    view.hi(0, i),
                    view.hi(1, i)
                )));
            }
            if level > 0 && u32::try_from(view.child_raw(i)).is_err() {
                return Err(StorageError::Corrupt("page id > u32".into()));
            }
        }
        Ok(Some(view))
    }

    /// Node level (0 = leaf).
    #[must_use]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Whether this is a leaf node.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the node has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lower bound of entry `i` in dimension `d` at the reference time.
    #[inline]
    #[must_use]
    pub fn lo(&self, d: usize, i: usize) -> f64 {
        debug_assert!(d < 2 && i < self.len);
        load_f64(self.page, L_LO0 + d, i)
    }

    /// Upper bound of entry `i` in dimension `d` at the reference time.
    #[inline]
    #[must_use]
    pub fn hi(&self, d: usize, i: usize) -> f64 {
        debug_assert!(d < 2 && i < self.len);
        load_f64(self.page, L_HI0 + d, i)
    }

    /// Lower-bound velocity of entry `i` in dimension `d`.
    #[inline]
    #[must_use]
    pub fn vlo(&self, d: usize, i: usize) -> f64 {
        debug_assert!(d < 2 && i < self.len);
        load_f64(self.page, L_VLO0 + d, i)
    }

    /// Upper-bound velocity of entry `i` in dimension `d`.
    #[inline]
    #[must_use]
    pub fn vhi(&self, d: usize, i: usize) -> f64 {
        debug_assert!(d < 2 && i < self.len);
        load_f64(self.page, L_VHI0 + d, i)
    }

    /// Reference time of entry `i`.
    #[inline]
    #[must_use]
    pub fn t_ref(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        load_f64(self.page, L_TREF, i)
    }

    /// Raw child word of entry `i` (`ObjectId` bits on leaves, `PageId`
    /// on internal nodes).
    #[inline]
    #[must_use]
    pub fn child_raw(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        load_u64(self.page, L_CHILD, i)
    }

    /// Child reference of entry `i`, typed by the node level.
    #[inline]
    #[must_use]
    pub fn child(&self, i: usize) -> ChildRef {
        let raw = self.child_raw(i);
        if self.level == 0 {
            ChildRef::Object(ObjectId(raw))
        } else {
            // Validated in `parse`.
            ChildRef::Page(PageId(raw as u32))
        }
    }

    /// Moving rectangle of entry `i`, materialized from the lanes.
    #[inline]
    #[must_use]
    pub fn mbr(&self, i: usize) -> MovingRect {
        MovingRect::new(
            [self.lo(0, i), self.lo(1, i)],
            [self.hi(0, i), self.hi(1, i)],
            [self.vlo(0, i), self.vlo(1, i)],
            [self.vhi(0, i), self.vhi(1, i)],
            self.t_ref(i),
        )
    }

    /// Entry `i`, materialized.
    #[inline]
    #[must_use]
    pub fn entry(&self, i: usize) -> Entry {
        Entry {
            mbr: self.mbr(i),
            child: self.child(i),
        }
    }

    /// Iterates over all entries (materializing each).
    pub fn entries(&self) -> impl Iterator<Item = Entry> + '_ {
        (0..self.len).map(|i| self.entry(i))
    }

    /// Same fold as [`Node::bounding_mbr`], reading from the lanes.
    #[must_use]
    pub fn bounding_mbr(&self) -> Option<MovingRect> {
        let mut it = (0..self.len).map(|i| self.mbr(i));
        let first = it.next()?;
        Some(it.fold(first, |acc, m| acc.union_moving(&m)))
    }

    /// Decodes the whole view into an owned [`Node`] (lane-order bulk
    /// decode; validation already happened in [`NodeView::parse`]).
    #[must_use]
    pub fn to_node(&self) -> Node {
        let mut node = Node::new(self.level);
        node.entries.reserve_exact(self.len);
        for i in 0..self.len {
            node.entries.push(self.entry(i));
        }
        node
    }
}

impl std::fmt::Debug for NodeView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeView")
            .field("level", &self.level)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// Capacity-retained owned copy of one node's lanes.
///
/// The bridge between a [`NodeView`] (which cannot escape the buffer-pool
/// frame it borrows) and lane-oriented consumers like the plane-sweep
/// kernel: `fill_from_view` is a straight lane-to-lane copy, so refilling
/// sweep state from it never gathers per-entry structs.
#[derive(Debug, Default, Clone)]
pub struct EntryLanes {
    /// `lo[d]` lanes.
    pub lo: [Vec<f64>; 2],
    /// `hi[d]` lanes.
    pub hi: [Vec<f64>; 2],
    /// `vlo[d]` lanes.
    pub vlo: [Vec<f64>; 2],
    /// `vhi[d]` lanes.
    pub vhi: [Vec<f64>; 2],
    /// `t_ref` lane.
    pub t_ref: Vec<f64>,
    /// Raw child words (`ObjectId` bits on leaves).
    pub child: Vec<u64>,
    level: u8,
}

impl EntryLanes {
    /// An empty lane set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.t_ref.len()
    }

    /// Whether there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.t_ref.is_empty()
    }

    /// Level of the node the lanes were copied from (0 = leaf).
    #[must_use]
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Drops all entries, keeping capacity.
    pub fn clear(&mut self) {
        for d in 0..2 {
            self.lo[d].clear();
            self.hi[d].clear();
            self.vlo[d].clear();
            self.vhi[d].clear();
        }
        self.t_ref.clear();
        self.child.clear();
    }

    /// Object id of entry `i` (leaf lanes only).
    #[inline]
    #[must_use]
    pub fn object(&self, i: usize) -> ObjectId {
        debug_assert_eq!(self.level, 0);
        ObjectId(self.child[i])
    }

    /// Moving rectangle of entry `i`, materialized from the lanes.
    #[inline]
    #[must_use]
    pub fn mbr(&self, i: usize) -> MovingRect {
        MovingRect::new(
            [self.lo[0][i], self.lo[1][i]],
            [self.hi[0][i], self.hi[1][i]],
            [self.vlo[0][i], self.vlo[1][i]],
            [self.vhi[0][i], self.vhi[1][i]],
            self.t_ref[i],
        )
    }

    /// Same fold as [`Node::bounding_mbr`], over the lanes.
    #[must_use]
    pub fn bounding_mbr(&self) -> Option<MovingRect> {
        let mut it = (0..self.len()).map(|i| self.mbr(i));
        let first = it.next()?;
        Some(it.fold(first, |acc, m| acc.union_moving(&m)))
    }

    /// Refills from a zero-copy view: one contiguous copy per lane, no
    /// per-entry struct assembly.
    pub fn fill_from_view(&mut self, view: &NodeView<'_>) {
        self.clear();
        self.level = view.level();
        let n = view.len();
        for d in 0..2 {
            self.lo[d].extend((0..n).map(|i| view.lo(d, i)));
            self.hi[d].extend((0..n).map(|i| view.hi(d, i)));
            self.vlo[d].extend((0..n).map(|i| view.vlo(d, i)));
            self.vhi[d].extend((0..n).map(|i| view.vhi(d, i)));
        }
        self.t_ref.extend((0..n).map(|i| view.t_ref(i)));
        self.child.extend((0..n).map(|i| view.child_raw(i)));
    }

    /// Refills from a decoded node (the legacy-page fallback path).
    pub fn fill_from_node(&mut self, node: &Node) {
        self.clear();
        self.level = node.level;
        for e in &node.entries {
            let m = &e.mbr;
            for d in 0..2 {
                self.lo[d].push(m.lo[d]);
                self.hi[d].push(m.hi[d]);
                self.vlo[d].push(m.vlo[d]);
                self.vhi[d].push(m.vhi[d]);
            }
            self.t_ref.push(m.t_ref);
            self.child.push(match e.child {
                ChildRef::Object(oid) => oid.0,
                ChildRef::Page(pid) => u64::from(pid.0),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;

    fn sample_node(level: u8, n: usize) -> Node {
        let mut node = Node::new(level);
        for i in 0..n {
            let x = i as f64 * 3.0;
            let mbr = MovingRect::rigid(
                Rect::new([x, -x], [x + 1.5, -x + 2.0]),
                [0.5 * i as f64, -1.0],
                i as f64 / 7.0,
            );
            let child = if level == 0 {
                ChildRef::Object(ObjectId(i as u64 + 100))
            } else {
                ChildRef::Page(PageId(i as u32 + 5))
            };
            node.entries.push(Entry { mbr, child });
        }
        node
    }

    #[test]
    fn layout_constants_fit_one_page() {
        assert_eq!(SOA_SLOTS, 51);
        assert_eq!(SOA_LANE_BYTES, 408);
        const { assert!(SOA_HEADER_BYTES + SOA_LANES * SOA_LANE_BYTES <= PAGE_SIZE) };
        // Every lane starts 8-aligned relative to the page base.
        for k in 0..SOA_LANES {
            assert_eq!(lane_off(k, 0) % 8, 0, "lane {k} misaligned");
        }
        assert!(Node::max_capacity() <= SOA_SLOTS);
    }

    #[test]
    fn view_agrees_with_decoded_node() {
        for (level, n) in [(0u8, 17usize), (2, 30), (0, 0)] {
            let node = sample_node(level, n);
            let page = node.to_page().unwrap();
            let view = NodeView::parse(&page).unwrap().expect("v2 page");
            assert_eq!(view.level(), node.level);
            assert_eq!(view.len(), node.entries.len());
            assert_eq!(view.is_leaf(), node.is_leaf());
            for (i, e) in node.entries.iter().enumerate() {
                assert_eq!(view.entry(i), *e);
                assert_eq!(view.mbr(i), e.mbr);
                assert_eq!(view.child(i), e.child);
            }
            assert_eq!(view.to_node(), node);
            assert_eq!(view.bounding_mbr(), node.bounding_mbr());
        }
    }

    #[test]
    fn legacy_page_parses_as_none() {
        let node = sample_node(0, 3);
        let page = node.to_page_legacy().unwrap();
        assert!(NodeView::parse(&page).unwrap().is_none());
    }

    #[test]
    fn garbage_magic_rejected() {
        let mut page = cij_storage::zeroed_page();
        page[0] = 0xFF;
        page[1] = 0xFF;
        assert!(NodeView::parse(&page).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let node = sample_node(0, 1);
        let mut page = node.to_page().unwrap();
        page[2] = 9;
        assert!(NodeView::parse(&page).is_err());
    }

    #[test]
    fn overlong_count_rejected() {
        let node = sample_node(0, 1);
        let mut page = node.to_page().unwrap();
        let bad = (Node::max_capacity() as u16 + 1).to_le_bytes();
        page[4..6].copy_from_slice(&bad);
        assert!(NodeView::parse(&page).is_err());
    }

    #[test]
    fn internal_child_above_u32_rejected() {
        let node = sample_node(1, 1);
        let mut page = node.to_page().unwrap();
        let off = lane_off(L_CHILD, 0);
        page[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(NodeView::parse(&page).is_err());
        // The same word is a perfectly fine object id on a leaf.
        let leaf = sample_node(0, 1);
        let mut page = leaf.to_page().unwrap();
        page[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let view = NodeView::parse(&page).unwrap().expect("leaf ok");
        assert_eq!(view.child(0), ChildRef::Object(ObjectId(u64::MAX)));
    }

    #[test]
    fn entry_lanes_roundtrip_both_sources() {
        let node = sample_node(0, 9);
        let page = node.to_page().unwrap();
        let view = NodeView::parse(&page).unwrap().unwrap();

        let mut from_view = EntryLanes::new();
        from_view.fill_from_view(&view);
        let mut from_node = EntryLanes::new();
        from_node.fill_from_node(&node);

        assert_eq!(from_view.len(), node.entries.len());
        assert_eq!(from_view.level(), 0);
        for i in 0..node.entries.len() {
            assert_eq!(from_view.mbr(i), node.entries[i].mbr);
            assert_eq!(from_node.mbr(i), node.entries[i].mbr);
            assert_eq!(from_view.object(i), node.entries[i].child.object());
            assert_eq!(from_node.object(i), node.entries[i].child.object());
        }
        assert_eq!(from_view.bounding_mbr(), node.bounding_mbr());

        // Refilling reuses capacity and replaces contents.
        from_view.fill_from_node(&sample_node(0, 2));
        assert_eq!(from_view.len(), 2);
    }
}
