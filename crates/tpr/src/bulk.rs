//! Bulk loading: Sort-Tile-Recursive (STR) packing adapted to moving
//! objects.
//!
//! Building a TPR-tree by repeated insertion costs one root-to-leaf
//! traversal (plus splits) per object; packing builds the same tree
//! bottom-up in `O(n log n)` comparisons and exactly `⌈n / fill⌉` leaf
//! writes. The adaptation for moving objects follows the TPR-tree
//! loading rationale: tiles are formed on object *centers at the horizon
//! midpoint* `t₀ + H/2`, so co-moving objects land in the same node and
//! node VBRs stay tight over the horizon the tree optimizes for.
//!
//! Packed nodes are filled to a configurable factor (default 70 %) —
//! full nodes would split immediately under the update-heavy workloads
//! this index exists for.

use cij_geom::{MovingRect, Time};
use cij_storage::BufferPool;

use crate::config::TreeConfig;
use crate::entry::{Entry, ObjectId};
use crate::error::TprResult;
use crate::node::Node;
use crate::tree::TprTree;

/// Fraction of node capacity used by packed nodes.
const PACK_FILL: f64 = 0.7;

impl TprTree {
    /// Bulk-loads a tree from `objects` at time `now` using STR packing.
    ///
    /// Equivalent to inserting every object at `now`, but orders of
    /// magnitude faster for large sets; the resulting tree satisfies all
    /// structural invariants (`validate` passes) and answers queries
    /// identically.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use cij_geom::{MovingRect, Rect};
    /// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    /// use cij_tpr::{ObjectId, TprTree, TreeConfig};
    ///
    /// let objects: Vec<(ObjectId, MovingRect)> = (0..10_000)
    ///     .map(|i| {
    ///         let x = (i % 100) as f64 * 10.0;
    ///         let y = (i / 100) as f64 * 10.0;
    ///         (
    ///             ObjectId(i),
    ///             MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [1.0, -1.0], 0.0),
    ///         )
    ///     })
    ///     .collect();
    /// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    /// let tree = TprTree::bulk_load(pool, TreeConfig::default(), &objects, 0.0)?;
    /// assert_eq!(tree.len(), 10_000);
    /// tree.validate(0.0)?;
    /// # Ok::<(), cij_tpr::TprError>(())
    /// ```
    pub fn bulk_load(
        pool: BufferPool,
        config: TreeConfig,
        objects: &[(ObjectId, MovingRect)],
        now: Time,
    ) -> TprResult<Self> {
        config.assert_valid();
        let mut tree = TprTree::new(pool, config);
        if objects.is_empty() {
            return Ok(tree);
        }
        let per_node = ((config.capacity as f64 * PACK_FILL) as usize)
            .clamp(config.min_entries(), config.capacity);

        // Small inputs: plain inserts avoid degenerate single-entry roots.
        if objects.len() <= per_node {
            for &(oid, mbr) in objects {
                tree.insert(oid, mbr, now)?;
            }
            return Ok(tree);
        }

        let t_mid = now + config.horizon / 2.0;
        let mut entries: Vec<Entry> = objects
            .iter()
            .map(|&(oid, mbr)| Entry::object(oid, mbr))
            .collect();

        let mut level = 0u8;
        loop {
            let parent_entries = tree.pack_level(&mut entries, level, per_node, t_mid, now)?;
            if parent_entries.len() == 1 {
                // The single parent entry's page is the root.
                let root = parent_entries[0].child.page();
                tree.adopt_packed_root(root, u32::from(level) + 1, objects.len());
                return Ok(tree);
            }
            entries = parent_entries;
            level += 1;
        }
    }

    /// Packs one level: tiles `entries` (STR on centers at `t_mid`),
    /// writes one node per tile at `level`, and returns the parent
    /// entries bounding them.
    fn pack_level(
        &mut self,
        entries: &mut [Entry],
        level: u8,
        per_node: usize,
        t_mid: Time,
        now: Time,
    ) -> TprResult<Vec<Entry>> {
        let n = entries.len();
        let node_count = n.div_ceil(per_node);
        // STR: sort by x-center, slice into √node_count vertical slabs,
        // sort each slab by y-center, cut into runs of `per_node`.
        let slabs = (node_count as f64).sqrt().ceil() as usize;
        let slab_len = n.div_ceil(slabs);
        let center = |e: &Entry, d: usize| (e.mbr.lo_at(d, t_mid) + e.mbr.hi_at(d, t_mid)) / 2.0;
        entries.sort_by(|a, b| {
            center(a, 0)
                .partial_cmp(&center(b, 0))
                .expect("finite centers")
        });
        for slab in entries.chunks_mut(slab_len) {
            slab.sort_by(|a, b| {
                center(a, 1)
                    .partial_cmp(&center(b, 1))
                    .expect("finite centers")
            });
        }
        // Cut the tiled order into runs. A run below the minimum fanout
        // would violate tree invariants, so entries are distributed
        // *evenly* over the largest run count that keeps every run at or
        // above the minimum (shrinking the count raises run sizes toward
        // capacity; min ≤ 40 % of capacity guarantees a feasible count
        // exists for any n ≥ 1 here, since n > per_node ≥ min).
        let min = self.config().min_entries();
        let cap = self.config().capacity;
        let mut runs = n.div_ceil(per_node);
        while runs > 1 && n / runs < min {
            runs -= 1;
        }
        debug_assert!(
            n.div_ceil(runs) <= cap,
            "even distribution overflows capacity"
        );
        let base = n / runs;
        let extra = n % runs; // first `extra` runs hold one more entry
        let mut cuts = Vec::with_capacity(runs);
        let mut acc = 0usize;
        for r in 0..runs {
            acc += base + usize::from(r < extra);
            cuts.push(acc);
        }
        let mut parents = Vec::with_capacity(node_count);
        let mut start = 0;
        for &end in &cuts {
            let mut node = Node::new(level);
            node.entries = entries[start..end].to_vec();
            let page = self.pool().allocate();
            let buf = node.to_page()?;
            self.pool().write(page, &buf)?;
            let mbr = node.bounding_mbr_at(now).expect("non-empty packed node");
            parents.push(Entry::node(page, mbr));
            start = end;
        }
        Ok(parents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;
    use cij_storage::{BufferPoolConfig, InMemoryStore};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    fn pool() -> BufferPool {
        BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(256),
        )
    }

    fn random_objects(n: usize, seed: u64) -> Vec<(ObjectId, MovingRect)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                let s = rng.gen_range(0.2..3.0);
                (
                    ObjectId(i as u64),
                    MovingRect::rigid(
                        Rect::new([x, y], [x + s, y + s]),
                        [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                        0.0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let t = TprTree::bulk_load(pool(), TreeConfig::default(), &[], 0.0).unwrap();
        assert!(t.is_empty());
        t.validate(0.0).unwrap();

        let objs = random_objects(5, 1);
        let t = TprTree::bulk_load(pool(), TreeConfig::default(), &objs, 0.0).unwrap();
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 1);
        t.validate(0.0).unwrap();
    }

    #[test]
    fn bulk_load_validates_at_scale() {
        for n in [50, 500, 5000] {
            let objs = random_objects(n, 2);
            let t = TprTree::bulk_load(pool(), TreeConfig::default(), &objs, 0.0).unwrap();
            assert_eq!(t.len(), n, "n={n}");
            let stats = t.validate(0.0).unwrap();
            assert_eq!(stats.objects, n);
        }
    }

    #[test]
    fn bulk_load_answers_match_insert_built_tree() {
        let objs = random_objects(1200, 3);
        let bulk = TprTree::bulk_load(pool(), TreeConfig::default(), &objs, 0.0).unwrap();
        let mut inserted = TprTree::new(pool(), TreeConfig::default());
        for &(oid, mbr) in &objs {
            inserted.insert(oid, mbr, 0.0).unwrap();
        }
        for t in [0.0, 30.0, 60.0] {
            for probe_seed in 10..20 {
                let probe = random_objects(1, probe_seed)[0].1;
                let mut a: Vec<_> = bulk
                    .intersect_window(&probe, t, t + 60.0)
                    .unwrap()
                    .into_iter()
                    .map(|(o, _)| o)
                    .collect();
                let mut b: Vec<_> = inserted
                    .intersect_window(&probe, t, t + 60.0)
                    .unwrap()
                    .into_iter()
                    .map(|(o, _)| o)
                    .collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "t={t} seed={probe_seed}");
            }
        }
    }

    #[test]
    fn bulk_loaded_tree_supports_updates() {
        let objs = random_objects(800, 4);
        let mut t = TprTree::bulk_load(pool(), TreeConfig::default(), &objs, 0.0).unwrap();
        // Update a quarter of the objects.
        for &(oid, mbr) in objs.iter().take(200) {
            let new = MovingRect::rigid(mbr.at(1.0), [1.0, -1.0], 1.0);
            t.update(oid, &mbr, new, 1.0).unwrap();
        }
        assert_eq!(t.len(), 800);
        t.validate(1.0).unwrap();
        // And delete them all.
        for &(oid, mbr) in objs.iter().skip(200) {
            t.delete(oid, &mbr, 1.0).unwrap();
        }
        assert_eq!(t.len(), 200);
        t.validate(1.0).unwrap();
    }

    #[test]
    fn bulk_load_is_much_cheaper_in_io() {
        let objs = random_objects(3000, 5);
        let p1 = pool();
        let before = p1.stats().snapshot();
        let _bulk = TprTree::bulk_load(p1.clone(), TreeConfig::default(), &objs, 0.0).unwrap();
        let bulk_io = (p1.stats().snapshot() - before).logical_writes
            + (p1.stats().snapshot() - before).physical_reads;

        let p2 = pool();
        let before = p2.stats().snapshot();
        let mut t = TprTree::new(p2.clone(), TreeConfig::default());
        for &(oid, mbr) in &objs {
            t.insert(oid, mbr, 0.0).unwrap();
        }
        let insert_io = (p2.stats().snapshot() - before).logical_writes
            + (p2.stats().snapshot() - before).physical_reads;
        assert!(
            bulk_io * 5 < insert_io,
            "bulk {bulk_io} should be ≪ insert-built {insert_io}"
        );
    }

    #[test]
    fn co_moving_objects_get_tight_nodes() {
        // Two swarms moving in opposite directions: STR at the horizon
        // midpoint should separate them, keeping node VBRs tight.
        let mut objs = Vec::new();
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..200u64 {
            let x = rng.gen_range(400.0..600.0);
            let y = rng.gen_range(400.0..600.0);
            let v = if i % 2 == 0 { 3.0 } else { -3.0 };
            objs.push((
                ObjectId(i),
                MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [v, 0.0], 0.0),
            ));
        }
        let t = TprTree::bulk_load(pool(), TreeConfig::default(), &objs, 0.0).unwrap();
        t.validate(0.0).unwrap();
        // Quality proxy: total leaf-level velocity spread. With horizon-
        // midpoint tiling the swarms separate spatially, so most leaves
        // are single-direction. Just assert structural validity plus a
        // correct full-space query here; the quality shows in benches.
        let all = t
            .range_at(&Rect::new([-1e5, -1e5], [1e5, 1e5]), 30.0)
            .unwrap();
        assert_eq!(all.len(), 200);
    }
}
