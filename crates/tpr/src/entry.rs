//! Tree entries: a moving rectangle plus a reference to what it bounds.

use cij_geom::MovingRect;
use cij_storage::PageId;

/// Identifier of a data object. Unique across both joined sets (paper
/// §II-A: "each object has a unique ID among all the objects in A ∪ B").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// What an entry points at: a child node (non-leaf levels) or a data
/// object (leaf level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// Child node page (entry lives in a non-leaf node).
    Page(PageId),
    /// Data object (entry lives in a leaf).
    Object(ObjectId),
}

impl ChildRef {
    /// The child page id.
    ///
    /// # Panics
    /// Panics when the entry is a leaf (object) entry — calling this on a
    /// leaf entry is a traversal logic bug.
    #[must_use]
    pub fn page(self) -> PageId {
        match self {
            Self::Page(p) => p,
            Self::Object(o) => panic!("expected child page, found object entry {o}"),
        }
    }

    /// The object id.
    ///
    /// # Panics
    /// Panics when the entry is a non-leaf (page) entry.
    #[must_use]
    pub fn object(self) -> ObjectId {
        match self {
            Self::Object(o) => o,
            Self::Page(p) => panic!("expected object entry, found child page {p}"),
        }
    }
}

/// One slot of a tree node: a conservative moving MBR plus the reference
/// to the bounded child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Conservative moving bound of the child (exact for objects).
    pub mbr: MovingRect,
    /// What the bound covers.
    pub child: ChildRef,
}

impl Entry {
    /// Leaf entry for a data object.
    #[must_use]
    pub fn object(oid: ObjectId, mbr: MovingRect) -> Self {
        Self {
            mbr,
            child: ChildRef::Object(oid),
        }
    }

    /// Non-leaf entry for a child node.
    #[must_use]
    pub fn node(page: PageId, mbr: MovingRect) -> Self {
        Self {
            mbr,
            child: ChildRef::Page(page),
        }
    }

    /// Serialized size in bytes: 1 tag + 8 ref + 9 × 8 rect fields.
    pub const SERIALIZED_BYTES: usize = 1 + 8 + 9 * 8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;

    fn mbr() -> MovingRect {
        MovingRect::rigid(Rect::new([0.0, 0.0], [1.0, 1.0]), [1.0, -1.0], 5.0)
    }

    #[test]
    fn constructors_set_child() {
        let e = Entry::object(ObjectId(7), mbr());
        assert_eq!(e.child.object(), ObjectId(7));
        let e = Entry::node(PageId(3), mbr());
        assert_eq!(e.child.page(), PageId(3));
    }

    #[test]
    #[should_panic(expected = "expected child page")]
    fn wrong_accessor_panics() {
        let e = Entry::object(ObjectId(7), mbr());
        let _ = e.child.page();
    }

    #[test]
    fn serialized_size_fits_capacity_30_in_a_page() {
        // Table I uses capacity 30; 30 entries + header must fit 4 KB.
        let payload = 30 * Entry::SERIALIZED_BYTES + crate::node::NODE_HEADER_BYTES;
        assert!(payload <= cij_storage::PAGE_SIZE, "{payload} > page");
    }
}
