//! Interval nearest-neighbor search: *who is the NN, when* over a time
//! window.
//!
//! §V of the paper discusses grafting TC processing onto continuous kNN
//! algorithms that "compute kNN candidates for a time interval
//! `[t_s, t_e]` as traversing a TPR-tree" (Benetis et al.) — "if
//! `t_e > t_s + T_M`, we can apply TC processing and reduce the time
//! interval to `[t_s, t_s + T_M]`". This module supplies exactly that
//! primitive: [`TprTree::nn_over_interval`] returns the piecewise
//! nearest-neighbor timeline of a query point over a window, computed
//! exactly from the convex piecewise-quadratic squared-distance
//! functions of [`cij_geom::distance`].
//!
//! Two phases:
//! 1. **candidates** — best-first traversal ordered by minimal distance
//!    over the window; a subtree is pruned when its minimal distance
//!    exceeds the *minimax* bound (the smallest maximal distance among
//!    objects found so far), since the NN at any instant is no farther
//!    than every object's distance at that instant;
//! 2. **lower envelope** — the window is split at every candidate's
//!    distance-function breakpoints; within each segment the envelope of
//!    the (now plain quadratic) functions is walked by earliest-crossing
//!    steps, all in closed form.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use cij_geom::{MovingRect, Rect, Time, TimeInterval};

use crate::entry::{ChildRef, ObjectId};
use crate::error::TprResult;
use crate::tree::TprTree;

/// Minimum segment/interval width considered distinct; crossings closer
/// than this merge (guards against float dust creating zero-width
/// timeline slices).
const T_EPS: f64 = 1e-9;

/// One slice of the NN timeline: `oid` is the nearest object during
/// `interval`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnSlice {
    /// The nearest neighbor during the slice.
    pub oid: ObjectId,
    /// When it holds (slices tile the query window).
    pub interval: TimeInterval,
}

#[derive(PartialEq)]
struct HeapKey(f64);
impl Eq for HeapKey {}
impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite distances")
    }
}

impl TprTree {
    /// The nearest-neighbor timeline of point `q` over `[t0, t1]`.
    ///
    /// Returns consecutive [`NnSlice`]s tiling the window (empty iff the
    /// tree is empty). Ties at slice borders resolve to the incumbent;
    /// exact simultaneous ties inside a slice resolve arbitrarily but
    /// the reported object is always *a* nearest neighbor throughout its
    /// slice.
    ///
    /// For the TC-processed §V variant, clamp `t1` to `t0 + T_M` first —
    /// objects re-register by then, invalidating any longer prediction.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use cij_geom::{MovingRect, Rect};
    /// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    /// use cij_tpr::{ObjectId, TprTree, TreeConfig};
    ///
    /// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
    /// let mut tree = TprTree::new(pool, TreeConfig::default());
    /// // A parked car near the query, and one driving past it.
    /// tree.insert(
    ///     ObjectId(1),
    ///     MovingRect::stationary(Rect::new([5.0, 0.0], [6.0, 1.0]), 0.0),
    ///     0.0,
    /// )?;
    /// tree.insert(
    ///     ObjectId(2),
    ///     MovingRect::rigid(Rect::new([60.0, 0.0], [61.0, 1.0]), [-6.0, 0.0], 0.0),
    /// 0.0)?;
    ///
    /// let timeline = tree.nn_over_interval([0.0, 0.5], 0.0, 20.0)?;
    /// // Car 1 is nearest, then car 2 passes closer, then car 1 again.
    /// let owners: Vec<_> = timeline.iter().map(|s| s.oid).collect();
    /// assert_eq!(owners, vec![ObjectId(1), ObjectId(2), ObjectId(1)]);
    /// # Ok::<(), cij_tpr::TprError>(())
    /// ```
    pub fn nn_over_interval(&self, q: [f64; 2], t0: Time, t1: Time) -> TprResult<Vec<NnSlice>> {
        assert!(t1 >= t0, "inverted window");
        let candidates = self.nn_candidates(q, t0, t1)?;
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        Ok(lower_envelope(q, &candidates, t0, t1))
    }

    /// kNN candidates over a window: a set guaranteed to contain the
    /// `k` nearest neighbors of `q` at **every** instant of `[t0, t1]`.
    ///
    /// This is the "kNN candidates for a time interval" primitive §V
    /// attributes to Benetis et al. — the TC-processed variant simply
    /// clamps `t1` to `t0 + T_M`. Pruning generalizes the NN minimax
    /// bound: a subtree whose minimal distance over the window exceeds
    /// the `k`-th smallest *maximal* distance among collected objects
    /// cannot contribute (at any instant, at least `k` collected objects
    /// are at or below that bound).
    pub fn knn_candidates_interval(
        &self,
        q: [f64; 2],
        k: usize,
        t0: Time,
        t1: Time,
    ) -> TprResult<Vec<(ObjectId, MovingRect)>> {
        assert!(t1 >= t0, "inverted window");
        if k == 0 {
            return Ok(Vec::new());
        }
        let mut out: Vec<(ObjectId, MovingRect)> = Vec::new();
        let Some(root) = self.root_page() else {
            return Ok(out);
        };
        let qrect = MovingRect::stationary(Rect::point(q), t0);
        // The k smallest max-distances seen so far (max-heap of size k).
        let mut worst_k: BinaryHeap<HeapKey> = BinaryHeap::new();
        let bound = |worst_k: &BinaryHeap<HeapKey>| {
            if worst_k.len() < k {
                f64::INFINITY
            } else {
                worst_k.peek().expect("non-empty").0
            }
        };
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((HeapKey(0.0), root)));
        while let Some(Reverse((HeapKey(lb), page))) = heap.pop() {
            if lb > bound(&worst_k) {
                break;
            }
            let node = self.read_node(page)?;
            for e in &node.entries {
                let (min_d, _) = e.mbr.min_dist_sq_interval(&qrect, t0, t1);
                if min_d > bound(&worst_k) {
                    continue;
                }
                match e.child {
                    ChildRef::Object(oid) => {
                        let max_d = e.mbr.max_dist_sq_interval(&qrect, t0, t1);
                        worst_k.push(HeapKey(max_d));
                        if worst_k.len() > k {
                            worst_k.pop();
                        }
                        out.push((oid, e.mbr));
                    }
                    ChildRef::Page(p) => heap.push(Reverse((HeapKey(min_d), p))),
                }
            }
        }
        let final_bound = bound(&worst_k);
        out.retain(|(_, mbr)| mbr.min_dist_sq_interval(&qrect, t0, t1).0 <= final_bound);
        Ok(out)
    }

    /// Best-first candidate collection with minimax pruning: every
    /// object that is the NN at some instant of the window is returned.
    fn nn_candidates(
        &self,
        q: [f64; 2],
        t0: Time,
        t1: Time,
    ) -> TprResult<Vec<(ObjectId, MovingRect)>> {
        let mut out: Vec<(ObjectId, MovingRect)> = Vec::new();
        let Some(root) = self.root_page() else {
            return Ok(out);
        };
        let qrect = MovingRect::stationary(Rect::point(q), t0);
        // Smallest max-distance among collected objects: no NN owner can
        // have min-distance above it.
        let mut minimax = f64::INFINITY;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((HeapKey(0.0), root)));
        while let Some(Reverse((HeapKey(bound), page))) = heap.pop() {
            if bound > minimax {
                break; // heap is ordered: nothing else qualifies
            }
            let node = self.read_node(page)?;
            for e in &node.entries {
                let (min_d, _) = e.mbr.min_dist_sq_interval(&qrect, t0, t1);
                if min_d > minimax {
                    continue;
                }
                match e.child {
                    ChildRef::Object(oid) => {
                        let max_d = e.mbr.max_dist_sq_interval(&qrect, t0, t1);
                        minimax = minimax.min(max_d);
                        out.push((oid, e.mbr));
                    }
                    ChildRef::Page(p) => heap.push(Reverse((HeapKey(min_d), p))),
                }
            }
        }
        // Collected objects may still include some with min > final
        // minimax (collected before the bound tightened).
        out.retain(|(_, mbr)| mbr.min_dist_sq_interval(&qrect, t0, t1).0 <= minimax);
        Ok(out)
    }
}

/// Exact lower envelope of the candidates' squared-distance functions.
fn lower_envelope(
    q: [f64; 2],
    candidates: &[(ObjectId, MovingRect)],
    t0: Time,
    t1: Time,
) -> Vec<NnSlice> {
    let qrect = MovingRect::stationary(Rect::point(q), t0);

    // Split the window at every candidate's breakpoints so each distance
    // function is one quadratic per segment.
    let mut cuts = vec![t0, t1];
    for (_, mbr) in candidates {
        mbr.dist_sq_breakpoints(&qrect, t0, t1, &mut cuts);
    }
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cuts"));
    cuts.dedup_by(|a, b| (*a - *b).abs() < T_EPS);

    let mut slices: Vec<NnSlice> = Vec::new();
    let push_slice = |oid: ObjectId, start: Time, end: Time, slices: &mut Vec<NnSlice>| {
        if end - start < T_EPS && !slices.is_empty() {
            return;
        }
        if let Some(last) = slices.last_mut() {
            if last.oid == oid {
                last.interval.end = end;
                return;
            }
        }
        slices.push(NnSlice {
            oid,
            interval: TimeInterval::new_unchecked(start, end),
        });
    };

    for w in cuts.windows(2) {
        let (s, e) = (w[0], w[1]);
        if e - s < T_EPS {
            continue;
        }
        let mid = (s + e) / 2.0;
        // Quadratics valid on this whole segment.
        let quads: Vec<[f64; 3]> = candidates
            .iter()
            .map(|(_, m)| m.dist_sq_quad_piece(&qrect, mid))
            .collect();
        let value = |i: usize, t: f64| {
            let [a, b, c] = quads[i];
            a * t * t + b * t + c
        };

        // Walk the envelope from s to e by earliest crossings.
        let mut cur = s;
        let mut owner = (0..candidates.len())
            .min_by(|&i, &j| {
                value(i, cur + T_EPS)
                    .partial_cmp(&value(j, cur + T_EPS))
                    .expect("finite distances")
            })
            .expect("non-empty candidates");
        let mut guard = 0;
        while cur < e {
            guard += 1;
            assert!(guard < 10_000, "envelope walk failed to converge");
            // Earliest time in (cur, e] where someone dips strictly
            // below the owner.
            let mut next_switch = e;
            let mut next_owner = owner;
            for j in 0..candidates.len() {
                if j == owner {
                    continue;
                }
                let [a1, b1, c1] = quads[owner];
                let [a2, b2, c2] = quads[j];
                let (da, db, dc) = (a1 - a2, b1 - b2, c1 - c2); // owner − j
                                                                // Roots of da·t² + db·t + dc = 0 where j goes below.
                let mut roots: [Option<f64>; 2] = [None, None];
                if da.abs() < 1e-30 {
                    if db.abs() > 1e-30 {
                        roots[0] = Some(-dc / db);
                    }
                } else {
                    let disc = db * db - 4.0 * da * dc;
                    if disc >= 0.0 {
                        let sq = disc.sqrt();
                        roots[0] = Some((-db - sq) / (2.0 * da));
                        roots[1] = Some((-db + sq) / (2.0 * da));
                    }
                }
                for r in roots.into_iter().flatten() {
                    if r > cur + T_EPS && r < next_switch {
                        // j must actually be below just after r.
                        let probe = (r + T_EPS).min(e);
                        if value(j, probe) < value(owner, probe) - 0.0 {
                            next_switch = r;
                            next_owner = j;
                        }
                    }
                }
            }
            push_slice(candidates[owner].0, cur, next_switch.min(e), &mut slices);
            cur = next_switch;
            owner = next_owner;
        }
    }
    slices
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    use std::sync::Arc;

    pub(crate) fn tree_with(objects: &[(u64, MovingRect)]) -> TprTree {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(64),
        );
        let mut tree = TprTree::new(pool, crate::TreeConfig::default());
        for &(id, mbr) in objects {
            tree.insert(ObjectId(id), mbr, 0.0).unwrap();
        }
        tree
    }

    pub(crate) fn pt(x: f64, y: f64, vx: f64, vy: f64) -> MovingRect {
        MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, vy], 0.0)
    }

    #[test]
    fn empty_tree_yields_empty_timeline() {
        let tree = tree_with(&[]);
        assert!(tree
            .nn_over_interval([0.0, 0.0], 0.0, 10.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn single_object_owns_whole_window() {
        let tree = tree_with(&[(1, pt(10.0, 0.0, -1.0, 0.0))]);
        let tl = tree.nn_over_interval([0.0, 0.0], 0.0, 30.0).unwrap();
        assert_eq!(tl.len(), 1);
        assert_eq!(tl[0].oid, ObjectId(1));
        assert_eq!(tl[0].interval, TimeInterval::new_unchecked(0.0, 30.0));
    }

    #[test]
    fn handover_between_two_objects() {
        // Object 1 sits near the query; object 2 flies past closer at
        // around t = 10.
        let near = pt(5.0, 0.0, 0.0, 0.0); // dist ≈ 4
        let flyby = pt(50.0, 0.0, -5.0, 0.0); // reaches x=0 at t=10
        let tree = tree_with(&[(1, near), (2, flyby)]);
        let tl = tree.nn_over_interval([0.0, 0.5], 0.0, 20.0).unwrap();
        let owners: Vec<_> = tl.iter().map(|s| s.oid).collect();
        assert_eq!(
            owners,
            vec![ObjectId(1), ObjectId(2), ObjectId(1)],
            "{tl:?}"
        );
        // Slices tile the window.
        assert_eq!(tl[0].interval.start, 0.0);
        assert_eq!(tl.last().unwrap().interval.end, 20.0);
        for w in tl.windows(2) {
            assert!((w[0].interval.end - w[1].interval.start).abs() < 1e-9);
        }
    }

    #[test]
    fn timeline_matches_brute_force_on_random_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..15 {
            let objects: Vec<(u64, MovingRect)> = (0..120)
                .map(|i| {
                    (
                        i,
                        pt(
                            rng.gen_range(0.0..400.0),
                            rng.gen_range(0.0..400.0),
                            rng.gen_range(-3.0..3.0),
                            rng.gen_range(-3.0..3.0),
                        ),
                    )
                })
                .collect();
            let tree = tree_with(&objects);
            let q = [rng.gen_range(0.0..400.0), rng.gen_range(0.0..400.0)];
            let (t0, t1) = (0.0, 60.0);
            let tl = tree.nn_over_interval(q, t0, t1).unwrap();
            assert!(!tl.is_empty());
            assert_eq!(tl[0].interval.start, t0);
            assert_eq!(tl.last().unwrap().interval.end, t1);

            // Sample: the reported owner's distance equals the true
            // minimum (compare distances, not ids, to tolerate ties).
            for k in 0..200 {
                let t = t0 + (t1 - t0) * (k as f64 + 0.5) / 200.0;
                let slice = tl
                    .iter()
                    .find(|s| s.interval.contains(t))
                    .unwrap_or_else(|| panic!("round {round}: no slice covers t={t}"));
                let owner_mbr = objects
                    .iter()
                    .find(|(id, _)| ObjectId(*id) == slice.oid)
                    .unwrap()
                    .1;
                let owner_d = owner_mbr.at(t).min_dist_sq(q);
                let best = objects
                    .iter()
                    .map(|(_, m)| m.at(t).min_dist_sq(q))
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    owner_d <= best + 1e-6 * (1.0 + best),
                    "round {round} t={t}: owner {} at {owner_d}, true best {best}",
                    slice.oid
                );
            }
        }
    }

    #[test]
    fn tc_clamped_window_is_prefix_of_full_window() {
        // §V: clamping te to ts + T_M must give the same timeline on the
        // shared prefix.
        let objects: Vec<(u64, MovingRect)> = (0..40)
            .map(|i| (i, pt(i as f64 * 9.0, (i % 7) as f64 * 11.0, 1.0, -0.5)))
            .collect();
        let tree = tree_with(&objects);
        let q = [100.0, 30.0];
        let full = tree.nn_over_interval(q, 0.0, 200.0).unwrap();
        let clamped = tree.nn_over_interval(q, 0.0, 60.0).unwrap();
        // Every clamped slice matches the corresponding full slice
        // clipped at 60.
        for (c, f) in clamped.iter().zip(full.iter()) {
            assert_eq!(c.oid, f.oid);
            assert!((c.interval.start - f.interval.start).abs() < 1e-9);
        }
        assert_eq!(clamped.last().unwrap().interval.end, 60.0);
    }
}

#[cfg(test)]
mod knn_candidate_tests {
    use super::tests::{pt, tree_with};
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn candidates_contain_knn_at_every_sampled_instant() {
        let mut rng = StdRng::seed_from_u64(3);
        for round in 0..10 {
            let objects: Vec<(u64, MovingRect)> = (0..150)
                .map(|i| {
                    (
                        i,
                        pt(
                            rng.gen_range(0.0..500.0),
                            rng.gen_range(0.0..500.0),
                            rng.gen_range(-3.0..3.0),
                            rng.gen_range(-3.0..3.0),
                        ),
                    )
                })
                .collect();
            let tree = tree_with(&objects);
            let q = [rng.gen_range(0.0..500.0), rng.gen_range(0.0..500.0)];
            for k in [1usize, 4, 10] {
                let candidates = tree.knn_candidates_interval(q, k, 0.0, 60.0).unwrap();
                let cand_ids: std::collections::HashSet<ObjectId> =
                    candidates.iter().map(|(o, _)| *o).collect();
                assert!(cand_ids.len() >= k.min(objects.len()));
                // At sampled times, the true kNN must be candidates.
                for s in 0..30 {
                    let t = 60.0 * (s as f64 + 0.5) / 30.0;
                    let mut scored: Vec<(f64, ObjectId)> = objects
                        .iter()
                        .map(|(id, m)| (m.at(t).min_dist_sq(q), ObjectId(*id)))
                        .collect();
                    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                    for (d, oid) in scored.iter().take(k) {
                        assert!(
                            cand_ids.contains(oid),
                            "round {round} k={k} t={t}: kNN member {oid} (d²={d}) not a candidate"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn candidates_shrink_with_window() {
        let objects: Vec<(u64, MovingRect)> = (0..100).map(pt_row).collect();
        fn pt_row(i: u64) -> (u64, MovingRect) {
            (i, super::tests::pt(i as f64 * 10.0, 0.0, -1.0, 0.0))
        }
        let tree = tree_with(&objects);
        let q = [0.0, 0.5];
        let short = tree.knn_candidates_interval(q, 2, 0.0, 5.0).unwrap();
        let long = tree.knn_candidates_interval(q, 2, 0.0, 300.0).unwrap();
        assert!(
            short.len() <= long.len(),
            "TC-clamped window must not need more candidates ({} vs {})",
            short.len(),
            long.len()
        );
    }

    #[test]
    fn k_zero_and_empty_tree() {
        let tree = tree_with(&[]);
        assert!(tree
            .knn_candidates_interval([0.0, 0.0], 3, 0.0, 10.0)
            .unwrap()
            .is_empty());
        let tree = tree_with(&[(1, pt(5.0, 5.0, 0.0, 0.0))]);
        assert!(tree
            .knn_candidates_interval([0.0, 0.0], 0, 0.0, 10.0)
            .unwrap()
            .is_empty());
    }
}
