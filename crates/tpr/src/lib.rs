//! # cij-tpr — a disk-resident TPR/TPR*-tree
//!
//! The access method underneath every join algorithm in *Continuous
//! Intersection Joins Over Moving Objects* (Zhang et al., ICDE 2008,
//! §II-B): a TPR-tree ([Šaltenis et al., SIGMOD 2000]) built with the
//! improved, integral-metric heuristics of the TPR*-tree ([Tao et al.,
//! VLDB 2003]).
//!
//! A TPR-tree is an R*-tree whose node regions carry velocity bounding
//! rectangles: a node's moving MBR conservatively bounds its children at
//! every future instant. Quality metrics that the R*-tree evaluates on
//! static rectangles (area, margin, overlap, center distance) become
//! *integrals over a horizon* `[t, t + H]`.
//!
//! Faithfulness notes (also in `DESIGN.md`):
//! * insertion chooses subtrees by minimal *enlargement integral*, with
//!   area-integral tie-break — the TPR/TPR* penalty;
//! * node overflow triggers one R*-style forced reinsert per level per
//!   insertion (the 30 % entries farthest from the node center over the
//!   horizon), then an R*-style split evaluated on margin/overlap/area
//!   integrals;
//! * deletion tightens bounds along the path (TPR*'s *active tightening*)
//!   and dissolves under-full nodes by reinsertion;
//! * nodes are serialized to 4 KB pages and all accesses go through the
//!   [`BufferPool`](cij_storage::BufferPool), so I/O counts follow the
//!   paper's methodology.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bulk;
mod config;
mod entry;
mod error;
mod nn_interval;
mod node;
mod tree;
mod view;

pub use config::TreeConfig;
pub use entry::{ChildRef, Entry, ObjectId};
pub use error::{TprError, TprResult};
pub use nn_interval::NnSlice;
pub use node::{Node, NODE_HEADER_BYTES};
pub use tree::{TprTree, TreeStats};
pub use view::{EntryLanes, NodeView, SOA_HEADER_BYTES, SOA_MAGIC, SOA_SLOTS, SOA_VERSION};
