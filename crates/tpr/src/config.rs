//! Tree tuning parameters.

use cij_geom::Time;

/// TPR-tree configuration.
///
/// Defaults match the paper's Table I: node capacity 30, and a horizon
/// equal to the default maximum update interval `T_M = 60` (the TPR-tree
/// literature sets the horizon to the expected time between index
/// rebuilds/updates; with TC processing every query window is at most `T_M`
/// long, so integrating penalties past `t + T_M` would optimize for
/// queries that never run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum number of entries per node (paper: 30).
    pub capacity: usize,
    /// Minimum number of entries per node, as a fraction of `capacity`
    /// (R*-tree convention: 40 %).
    pub min_fill: f64,
    /// Fraction of entries removed by a forced reinsert on overflow
    /// (R*-tree convention: 30 %).
    pub reinsert_fraction: f64,
    /// Horizon `H` over which integral penalties are evaluated.
    pub horizon: Time,
    /// R*-style forced reinsert on first overflow per level (default
    /// on). Off ⇒ overflow always splits — an ablation knob showing the
    /// R* heuristic's contribution.
    pub forced_reinsert: bool,
    /// Evaluate insertion/split penalties as *integrals over the
    /// horizon* (the TPR/TPR* innovation, default on) instead of
    /// instantaneous values at the operation time (plain R*-tree
    /// behaviour, which ignores motion). Ablation knob.
    pub integral_metrics: bool,
    /// Capacity (in nodes) of the decoded-node cache above the buffer
    /// pool; `0` disables it (the default, and the paper-faithful mode:
    /// with the cache on, hits bypass the pool entirely, so logical /
    /// physical I/O counts no longer follow the paper's methodology —
    /// mirrors the `threads: 1` precedent in `EngineConfig`).
    pub node_cache_capacity: usize,
    /// Write nodes in the legacy v1 (AoS) page encoding instead of the
    /// v2 SoA layout. Reads always accept both (the decoder dispatches
    /// on the page magic), so this knob exists for migration testing and
    /// for benchmarking the decode fallback — mixed-format trees are
    /// fully supported, and any rewrite of a node under the default
    /// setting upgrades its page to v2 in place.
    pub legacy_pages: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            capacity: 30,
            min_fill: 0.4,
            reinsert_fraction: 0.3,
            horizon: 60.0,
            forced_reinsert: true,
            integral_metrics: true,
            node_cache_capacity: 0,
            legacy_pages: false,
        }
    }
}

impl TreeConfig {
    /// Configuration with a given node capacity, other knobs default.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    /// Configuration with a given horizon, other knobs default.
    #[must_use]
    pub fn with_horizon(horizon: Time) -> Self {
        Self {
            horizon,
            ..Self::default()
        }
    }

    /// The same configuration with the decoded-node cache sized to
    /// `capacity` nodes (`0` disables it).
    #[must_use]
    pub fn with_node_cache(self, capacity: usize) -> Self {
        Self {
            node_cache_capacity: capacity,
            ..self
        }
    }

    /// The same configuration writing legacy v1 pages (see
    /// [`TreeConfig::legacy_pages`]).
    #[must_use]
    pub fn with_legacy_pages(self, legacy: bool) -> Self {
        Self {
            legacy_pages: legacy,
            ..self
        }
    }

    /// Minimum entry count for a non-root node.
    #[must_use]
    pub fn min_entries(&self) -> usize {
        ((self.capacity as f64 * self.min_fill) as usize).max(2)
    }

    /// Number of entries evicted by one forced reinsert.
    #[must_use]
    pub fn reinsert_count(&self) -> usize {
        ((self.capacity as f64 * self.reinsert_fraction) as usize).clamp(1, self.capacity / 2)
    }

    /// Validates the knobs; called by the tree constructor.
    ///
    /// # Panics
    /// Panics on nonsensical configurations (capacity < 4, fractions out
    /// of range, non-positive horizon) — these are programmer errors, not
    /// runtime conditions.
    pub fn assert_valid(&self) {
        assert!(self.capacity >= 4, "node capacity must be >= 4");
        assert!(
            self.min_fill > 0.0 && self.min_fill <= 0.5,
            "min_fill must be in (0, 0.5]"
        );
        assert!(
            self.reinsert_fraction > 0.0 && self.reinsert_fraction < 0.5,
            "reinsert_fraction must be in (0, 0.5)"
        );
        assert!(self.horizon > 0.0, "horizon must be positive");
        assert!(
            crate::node::Node::max_capacity() >= self.capacity,
            "capacity {} exceeds what fits in a page ({})",
            self.capacity,
            crate::node::Node::max_capacity()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let c = TreeConfig::default();
        assert_eq!(c.capacity, 30);
        assert_eq!(c.horizon, 60.0);
        assert_eq!(c.node_cache_capacity, 0, "paper mode: cache off");
        c.assert_valid();
    }

    #[test]
    fn with_node_cache_sets_only_the_cache() {
        let c = TreeConfig::with_capacity(12).with_node_cache(256);
        assert_eq!(c.capacity, 12);
        assert_eq!(c.node_cache_capacity, 256);
        c.assert_valid();
    }

    #[test]
    fn derived_counts() {
        let c = TreeConfig::default();
        assert_eq!(c.min_entries(), 12);
        assert_eq!(c.reinsert_count(), 9);
    }

    #[test]
    fn min_entries_never_below_two() {
        let c = TreeConfig {
            capacity: 4,
            ..TreeConfig::default()
        };
        assert_eq!(c.min_entries(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn tiny_capacity_rejected() {
        TreeConfig {
            capacity: 2,
            ..TreeConfig::default()
        }
        .assert_valid();
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        TreeConfig {
            horizon: 0.0,
            ..TreeConfig::default()
        }
        .assert_valid();
    }
}
