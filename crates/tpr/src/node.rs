//! In-memory node representation and its page codec.
//!
//! A node is a level tag plus up to `capacity` entries. Level 0 is the
//! leaf level (entries point at objects); higher levels point at child
//! pages. Nodes serialize into one 4 KB page each.
//!
//! Two on-page layouts exist: the current v2 structure-of-arrays layout
//! (see [`crate::view`]) that [`Node::to_page`] writes and
//! [`NodeView`](crate::NodeView) reads without decoding, and the legacy
//! v1 array-of-structs layout kept as a read-only migration path
//! ([`Node::from_page`] auto-detects it by magic; [`Node::to_page_legacy`]
//! still writes it for tests and round-trip proofs).

use cij_geom::{MovingRect, Time};
use cij_storage::codec::{PageReader, PageWriter};
use cij_storage::{PageBuf, PageId, StorageError, StorageResult, PAGE_SIZE};

use crate::entry::{ChildRef, Entry, ObjectId};
use crate::view::{NodeView, SOA_HEADER_BYTES, SOA_LANE_BYTES, SOA_MAGIC, SOA_VERSION};

/// Bytes of fixed legacy (v1) node header: magic (2) + level (1) +
/// pad (1) + count (2).
pub const NODE_HEADER_BYTES: usize = 6;

pub(crate) const NODE_MAGIC: u16 = 0x5452; // "TR" (legacy v1 layout)

const TAG_OBJECT: u8 = 0;
const TAG_PAGE: u8 = 1;

/// A deserialized tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// 0 for leaves, parents are children's level + 1.
    pub level: u8,
    /// The node's entries (≤ configured capacity; the codec enforces only
    /// the physical page bound).
    pub entries: Vec<Entry>,
}

impl Node {
    /// An empty node at `level`.
    #[must_use]
    pub fn new(level: u8) -> Self {
        Self {
            level,
            entries: Vec::new(),
        }
    }

    /// Whether this is a leaf node.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Maximum entry count that physically fits in one page.
    ///
    /// Both layouts must accept every node the tree can produce, so this
    /// is the v1 bound (50); the v2 lanes hold one slot more (51) and the
    /// difference is slack.
    #[must_use]
    pub fn max_capacity() -> usize {
        (PAGE_SIZE - NODE_HEADER_BYTES) / Entry::SERIALIZED_BYTES
    }

    /// The tightest moving rectangle bounding every entry from
    /// `max(entry t_refs)` onward. `None` for an empty node.
    #[must_use]
    pub fn bounding_mbr(&self) -> Option<MovingRect> {
        let mut it = self.entries.iter();
        let first = it.next()?.mbr;
        Some(it.fold(first, |acc, e| acc.union_moving(&e.mbr)))
    }

    /// Like [`bounding_mbr`](Self::bounding_mbr) but rebased to `t` so
    /// parent entries produced at different times stay comparable.
    #[must_use]
    pub fn bounding_mbr_at(&self, t: Time) -> Option<MovingRect> {
        self.bounding_mbr()
            .map(|m| if m.t_ref < t { m.rebase(t) } else { m })
    }

    /// Serializes into a fresh page buffer in the v2 SoA layout.
    pub fn to_page(&self) -> StorageResult<PageBuf> {
        if self.entries.len() > Self::max_capacity() {
            return Err(StorageError::Corrupt(format!(
                "entry count {} exceeds physical capacity {}",
                self.entries.len(),
                Self::max_capacity()
            )));
        }
        let mut page = cij_storage::zeroed_page();
        page[0..2].copy_from_slice(&SOA_MAGIC.to_le_bytes());
        page[2] = SOA_VERSION;
        page[3] = self.level;
        let count = u16::try_from(self.entries.len())
            .map_err(|_| StorageError::Corrupt("entry count > u16".into()))?;
        page[4..6].copy_from_slice(&count.to_le_bytes());
        // Lane-major writes: one sequential pass per field.
        let mut off = SOA_HEADER_BYTES;
        let mut lane = |page: &mut PageBuf, f: &mut dyn FnMut(&Entry) -> u64| {
            for (i, e) in self.entries.iter().enumerate() {
                let at = off + i * 8;
                page[at..at + 8].copy_from_slice(&f(e).to_le_bytes());
            }
            off += SOA_LANE_BYTES;
        };
        lane(&mut page, &mut |e| e.mbr.lo[0].to_bits());
        lane(&mut page, &mut |e| e.mbr.lo[1].to_bits());
        lane(&mut page, &mut |e| e.mbr.hi[0].to_bits());
        lane(&mut page, &mut |e| e.mbr.hi[1].to_bits());
        lane(&mut page, &mut |e| e.mbr.vlo[0].to_bits());
        lane(&mut page, &mut |e| e.mbr.vlo[1].to_bits());
        lane(&mut page, &mut |e| e.mbr.vhi[0].to_bits());
        lane(&mut page, &mut |e| e.mbr.vhi[1].to_bits());
        lane(&mut page, &mut |e| e.mbr.t_ref.to_bits());
        lane(&mut page, &mut |e| match e.child {
            ChildRef::Object(oid) => oid.0,
            ChildRef::Page(pid) => u64::from(pid.0),
        });
        Ok(page)
    }

    /// Serializes into a fresh page buffer in the legacy v1 (AoS) layout.
    ///
    /// Kept so the migration path stays exercised: round-trip tests prove
    /// v1 and v2 encodings decode bit-identically, and old files written
    /// by previous versions remain readable through [`Node::from_page`].
    pub fn to_page_legacy(&self) -> StorageResult<PageBuf> {
        let mut page = cij_storage::zeroed_page();
        let mut w = PageWriter::new(&mut page);
        w.put_u16(NODE_MAGIC)?;
        w.put_u8(self.level)?;
        w.put_u8(0)?; // pad
        let count = u16::try_from(self.entries.len())
            .map_err(|_| StorageError::Corrupt("entry count > u16".into()))?;
        w.put_u16(count)?;
        for e in &self.entries {
            match e.child {
                ChildRef::Object(oid) => {
                    w.put_u8(TAG_OBJECT)?;
                    w.put_u64(oid.0)?;
                }
                ChildRef::Page(pid) => {
                    w.put_u8(TAG_PAGE)?;
                    w.put_u64(u64::from(pid.0))?;
                }
            }
            let m = &e.mbr;
            for v in [
                m.lo[0], m.lo[1], m.hi[0], m.hi[1], m.vlo[0], m.vlo[1], m.vhi[0], m.vhi[1], m.t_ref,
            ] {
                w.put_f64(v)?;
            }
        }
        Ok(page)
    }

    /// Deserializes from a page buffer, auto-detecting the layout by
    /// magic: v2 (SoA) pages bulk-decode through [`NodeView`], legacy v1
    /// pages fall back to the sequential field-by-field decode.
    pub fn from_page(page: &[u8; PAGE_SIZE]) -> StorageResult<Self> {
        match NodeView::parse(page)? {
            Some(view) => Ok(view.to_node()),
            None => Self::from_page_legacy(page),
        }
    }

    /// Deserializes a legacy v1 (AoS) page.
    pub fn from_page_legacy(page: &[u8; PAGE_SIZE]) -> StorageResult<Self> {
        let mut r = PageReader::new(page);
        let magic = r.get_u16()?;
        if magic != NODE_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad node magic {magic:#06x} (expected {NODE_MAGIC:#06x})"
            )));
        }
        let level = r.get_u8()?;
        let _pad = r.get_u8()?;
        let count = r.get_u16()? as usize;
        if count > Self::max_capacity() {
            return Err(StorageError::Corrupt(format!(
                "entry count {count} exceeds physical capacity {}",
                Self::max_capacity()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = r.get_u8()?;
            let raw = r.get_u64()?;
            let child = match tag {
                TAG_OBJECT => ChildRef::Object(ObjectId(raw)),
                TAG_PAGE => {
                    let pid = u32::try_from(raw)
                        .map_err(|_| StorageError::Corrupt("page id > u32".into()))?;
                    ChildRef::Page(PageId(pid))
                }
                other => {
                    return Err(StorageError::Corrupt(format!("bad entry tag {other}")));
                }
            };
            let mut f = [0.0f64; 9];
            for v in &mut f {
                *v = r.get_f64()?;
            }
            if !(f[0] <= f[2] && f[1] <= f[3]) {
                return Err(StorageError::Corrupt(format!(
                    "inverted entry rect lo=({}, {}) hi=({}, {})",
                    f[0], f[1], f[2], f[3]
                )));
            }
            let mbr = MovingRect::new([f[0], f[1]], [f[2], f[3]], [f[4], f[5]], [f[6], f[7]], f[8]);
            entries.push(Entry { mbr, child });
        }
        // Levels must agree with entry kinds.
        let ok = entries.iter().all(|e| match e.child {
            ChildRef::Object(_) => level == 0,
            ChildRef::Page(_) => level > 0,
        });
        if !ok {
            return Err(StorageError::Corrupt(format!(
                "entry kinds inconsistent with level {level}"
            )));
        }
        Ok(Self { level, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;

    fn sample_node(level: u8, n: usize) -> Node {
        let mut node = Node::new(level);
        for i in 0..n {
            let x = i as f64 * 3.0;
            let mbr = MovingRect::rigid(
                Rect::new([x, -x], [x + 1.5, -x + 2.0]),
                [0.5 * i as f64, -1.0],
                i as f64 / 7.0,
            );
            let child = if level == 0 {
                ChildRef::Object(ObjectId(i as u64 + 100))
            } else {
                ChildRef::Page(PageId(i as u32 + 5))
            };
            node.entries.push(Entry { mbr, child });
        }
        node
    }

    #[test]
    fn roundtrip_leaf() {
        let node = sample_node(0, 17);
        let page = node.to_page().unwrap();
        let back = Node::from_page(&page).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn roundtrip_internal() {
        let node = sample_node(3, 30);
        let page = node.to_page().unwrap();
        let back = Node::from_page(&page).unwrap();
        assert_eq!(node, back);
    }

    #[test]
    fn roundtrip_empty() {
        let node = Node::new(0);
        let back = Node::from_page(&node.to_page().unwrap()).unwrap();
        assert_eq!(back.entries.len(), 0);
        assert!(back.is_leaf());
    }

    #[test]
    fn physical_capacity_exceeds_table_i() {
        assert!(Node::max_capacity() >= 30, "got {}", Node::max_capacity());
    }

    #[test]
    fn garbage_page_is_rejected() {
        let mut page = cij_storage::zeroed_page();
        page[0] = 0xFF;
        page[1] = 0xFF;
        assert!(matches!(
            Node::from_page(&page),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn legacy_level_entry_kind_mismatch_rejected() {
        // Serialize a v1 leaf then flip its level byte to 1: the per-entry
        // tags no longer agree with the level. (The v2 layout has no tags
        // to disagree — entry kind is *derived* from the level.)
        let node = sample_node(0, 2);
        let mut page = node.to_page_legacy().unwrap();
        page[2] = 1;
        assert!(matches!(
            Node::from_page(&page),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn inverted_rect_rejected() {
        let node = sample_node(0, 1);
        let mut page = node.to_page().unwrap();
        // lo.x of entry 0 is the first element of the first v2 lane.
        let off = crate::view::SOA_HEADER_BYTES;
        page[off..off + 8].copy_from_slice(&1e9f64.to_le_bytes());
        assert!(matches!(
            Node::from_page(&page),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn legacy_inverted_rect_rejected() {
        let node = sample_node(0, 1);
        let mut page = node.to_page_legacy().unwrap();
        // lo.x is the first f64 of the first entry: header 6 + tag 1 + ref 8.
        let off = 15;
        page[off..off + 8].copy_from_slice(&1e9f64.to_le_bytes());
        assert!(matches!(
            Node::from_page(&page),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn legacy_page_decodes_identically() {
        // The one-time migration shim: a page written in the v1 layout
        // decodes to the same node a v2 round trip produces.
        for (level, n) in [(0u8, 17usize), (3, 30), (0, 0)] {
            let node = sample_node(level, n);
            let legacy = Node::from_page(&node.to_page_legacy().unwrap()).unwrap();
            let soa = Node::from_page(&node.to_page().unwrap()).unwrap();
            assert_eq!(legacy, node);
            assert_eq!(soa, node);
        }
    }

    #[test]
    fn overfull_node_refuses_to_serialize() {
        let node = sample_node(0, Node::max_capacity() + 1);
        assert!(matches!(node.to_page(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn bounding_mbr_covers_entries() {
        let node = sample_node(0, 10);
        let mbr = node.bounding_mbr().unwrap();
        let t0 = mbr.t_ref;
        for t in [t0, t0 + 10.0, t0 + 60.0] {
            for e in &node.entries {
                assert!(mbr.at(t).contains_rect_eps(&e.mbr.at(t), 1e-9));
            }
        }
    }

    #[test]
    fn bounding_mbr_empty_is_none() {
        assert!(Node::new(0).bounding_mbr().is_none());
    }

    #[test]
    fn bounding_mbr_at_rebases_forward_only() {
        let node = sample_node(0, 3);
        let raw = node.bounding_mbr().unwrap();
        let later = node.bounding_mbr_at(raw.t_ref + 5.0).unwrap();
        assert_eq!(later.t_ref, raw.t_ref + 5.0);
        // Asking for an earlier reference must not rewind (bounds are only
        // valid forward in time).
        let earlier = node.bounding_mbr_at(raw.t_ref - 5.0).unwrap();
        assert_eq!(earlier.t_ref, raw.t_ref);
    }
}
