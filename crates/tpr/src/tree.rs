//! The TPR-tree proper: disk-resident insert/delete/update and queries.
//!
//! Structure-modifying operations follow the R*-tree skeleton with the
//! TPR/TPR* twist that every quality metric is an integral over the
//! horizon `[now, now + H]`:
//!
//! * **choose subtree** — minimal enlargement integral, area-integral
//!   tie-break;
//! * **overflow** — one forced reinsert per level per operation (the
//!   `reinsert_fraction` entries whose centers stray farthest from the
//!   node center over the horizon), then an R*-style split choosing the
//!   axis by margin integral and the distribution by overlap integral;
//! * **underflow** — dissolve the node and reinsert the orphaned entries
//!   at their level (classic `CondenseTree`);
//! * **active tightening** — every write-back recomputes the parent
//!   entry's bound from the child's current entries, rebased to `now`.

use std::collections::HashSet;
use std::sync::Arc;

use cij_geom::{MovingRect, Rect, Time, TimeInterval};
use cij_storage::{
    BufferPool, CacheSnapshot, CacheStats, DecodedCache, PageId, StorageResult, PAGE_SIZE,
};

use crate::config::TreeConfig;
use crate::entry::{ChildRef, Entry, ObjectId};
use crate::error::{TprError, TprResult};
use crate::node::Node;
use crate::view::{EntryLanes, NodeView};

/// A disk-resident TPR-tree over moving rectangles.
///
/// ```
/// use std::sync::Arc;
/// use cij_geom::{MovingRect, Rect};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut tree = TprTree::new(pool, TreeConfig::default());
///
/// // A unit square at (10, 10) moving right at 2 units per tick.
/// let car = MovingRect::rigid(Rect::new([10.0, 10.0], [11.0, 11.0]), [2.0, 0.0], 0.0);
/// tree.insert(ObjectId(1), car, 0.0)?;
///
/// // Timeslice query at t = 20: the car is near x = 50 by then.
/// let hits = tree.range_at(&Rect::new([49.0, 9.0], [52.0, 12.0]), 20.0)?;
/// assert_eq!(hits, vec![ObjectId(1)]);
///
/// // When does it cross a toll line at x ∈ [100, 101]?
/// let toll = MovingRect::stationary(Rect::new([100.0, 0.0], [101.0, 1000.0]), 0.0);
/// let crossings = tree.intersect_window(&toll, 0.0, 60.0)?;
/// assert_eq!(crossings.len(), 1);
/// assert!((crossings[0].1.start - 44.5).abs() < 1e-9);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub struct TprTree {
    pool: BufferPool,
    config: TreeConfig,
    /// Decoded-node cache above the pool; `None` when
    /// `config.node_cache_capacity == 0` (the paper-faithful default).
    cache: Option<DecodedCache<Node>>,
    root: Option<PageId>,
    /// Number of levels (0 when empty; root level = height − 1).
    height: u32,
    /// Number of data objects.
    len: usize,
    /// Page-format counters: zero-copy SoA reads vs legacy decode
    /// fallbacks. Only the two `storage.page.*` fields are ever non-zero
    /// here; merged into [`Self::node_cache_stats`] when a cache exists.
    format_stats: CacheStats,
}

/// Aggregate statistics returned by [`TprTree::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of levels (1 = the root is a leaf).
    pub height: u32,
    /// Total node count.
    pub nodes: usize,
    /// Total leaf count.
    pub leaves: usize,
    /// Number of indexed objects.
    pub objects: usize,
}

struct PathStep {
    page: PageId,
    node: Node,
    /// Index within `node.entries` of the child the path continues into
    /// (unused for the last step).
    child_idx: usize,
}

impl TprTree {
    /// Creates an empty tree whose nodes live in `pool`.
    ///
    /// # Panics
    /// Panics when `config` is invalid (see [`TreeConfig::assert_valid`]).
    #[must_use]
    pub fn new(pool: BufferPool, config: TreeConfig) -> Self {
        config.assert_valid();
        // Stripe the cache like the pool so parallel traversals that
        // already avoid pool-shard contention avoid cache contention too.
        let cache = (config.node_cache_capacity > 0)
            .then(|| DecodedCache::new(config.node_cache_capacity, pool.shard_count()));
        Self {
            pool,
            config,
            cache,
            root: None,
            height: 0,
            len: 0,
            format_stats: CacheStats::new(),
        }
    }

    /// The tree's configuration.
    #[must_use]
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// The buffer pool the tree reads and writes through.
    #[must_use]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root page, `None` when empty.
    #[must_use]
    pub fn root_page(&self) -> Option<PageId> {
        self.root
    }

    /// Number of levels (0 when empty, 1 when the root is a leaf).
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Reads and decodes a node through the buffer pool (counts I/O).
    ///
    /// With the decoded-node cache enabled, a cache hit skips the pool —
    /// and its I/O accounting — entirely; the returned owned `Node` is a
    /// flat memcpy of the cached one (no page parsing). Traversals that
    /// only need shared access should prefer
    /// [`read_node_arc`](Self::read_node_arc), which is allocation-free
    /// on hits.
    pub fn read_node(&self, page: PageId) -> TprResult<Node> {
        if self.cache.is_some() {
            return Ok((*self.read_node_arc(page)?).clone());
        }
        let node = self
            .pool
            .read(page, |p| self.decode_page(p))
            .map_err(TprError::from)??;
        Ok(node)
    }

    /// Decodes a page, counting whether the zero-copy SoA view or the
    /// legacy v1 decoder served it. Behaviourally identical to
    /// [`Node::from_page`].
    fn decode_page(&self, page: &[u8; PAGE_SIZE]) -> StorageResult<Node> {
        match NodeView::parse(page)? {
            Some(view) => {
                self.format_stats.record_zero_copy_read();
                Ok(view.to_node())
            }
            None => {
                self.format_stats.record_decode_fallback();
                Node::from_page_legacy(page)
            }
        }
    }

    /// Reads a node's entries straight into SoA `lanes` without
    /// materialising a [`Node`]. On a v2 page this is a zero-copy lane
    /// copy (no per-entry decode, no `Vec<Entry>` allocation); legacy v1
    /// pages fall back to a full decode. Counts one logical read exactly
    /// like [`read_node`](Self::read_node) with the cache disabled.
    pub fn read_node_lanes(&self, page: PageId, lanes: &mut EntryLanes) -> TprResult<()> {
        self.pool
            .read(page, |p| -> StorageResult<()> {
                match NodeView::parse(p)? {
                    Some(view) => {
                        self.format_stats.record_zero_copy_read();
                        lanes.fill_from_view(&view);
                    }
                    None => {
                        self.format_stats.record_decode_fallback();
                        lanes.fill_from_node(&Node::from_page_legacy(p)?);
                    }
                }
                Ok(())
            })
            .map_err(TprError::from)??;
        Ok(())
    }

    /// Reads a node as a shared immutable [`Arc`]. On a decoded-cache hit
    /// this returns a clone of the cached `Arc` — zero parsing, zero
    /// allocation. On a miss (or with the cache disabled) the node is
    /// decoded through the pool exactly like [`read_node`](Self::read_node);
    /// miss-fills are generation-stamped so a concurrent writer can never
    /// leave a stale node behind.
    pub fn read_node_arc(&self, page: PageId) -> TprResult<Arc<Node>> {
        let Some(cache) = &self.cache else {
            let node = self
                .pool
                .read(page, |p| self.decode_page(p))
                .map_err(TprError::from)??;
            return Ok(Arc::new(node));
        };
        if let Some(node) = cache.get(page) {
            return Ok(node);
        }
        let gen = cache.begin_insert(page);
        let node = Arc::new(
            self.pool
                .read(page, |p| self.decode_page(p))
                .map_err(TprError::from)??,
        );
        cache.try_insert(page, Arc::clone(&node), gen);
        Ok(node)
    }

    fn write_node(&self, page: PageId, node: &Node) -> TprResult<()> {
        let buf = if self.config.legacy_pages {
            node.to_page_legacy()?
        } else {
            node.to_page()?
        };
        // Consistency rule: the cache learns of the new contents *before*
        // the page write lands, so no reader can decode the old bytes and
        // install them afterwards (the install bumps the generation,
        // rejecting any in-flight stale fill).
        if let Some(cache) = &self.cache {
            cache.install(page, Arc::new(node.clone()));
        }
        self.pool.write(page, &buf)?;
        Ok(())
    }

    /// Frees `page`, dropping any cached decoded copy first (writer
    /// invalidates before unpin).
    fn free_page(&self, page: PageId) -> TprResult<()> {
        if let Some(cache) = &self.cache {
            cache.invalidate(page);
        }
        self.pool.free(page).map_err(TprError::from)
    }

    /// Counters of the decoded-node cache, with this tree's page-format
    /// counters (zero-copy reads / decode fallbacks) folded in; `None`
    /// when the cache is disabled (`node_cache_capacity == 0`).
    #[must_use]
    pub fn node_cache_stats(&self) -> Option<CacheSnapshot> {
        self.cache
            .as_ref()
            .map(|c| c.snapshot().merged(&self.format_stats.snapshot()))
    }

    /// Whether this tree runs with a decoded-node cache.
    #[must_use]
    pub fn has_node_cache(&self) -> bool {
        self.cache.is_some()
    }

    /// Page-format counters alone (zero-copy SoA reads vs legacy decode
    /// fallbacks), available regardless of cache configuration.
    #[must_use]
    pub fn page_format_stats(&self) -> CacheSnapshot {
        self.format_stats.snapshot()
    }

    /// Switches the page encoding used for subsequent node writes (see
    /// [`TreeConfig::legacy_pages`]). Flipping a legacy tree to `false`
    /// is the migration path: reads accept both formats, and every node
    /// rewrite upgrades its page to v2 in place.
    pub fn set_legacy_pages(&mut self, legacy: bool) {
        self.config.legacy_pages = legacy;
    }

    /// Drops every cached decoded node (counters are kept). No-op when
    /// the cache is disabled. Pairs with `pool().clear()` in cold-cache
    /// measurements.
    pub fn clear_node_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }

    /// Installs a bulk-loaded subtree as the tree's root (bulk loader
    /// support; the pages are already written).
    pub(crate) fn adopt_packed_root(&mut self, root: PageId, height: u32, len: usize) {
        debug_assert!(self.root.is_none(), "adopting a root into a non-empty tree");
        self.root = Some(root);
        self.height = height;
        self.len = len;
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Inserts object `oid` with trajectory `mbr`. `now` is the current
    /// timestamp (insertions always happen at the present; `mbr.t_ref`
    /// is typically `now`).
    pub fn insert(&mut self, oid: ObjectId, mbr: MovingRect, now: Time) -> TprResult<()> {
        let entry = Entry::object(oid, mbr);
        let mut reinserted_levels = HashSet::new();
        self.insert_entry(entry, 0, now, &mut reinserted_levels)?;
        self.len += 1;
        Ok(())
    }

    /// Inserts `entry` into a node at `target_level`, growing the tree as
    /// needed. `reinserted_levels` limits forced reinserts to one per
    /// level per top-level operation (R* rule).
    fn insert_entry(
        &mut self,
        entry: Entry,
        target_level: u8,
        now: Time,
        reinserted_levels: &mut HashSet<u8>,
    ) -> TprResult<()> {
        let Some(root) = self.root else {
            // First entry: the root is born as a node at the target level
            // (target_level > 0 cannot happen on an empty tree — orphan
            // reinserts only occur on non-empty trees).
            debug_assert_eq!(target_level, 0, "orphan reinsert into empty tree");
            let mut node = Node::new(target_level);
            node.entries.push(entry);
            let page = self.pool.allocate();
            self.write_node(page, &node)?;
            self.root = Some(page);
            self.height = u32::from(target_level) + 1;
            return Ok(());
        };

        let mut path = self.choose_path(root, &entry.mbr, target_level, now)?;
        path.last_mut()
            .expect("choose_path returns at least the root")
            .node
            .entries
            .push(entry);
        self.resolve_overflow(path, now, reinserted_levels)
    }

    /// Descends from `root` to a node at `target_level`, minimizing the
    /// enlargement integral at every step.
    fn choose_path(
        &self,
        root: PageId,
        mbr: &MovingRect,
        target_level: u8,
        now: Time,
    ) -> TprResult<Vec<PathStep>> {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut page = root;
        loop {
            let node = self.read_node(page)?;
            if node.level == target_level {
                path.push(PathStep {
                    page,
                    node,
                    child_idx: usize::MAX,
                });
                return Ok(path);
            }
            if node.level < target_level || node.is_leaf() {
                return Err(TprError::CorruptNode {
                    detail: format!(
                        "reached level {} searching for level {target_level}",
                        node.level
                    ),
                });
            }
            let idx = self.pick_child(&node, mbr, now);
            let next = node.entries[idx].child.page();
            path.push(PathStep {
                page,
                node,
                child_idx: idx,
            });
            page = next;
        }
    }

    /// The TPR/TPR* choose-subtree penalty: minimal enlargement integral
    /// over the horizon, ties broken by smaller area integral. With
    /// `integral_metrics` off, plain R* instantaneous penalties at `now`
    /// (the ablation baseline that ignores motion).
    fn pick_child(&self, node: &Node, mbr: &MovingRect, now: Time) -> usize {
        let h_end = now + self.config.horizon;
        let mut best = 0;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in node.entries.iter().enumerate() {
            let (enl, area) = if self.config.integral_metrics {
                // Integrate from the later of `now` and the entry's
                // reference time — bounds are undefined before their
                // reference.
                let t0 = now.max(e.mbr.t_ref);
                let t1 = h_end.max(t0);
                (
                    e.mbr.enlargement_integral(mbr, t0, t1),
                    e.mbr.area_integral(t0, t1),
                )
            } else {
                let t = now.max(e.mbr.t_ref);
                let here = e.mbr.at(t);
                let grown = here.union(&mbr.at(t));
                (grown.area() - here.area(), here.area())
            };
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Walks the path bottom-up handling overflows (forced reinsert or
    /// split) and tightening parent bounds.
    fn resolve_overflow(
        &mut self,
        mut path: Vec<PathStep>,
        now: Time,
        reinserted_levels: &mut HashSet<u8>,
    ) -> TprResult<()> {
        // Entries evicted by forced reinserts: (entry, target node level).
        let mut pending_reinserts: Vec<(Entry, u8)> = Vec::new();
        // The sibling entry produced by a split at the level below, to be
        // added to the current node.
        let mut carry: Option<Entry> = None;

        while let Some(mut step) = path.pop() {
            if let Some(sibling_entry) = carry.take() {
                step.node.entries.push(sibling_entry);
            }

            if step.node.entries.len() <= self.config.capacity {
                self.write_node(step.page, &step.node)?;
                self.tighten_parent(&mut path, &step.node, now)?;
                continue;
            }

            let level = step.node.level;
            let is_root = path.is_empty();
            if self.config.forced_reinsert && !is_root && !reinserted_levels.contains(&level) {
                // Forced reinsert: evict the entries farthest from the
                // node center over the horizon, keep the node, and replay
                // them as fresh insertions afterwards.
                reinserted_levels.insert(level);
                let evicted = self.evict_for_reinsert(&mut step.node, now);
                self.write_node(step.page, &step.node)?;
                self.tighten_parent(&mut path, &step.node, now)?;
                pending_reinserts.extend(evicted.into_iter().map(|e| (e, level)));
                continue;
            }

            // Split.
            let (left, right) = self.split_node(step.node, now);
            let right_page = self.pool.allocate();
            self.write_node(step.page, &left)?;
            self.write_node(right_page, &right)?;
            let left_mbr = left
                .bounding_mbr_at(now)
                .expect("split halves are non-empty");
            let right_mbr = right
                .bounding_mbr_at(now)
                .expect("split halves are non-empty");

            if is_root {
                let mut new_root = Node::new(level + 1);
                new_root.entries.push(Entry::node(step.page, left_mbr));
                new_root.entries.push(Entry::node(right_page, right_mbr));
                let root_page = self.pool.allocate();
                self.write_node(root_page, &new_root)?;
                self.root = Some(root_page);
                self.height += 1;
            } else {
                let parent = path.last_mut().expect("non-root has a parent");
                parent.node.entries[parent.child_idx].mbr = left_mbr;
                carry = Some(Entry::node(right_page, right_mbr));
            }
        }

        // Replay evicted entries now that the tree is consistent.
        for (entry, level) in pending_reinserts {
            self.insert_entry(entry, level, now, reinserted_levels)?;
        }
        Ok(())
    }

    /// Refreshes the parent's bound of the just-written child (active
    /// tightening). The parent node is only mutated in memory here; it is
    /// written back when its own turn in `resolve_overflow` comes.
    fn tighten_parent(&self, path: &mut [PathStep], child: &Node, now: Time) -> TprResult<()> {
        if let Some(parent) = path.last_mut() {
            let mbr = child
                .bounding_mbr_at(now)
                .ok_or_else(|| TprError::CorruptNode {
                    detail: "empty non-root child".into(),
                })?;
            parent.node.entries[parent.child_idx].mbr = mbr;
        }
        Ok(())
    }

    /// Removes the `reinsert_count` entries whose centers stray farthest
    /// from the node's center over the horizon (sampled at `now + H/2`).
    fn evict_for_reinsert(&self, node: &mut Node, now: Time) -> Vec<Entry> {
        let t_mid = if self.config.integral_metrics {
            now + self.config.horizon / 2.0
        } else {
            now
        };
        let center_of = |m: &MovingRect| m.at(t_mid).center();
        let node_mbr = node.bounding_mbr().expect("overflowing node is non-empty");
        let c = center_of(&node_mbr);
        let mut scored: Vec<(f64, usize)> = node
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let ec = center_of(&e.mbr);
                let dx = ec[0] - c[0];
                let dy = ec[1] - c[1];
                (dx * dx + dy * dy, i)
            })
            .collect();
        // Farthest first.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));
        let k = self
            .config
            .reinsert_count()
            .min(node.entries.len().saturating_sub(1));
        let mut evict_idx: Vec<usize> = scored[..k].iter().map(|&(_, i)| i).collect();
        evict_idx.sort_unstable_by(|a, b| b.cmp(a)); // remove back-to-front
        let mut evicted: Vec<Entry> = evict_idx
            .into_iter()
            .map(|i| node.entries.swap_remove(i))
            .collect();
        // R* reinserts in *close-first* order: nearest evicted first.
        evicted.sort_by(|a, b| {
            let da = {
                let ec = center_of(&a.mbr);
                (ec[0] - c[0]).powi(2) + (ec[1] - c[1]).powi(2)
            };
            let db = {
                let ec = center_of(&b.mbr);
                (ec[0] - c[0]).powi(2) + (ec[1] - c[1]).powi(2)
            };
            da.partial_cmp(&db).expect("finite distances")
        });
        evicted
    }

    /// R*-style split on integral metrics: axis by minimal margin-integral
    /// sum, distribution by minimal overlap integral (ties: total area
    /// integral).
    fn split_node(&self, node: Node, now: Time) -> (Node, Node) {
        let level = node.level;
        let min = self.config.min_entries();
        let n = node.entries.len();
        debug_assert!(n > self.config.capacity);
        let t0 = now;
        let t1 = now + self.config.horizon;

        let union_mbr = |entries: &[Entry]| -> MovingRect {
            let mut it = entries.iter();
            let first = it.next().expect("non-empty group").mbr;
            it.fold(first, |acc, e| acc.union_moving(&e.mbr))
        };

        let mut best: Option<(f64, f64, usize, Vec<Entry>)> = None; // (overlap, area, split_at, sorted)
        for axis in 0..cij_geom::DIMS {
            for by_upper in [false, true] {
                let mut sorted = node.entries.clone();
                sorted.sort_by(|a, b| {
                    let ka = if by_upper {
                        a.mbr.hi_at(axis, now)
                    } else {
                        a.mbr.lo_at(axis, now)
                    };
                    let kb = if by_upper {
                        b.mbr.hi_at(axis, now)
                    } else {
                        b.mbr.lo_at(axis, now)
                    };
                    ka.partial_cmp(&kb).expect("finite coordinates")
                });
                // Margin sum decides the axis in R*; folding it into one
                // pass with the distribution choice (margin as a third
                // tie-break) keeps quality while halving the scans.
                for split_at in min..=(n - min) {
                    let g1 = union_mbr(&sorted[..split_at]);
                    let g2 = union_mbr(&sorted[split_at..]);
                    let s0 = t0.max(g1.t_ref).max(g2.t_ref);
                    let s1 = t1.max(s0);
                    let (overlap, area) = if self.config.integral_metrics {
                        (
                            g1.overlap_integral(&g2, s0, s1),
                            g1.area_integral(s0, s1) + g2.area_integral(s0, s1),
                        )
                    } else {
                        let (r1, r2) = (g1.at(s0), g2.at(s0));
                        (r1.overlap_area(&r2), r1.area() + r2.area())
                    };
                    let better = match &best {
                        None => true,
                        Some((bo, ba, _, _)) => overlap < *bo || (overlap == *bo && area < *ba),
                    };
                    if better {
                        best = Some((overlap, area, split_at, sorted.clone()));
                    }
                }
            }
        }
        let (_, _, split_at, sorted) = best.expect("at least one distribution considered");
        let mut left = Node::new(level);
        let mut right = Node::new(level);
        left.entries = sorted[..split_at].to_vec();
        right.entries = sorted[split_at..].to_vec();
        (left, right)
    }

    // ------------------------------------------------------------------
    // Delete / update
    // ------------------------------------------------------------------

    /// Deletes object `oid`, locating it via its registered trajectory
    /// `mbr` (the exact `MovingRect` previously inserted). `now` is the
    /// current timestamp.
    pub fn delete(&mut self, oid: ObjectId, mbr: &MovingRect, now: Time) -> TprResult<()> {
        let Some(root) = self.root else {
            return Err(TprError::ObjectNotFound(oid));
        };
        let mut path: Vec<PathStep> = Vec::new();
        if !self.find_leaf(root, oid, mbr, now, &mut path)? {
            return Err(TprError::ObjectNotFound(oid));
        }

        // Remove the entry from the leaf (last path step).
        let leaf = path.last_mut().expect("find_leaf populated the path");
        let pos = leaf
            .node
            .entries
            .iter()
            .position(|e| e.child == ChildRef::Object(oid))
            .expect("find_leaf verified membership");
        leaf.node.entries.remove(pos);
        self.len -= 1;

        // Condense: dissolve under-full nodes, collecting orphans.
        let mut orphans: Vec<(Entry, u8)> = Vec::new();
        while let Some(step) = path.pop() {
            let is_root = path.is_empty();
            if !is_root && step.node.entries.len() < self.config.min_entries() {
                // Dissolve this node: orphan its entries, drop it from its
                // parent.
                let level = step.node.level;
                orphans.extend(step.node.entries.into_iter().map(|e| (e, level)));
                self.free_page(step.page)?;
                let parent = path.last_mut().expect("non-root has a parent");
                parent.node.entries.remove(parent.child_idx);
                // Removing shifts sibling indices; the parent's own
                // child_idx (into *its* parent) is unaffected.
                continue;
            }
            self.write_node(step.page, &step.node)?;
            if let Some(parent) = path.last_mut() {
                if step.node.entries.is_empty() {
                    // Empty root-adjacent node can only be the root itself;
                    // guarded by is_root above.
                    unreachable!("non-root empty node should have been dissolved");
                }
                let mbr = step
                    .node
                    .bounding_mbr_at(now)
                    .expect("non-empty node has a bound");
                parent.node.entries[parent.child_idx].mbr = mbr;
            }
        }

        // Reinsert orphans (node entries keep their level; leaf-level
        // object entries go back to level 0).
        let mut reinserted_levels = HashSet::new();
        for (entry, level) in orphans {
            // The dissolved node lived at `level`; its entries must land
            // in a node at the same level again.
            self.insert_entry(entry, level, now, &mut reinserted_levels)?;
        }

        self.shrink_root()?;
        Ok(())
    }

    /// Replaces object `oid`'s trajectory: the paper's *update* — delete
    /// with the old trajectory, insert with the new one.
    pub fn update(
        &mut self,
        oid: ObjectId,
        old_mbr: &MovingRect,
        new_mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        self.delete(oid, old_mbr, now)?;
        self.insert(oid, new_mbr, now)
    }

    /// DFS for the leaf containing `oid`; fills `path` root→leaf on
    /// success. Children are pruned by rectangle intersection at `now`
    /// (a parent bounds its child at every `t` not earlier than both
    /// reference times, and `now` is never earlier than any write).
    fn find_leaf(
        &self,
        page: PageId,
        oid: ObjectId,
        mbr: &MovingRect,
        now: Time,
        path: &mut Vec<PathStep>,
    ) -> TprResult<bool> {
        let node = self.read_node(page)?;
        let target = mbr.at(now);
        if node.is_leaf() {
            let found = node
                .entries
                .iter()
                .any(|e| e.child == ChildRef::Object(oid));
            if found {
                path.push(PathStep {
                    page,
                    node,
                    child_idx: usize::MAX,
                });
            }
            return Ok(found);
        }
        for (i, e) in node.entries.iter().enumerate() {
            if e.mbr.at(now).intersects(&target) {
                let child = e.child.page();
                path.push(PathStep {
                    page,
                    node: node.clone(),
                    child_idx: i,
                });
                if self.find_leaf(child, oid, mbr, now, path)? {
                    return Ok(true);
                }
                path.pop();
            }
        }
        Ok(false)
    }

    /// Collapses trivial roots: a non-leaf root with a single child makes
    /// the child the new root; an empty leaf root empties the tree.
    fn shrink_root(&mut self) -> TprResult<()> {
        loop {
            let Some(root) = self.root else { return Ok(()) };
            let node = self.read_node_arc(root)?;
            if node.is_leaf() {
                if node.entries.is_empty() {
                    self.free_page(root)?;
                    self.root = None;
                    self.height = 0;
                }
                return Ok(());
            }
            if node.entries.len() == 1 {
                let child = node.entries[0].child.page();
                self.free_page(root)?;
                self.root = Some(child);
                self.height -= 1;
                continue;
            }
            return Ok(());
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Objects whose rectangle intersects `window` at instant `t`
    /// (timeslice query).
    pub fn range_at(&self, window: &Rect, t: Time) -> TprResult<Vec<ObjectId>> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            let node = self.read_node_arc(page)?;
            for e in &node.entries {
                if e.mbr.at(t).intersects(window) {
                    match e.child {
                        ChildRef::Object(oid) => out.push(oid),
                        ChildRef::Page(p) => stack.push(p),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Like [`range_at`](Self::range_at) but returns the stored
    /// trajectories alongside the ids — for consumers that maintain
    /// their own working copies (e.g. kNN candidate sets).
    pub fn range_entries_at(
        &self,
        window: &Rect,
        t: Time,
    ) -> TprResult<Vec<(ObjectId, MovingRect)>> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            let node = self.read_node_arc(page)?;
            for e in &node.entries {
                if e.mbr.at(t).intersects(window) {
                    match e.child {
                        ChildRef::Object(oid) => out.push((oid, e.mbr)),
                        ChildRef::Page(p) => stack.push(p),
                    }
                }
            }
        }
        Ok(out)
    }

    /// Objects whose trajectory intersects the moving rectangle `target`
    /// at some instant within `[t_s, t_e]`, with the intersection
    /// sub-interval. This is the single-object join used for maintenance
    /// (joining one updated object against a whole tree) and for
    /// TC-window queries.
    pub fn intersect_window(
        &self,
        target: &MovingRect,
        t_s: Time,
        t_e: Time,
    ) -> TprResult<Vec<(ObjectId, TimeInterval)>> {
        let mut out = Vec::new();
        let Some(root) = self.root else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            let node = self.read_node_arc(page)?;
            for e in &node.entries {
                if let Some(iv) = e.mbr.intersect_interval(target, t_s, t_e) {
                    match e.child {
                        ChildRef::Object(oid) => out.push((oid, iv)),
                        ChildRef::Page(p) => stack.push(p),
                    }
                }
            }
        }
        Ok(out)
    }

    /// The `k` objects nearest to point `q` at instant `t` (timeslice
    /// kNN), as `(oid, squared distance)` sorted nearest-first.
    ///
    /// Best-first search on `MINDIST` between `q` and node regions
    /// frozen at `t` — the TPR-tree kNN of Benetis et al. restricted to
    /// one timestamp, which is the §V building block for TC-processed
    /// continuous kNN monitoring.
    pub fn knn_at(&self, q: [f64; 2], k: usize, t: Time) -> TprResult<Vec<(ObjectId, f64)>> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct D(f64);
        impl Eq for D {}
        impl PartialOrd for D {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for D {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.0.partial_cmp(&other.0).expect("finite distances")
            }
        }

        let mut out: Vec<(ObjectId, f64)> = Vec::with_capacity(k);
        if k == 0 {
            return Ok(out);
        }
        let Some(root) = self.root else {
            return Ok(out);
        };
        // Min-heap over (MINDIST, node); objects tracked in a result
        // list kept sorted (k is small).
        let mut heap: BinaryHeap<Reverse<(D, PageId)>> = BinaryHeap::new();
        heap.push(Reverse((D(0.0), root)));
        while let Some(Reverse((D(bound), page))) = heap.pop() {
            if out.len() == k && bound >= out[k - 1].1 {
                break; // no unexplored node can beat the k-th distance
            }
            let node = self.read_node_arc(page)?;
            for e in &node.entries {
                let dist = e.mbr.at(t).min_dist_sq(q);
                match e.child {
                    ChildRef::Object(oid) => {
                        if out.len() < k {
                            out.push((oid, dist));
                            out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                        } else if dist < out[k - 1].1 {
                            out[k - 1] = (oid, dist);
                            out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"));
                        }
                    }
                    ChildRef::Page(p) => {
                        if out.len() < k || dist < out[k - 1].1 {
                            heap.push(Reverse((D(dist), p)));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Every `(oid, trajectory)` in the tree, in traversal order. Test
    /// and rebuild helper; a full scan, so it costs I/O like one.
    pub fn iter_objects(&self) -> TprResult<Vec<(ObjectId, MovingRect)>> {
        let mut out = Vec::with_capacity(self.len);
        let Some(root) = self.root else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            let node = self.read_node_arc(page)?;
            for e in &node.entries {
                match e.child {
                    ChildRef::Object(oid) => out.push((oid, e.mbr)),
                    ChildRef::Page(p) => stack.push(p),
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Introspection / validation
    // ------------------------------------------------------------------

    /// Aggregate structure statistics (full scan).
    pub fn stats(&self) -> TprResult<TreeStats> {
        let mut nodes = 0;
        let mut leaves = 0;
        let mut objects = 0;
        if let Some(root) = self.root {
            let mut stack = vec![root];
            while let Some(page) = stack.pop() {
                let node = self.read_node(page)?;
                nodes += 1;
                if node.is_leaf() {
                    leaves += 1;
                    objects += node.entries.len();
                } else {
                    for e in &node.entries {
                        stack.push(e.child.page());
                    }
                }
            }
        }
        Ok(TreeStats {
            height: self.height,
            nodes,
            leaves,
            objects,
        })
    }

    /// Exhaustively checks structural invariants; returns the stats on
    /// success. Test-support API (full scan).
    ///
    /// Checked: level bookkeeping, fanout bounds, entry-kind/level
    /// consistency, conservative containment of children in parent bounds
    /// at `now` and over the horizon, and object count.
    pub fn validate(&self, now: Time) -> TprResult<TreeStats> {
        let stats = self.stats()?;
        if stats.objects != self.len {
            return Err(TprError::CorruptNode {
                detail: format!(
                    "tracked len {} != scanned objects {}",
                    self.len, stats.objects
                ),
            });
        }
        let Some(root) = self.root else {
            if self.len != 0 || self.height != 0 {
                return Err(TprError::CorruptNode {
                    detail: "empty root with nonzero len/height".into(),
                });
            }
            return Ok(stats);
        };
        let root_node = self.read_node_arc(root)?;
        if u32::from(root_node.level) + 1 != self.height {
            return Err(TprError::CorruptNode {
                detail: format!(
                    "root level {} inconsistent with height {}",
                    root_node.level, self.height
                ),
            });
        }
        self.validate_node(root, &root_node, None, now, true)?;
        Ok(stats)
    }

    fn validate_node(
        &self,
        page: PageId,
        node: &Node,
        parent_bound: Option<&MovingRect>,
        now: Time,
        is_root: bool,
    ) -> TprResult<()> {
        let cap = self.config.capacity;
        let min = if is_root {
            1
        } else {
            self.config.min_entries()
        };
        if node.entries.len() > cap || node.entries.len() < min {
            return Err(TprError::CorruptNode {
                detail: format!(
                    "{page}: fanout {} outside [{min}, {cap}] (root={is_root})",
                    node.entries.len()
                ),
            });
        }
        if let Some(bound) = parent_bound {
            for e in &node.entries {
                for dt in [0.0, 1.0, 10.0, 60.0] {
                    let t = now + dt;
                    if !bound.at(t).contains_rect_eps(&e.mbr.at(t), 1e-6) {
                        return Err(TprError::CorruptNode {
                            detail: format!("{page}: child bound escapes parent at t={t}"),
                        });
                    }
                }
            }
        }
        if !node.is_leaf() {
            for e in &node.entries {
                let child_page = e.child.page();
                let child = self.read_node_arc(child_page)?;
                if child.level + 1 != node.level {
                    return Err(TprError::CorruptNode {
                        detail: format!(
                            "{child_page}: level {} under parent level {}",
                            child.level, node.level
                        ),
                    });
                }
                self.validate_node(child_page, &child, Some(&e.mbr), now, false)?;
            }
        }
        Ok(())
    }
}
