//! Tree-layer error type.

use cij_storage::StorageError;

use crate::entry::ObjectId;

/// Errors surfaced by TPR-tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TprError {
    /// The storage layer failed (page not found, codec overflow, …).
    Storage(StorageError),
    /// A delete targeted an object the tree does not contain (or whose
    /// registered rectangle no longer matches any leaf region searched).
    ObjectNotFound(ObjectId),
    /// A page decoded into something that is not a valid node.
    CorruptNode {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The operation is not supported by this engine/index combination
    /// (e.g. routed single-object inserts on an engine without a result
    /// buffer — see `ContinuousJoinEngine::insert_object`).
    Unsupported {
        /// What was attempted and by whom.
        what: String,
    },
}

impl std::fmt::Display for TprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Storage(e) => write!(f, "storage error: {e}"),
            Self::ObjectNotFound(oid) => write!(f, "object {oid:?} not found in tree"),
            Self::CorruptNode { detail } => write!(f, "corrupt node: {detail}"),
            Self::Unsupported { what } => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for TprError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for TprError {
    fn from(e: StorageError) -> Self {
        Self::Storage(e)
    }
}

/// Result alias for tree operations.
pub type TprResult<T> = Result<T, TprError>;
