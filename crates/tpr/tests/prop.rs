//! Property tests: arbitrary operation sequences keep the TPR-tree
//! equivalent to a shadow map — structure valid, queries exact.

use std::collections::HashMap;
use std::sync::Arc;

use cij_geom::{MovingRect, Rect};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprTree, TreeConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        side: f64,
        vx: f64,
        vy: f64,
    },
    /// Update the `i`-th live object (modulo population).
    Update {
        pick: usize,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    },
    /// Delete the `i`-th live object (modulo population).
    Delete { pick: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..990.0f64, 0.0..990.0f64, 0.1..8.0f64, -5.0..5.0f64, -5.0..5.0f64)
            .prop_map(|(x, y, side, vx, vy)| Op::Insert { x, y, side, vx, vy }),
        2 => (any::<usize>(), 0.0..990.0f64, 0.0..990.0f64, -5.0..5.0f64, -5.0..5.0f64)
            .prop_map(|(pick, x, y, vx, vy)| Op::Update { pick, x, y, vx, vy }),
        1 => any::<usize>().prop_map(|pick| Op::Delete { pick }),
    ]
}

fn new_tree(capacity: usize) -> TprTree {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(128),
    );
    TprTree::new(
        pool,
        TreeConfig {
            capacity,
            ..TreeConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any op sequence the tree validates, matches the shadow map,
    /// and answers a range query exactly.
    #[test]
    fn random_ops_preserve_equivalence(
        capacity in prop_oneof![Just(4usize), Just(8), Just(30)],
        ops in proptest::collection::vec(arb_op(), 1..150),
        probe in (0.0..900.0f64, 0.0..900.0f64, 0.0..70.0f64),
    ) {
        let mut tree = new_tree(capacity);
        let mut shadow: HashMap<ObjectId, MovingRect> = HashMap::new();
        let mut next_id = 0u64;
        let mut live: Vec<ObjectId> = Vec::new();
        let mut now = 0.0;

        for (step, op) in ops.iter().enumerate() {
            now = step as f64 * 0.5;
            match op {
                Op::Insert { x, y, side, vx, vy } => {
                    let oid = ObjectId(next_id);
                    next_id += 1;
                    let mbr = MovingRect::rigid(
                        Rect::new([*x, *y], [*x + *side, *y + *side]),
                        [*vx, *vy],
                        now,
                    );
                    tree.insert(oid, mbr, now).unwrap();
                    shadow.insert(oid, mbr);
                    live.push(oid);
                }
                Op::Update { pick, x, y, vx, vy } => {
                    if live.is_empty() { continue; }
                    let oid = live[pick % live.len()];
                    let old = shadow[&oid];
                    let mbr = MovingRect::rigid(
                        Rect::new([*x, *y], [*x + 1.0, *y + 1.0]),
                        [*vx, *vy],
                        now,
                    );
                    tree.update(oid, &old, mbr, now).unwrap();
                    shadow.insert(oid, mbr);
                }
                Op::Delete { pick } => {
                    if live.is_empty() { continue; }
                    let idx = pick % live.len();
                    let oid = live.swap_remove(idx);
                    let old = shadow.remove(&oid).unwrap();
                    tree.delete(oid, &old, now).unwrap();
                }
            }
        }

        prop_assert_eq!(tree.len(), shadow.len());
        tree.validate(now).unwrap();

        // Range query at a future instant matches brute force.
        let (px, py, t_off) = probe;
        let w = Rect::new([px, py], [px + 120.0, py + 120.0]);
        let t = now + t_off;
        let mut got = tree.range_at(&w, t).unwrap();
        let mut expect: Vec<ObjectId> = shadow
            .iter()
            .filter(|(_, m)| m.at(t).intersects(&w))
            .map(|(o, _)| *o)
            .collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Bulk loading is equivalent to insertion loading for any input.
    #[test]
    fn bulk_load_equivalent_to_inserts(
        n in 1usize..400,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let objs: Vec<(ObjectId, MovingRect)> = (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..990.0);
                let y = rng.gen_range(0.0..990.0);
                (
                    ObjectId(i as u64),
                    MovingRect::rigid(
                        Rect::new([x, y], [x + 1.0, y + 1.0]),
                        [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                        0.0,
                    ),
                )
            })
            .collect();
        let pool =
            BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::with_capacity(128));
        let bulk = TprTree::bulk_load(pool, TreeConfig::default(), &objs, 0.0).unwrap();
        prop_assert_eq!(bulk.len(), n);
        bulk.validate(0.0).unwrap();

        let w = Rect::new([200.0, 200.0], [600.0, 600.0]);
        let mut got = bulk.range_at(&w, 30.0).unwrap();
        let mut expect: Vec<ObjectId> = objs
            .iter()
            .filter(|(_, m)| m.at(30.0).intersects(&w))
            .map(|(o, _)| *o)
            .collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }
}
