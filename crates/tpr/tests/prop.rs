//! Property tests: arbitrary operation sequences keep the TPR-tree
//! equivalent to a shadow map — structure valid, queries exact.

use std::collections::HashMap;
use std::sync::Arc;

use cij_geom::{MovingRect, Rect};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, PageId};
use cij_tpr::{ChildRef, Entry, Node, NodeView, ObjectId, TprTree, TreeConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        side: f64,
        vx: f64,
        vy: f64,
    },
    /// Update the `i`-th live object (modulo population).
    Update {
        pick: usize,
        x: f64,
        y: f64,
        vx: f64,
        vy: f64,
    },
    /// Delete the `i`-th live object (modulo population).
    Delete { pick: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..990.0f64, 0.0..990.0f64, 0.1..8.0f64, -5.0..5.0f64, -5.0..5.0f64)
            .prop_map(|(x, y, side, vx, vy)| Op::Insert { x, y, side, vx, vy }),
        2 => (any::<usize>(), 0.0..990.0f64, 0.0..990.0f64, -5.0..5.0f64, -5.0..5.0f64)
            .prop_map(|(pick, x, y, vx, vy)| Op::Update { pick, x, y, vx, vy }),
        1 => any::<usize>().prop_map(|pick| Op::Delete { pick }),
    ]
}

fn new_tree(capacity: usize) -> TprTree {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(128),
    );
    TprTree::new(
        pool,
        TreeConfig {
            capacity,
            ..TreeConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any op sequence the tree validates, matches the shadow map,
    /// and answers a range query exactly.
    #[test]
    fn random_ops_preserve_equivalence(
        capacity in prop_oneof![Just(4usize), Just(8), Just(30)],
        ops in proptest::collection::vec(arb_op(), 1..150),
        probe in (0.0..900.0f64, 0.0..900.0f64, 0.0..70.0f64),
    ) {
        let mut tree = new_tree(capacity);
        let mut shadow: HashMap<ObjectId, MovingRect> = HashMap::new();
        let mut next_id = 0u64;
        let mut live: Vec<ObjectId> = Vec::new();
        let mut now = 0.0;

        for (step, op) in ops.iter().enumerate() {
            now = step as f64 * 0.5;
            match op {
                Op::Insert { x, y, side, vx, vy } => {
                    let oid = ObjectId(next_id);
                    next_id += 1;
                    let mbr = MovingRect::rigid(
                        Rect::new([*x, *y], [*x + *side, *y + *side]),
                        [*vx, *vy],
                        now,
                    );
                    tree.insert(oid, mbr, now).unwrap();
                    shadow.insert(oid, mbr);
                    live.push(oid);
                }
                Op::Update { pick, x, y, vx, vy } => {
                    if live.is_empty() { continue; }
                    let oid = live[pick % live.len()];
                    let old = shadow[&oid];
                    let mbr = MovingRect::rigid(
                        Rect::new([*x, *y], [*x + 1.0, *y + 1.0]),
                        [*vx, *vy],
                        now,
                    );
                    tree.update(oid, &old, mbr, now).unwrap();
                    shadow.insert(oid, mbr);
                }
                Op::Delete { pick } => {
                    if live.is_empty() { continue; }
                    let idx = pick % live.len();
                    let oid = live.swap_remove(idx);
                    let old = shadow.remove(&oid).unwrap();
                    tree.delete(oid, &old, now).unwrap();
                }
            }
        }

        prop_assert_eq!(tree.len(), shadow.len());
        tree.validate(now).unwrap();

        // Range query at a future instant matches brute force.
        let (px, py, t_off) = probe;
        let w = Rect::new([px, py], [px + 120.0, py + 120.0]);
        let t = now + t_off;
        let mut got = tree.range_at(&w, t).unwrap();
        let mut expect: Vec<ObjectId> = shadow
            .iter()
            .filter(|(_, m)| m.at(t).intersects(&w))
            .map(|(o, _)| *o)
            .collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Bulk loading is equivalent to insertion loading for any input.
    #[test]
    fn bulk_load_equivalent_to_inserts(
        n in 1usize..400,
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let objs: Vec<(ObjectId, MovingRect)> = (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..990.0);
                let y = rng.gen_range(0.0..990.0);
                (
                    ObjectId(i as u64),
                    MovingRect::rigid(
                        Rect::new([x, y], [x + 1.0, y + 1.0]),
                        [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                        0.0,
                    ),
                )
            })
            .collect();
        let pool =
            BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::with_capacity(128));
        let bulk = TprTree::bulk_load(pool, TreeConfig::default(), &objs, 0.0).unwrap();
        prop_assert_eq!(bulk.len(), n);
        bulk.validate(0.0).unwrap();

        let w = Rect::new([200.0, 200.0], [600.0, 600.0]);
        let mut got = bulk.range_at(&w, 30.0).unwrap();
        let mut expect: Vec<ObjectId> = objs
            .iter()
            .filter(|(_, m)| m.at(30.0).intersects(&w))
            .map(|(o, _)| *o)
            .collect();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }
}

// ----------------------------------------------------------------------
// Page-format properties: the v2 SoA layout, the legacy v1 layout, and
// the zero-copy view must all describe the same node — bit for bit, even
// through NaN and infinite velocities (compared via `to_bits`, since
// `NaN != NaN` under `PartialEq`).
// ----------------------------------------------------------------------

/// A velocity component: usually finite, sometimes `NaN` or `±∞`.
fn arb_velocity() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -50.0..50.0f64,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
    ]
}

/// Raw entry material: a moving rectangle with finite, ordered spatial
/// bounds (`from_page` rejects inverted rectangles, and a `NaN` bound
/// *is* inverted under `!(lo <= hi)`) — velocities and only velocities
/// carry the special values — plus child-id material for either kind.
fn arb_raw_entry() -> impl Strategy<Value = (MovingRect, u32, u64)> {
    (
        (-1e6..1e6f64, -1e6..1e6f64),
        (0.0..1e3f64, 0.0..1e3f64),
        (arb_velocity(), arb_velocity()),
        (arb_velocity(), arb_velocity()),
        -1e6..1e6f64,
        any::<u32>(),
        any::<u64>(),
    )
        .prop_map(
            |((x, y), (w, h), (vlx, vly), (vhx, vhy), t_ref, page, oid)| {
                let mbr = MovingRect {
                    lo: [x, y],
                    hi: [x + w, y + h],
                    vlo: [vlx, vly],
                    vhi: [vhx, vhy],
                    t_ref,
                };
                (mbr, page, oid)
            },
        )
}

fn arb_node() -> impl Strategy<Value = Node> {
    (
        0u8..3,
        proptest::collection::vec(arb_raw_entry(), 0..Node::max_capacity() + 1),
    )
        .prop_map(|(level, raw)| {
            let mut node = Node::new(level);
            node.entries = raw
                .into_iter()
                .map(|(mbr, page, oid)| Entry {
                    mbr,
                    child: if level == 0 {
                        ChildRef::Object(ObjectId(oid))
                    } else {
                        ChildRef::Page(PageId(page))
                    },
                })
                .collect();
            node
        })
}

/// Field-by-field bit equality (velocities may be NaN).
fn assert_entries_bit_equal(a: &Node, b: &Node) {
    prop_assert_eq!(a.level, b.level);
    prop_assert_eq!(a.entries.len(), b.entries.len());
    for (ea, eb) in a.entries.iter().zip(&b.entries) {
        for d in 0..2 {
            prop_assert_eq!(ea.mbr.lo[d].to_bits(), eb.mbr.lo[d].to_bits());
            prop_assert_eq!(ea.mbr.hi[d].to_bits(), eb.mbr.hi[d].to_bits());
            prop_assert_eq!(ea.mbr.vlo[d].to_bits(), eb.mbr.vlo[d].to_bits());
            prop_assert_eq!(ea.mbr.vhi[d].to_bits(), eb.mbr.vhi[d].to_bits());
        }
        prop_assert_eq!(ea.mbr.t_ref.to_bits(), eb.mbr.t_ref.to_bits());
        prop_assert_eq!(ea.child, eb.child);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any node decodes bit-identically from its v2 (SoA) and legacy v1
    /// (AoS) encodings — including NaN / infinite velocities.
    #[test]
    fn page_roundtrip_v2_and_legacy_bit_identical(node in arb_node()) {
        let v2 = node.to_page().unwrap();
        let v1 = node.to_page_legacy().unwrap();
        let from_v2 = Node::from_page(&v2).unwrap();
        let from_v1 = Node::from_page(&v1).unwrap();
        assert_entries_bit_equal(&node, &from_v2);
        assert_entries_bit_equal(&node, &from_v1);
        assert_entries_bit_equal(&from_v2, &from_v1);
    }

    /// Every `NodeView` accessor agrees bit-for-bit with the decoded
    /// node: the zero-copy read path and the materializing path are the
    /// same function of the page bytes.
    #[test]
    fn view_accessors_agree_with_decoded_node(node in arb_node()) {
        let page = node.to_page().unwrap();
        let view = NodeView::parse(&page).unwrap().expect("v2 page");
        let decoded = Node::from_page(&page).unwrap();

        prop_assert_eq!(view.level(), decoded.level);
        prop_assert_eq!(view.len(), decoded.entries.len());
        for (i, e) in decoded.entries.iter().enumerate() {
            for d in 0..2 {
                prop_assert_eq!(view.lo(d, i).to_bits(), e.mbr.lo[d].to_bits());
                prop_assert_eq!(view.hi(d, i).to_bits(), e.mbr.hi[d].to_bits());
                prop_assert_eq!(view.vlo(d, i).to_bits(), e.mbr.vlo[d].to_bits());
                prop_assert_eq!(view.vhi(d, i).to_bits(), e.mbr.vhi[d].to_bits());
            }
            prop_assert_eq!(view.t_ref(i).to_bits(), e.mbr.t_ref.to_bits());
            prop_assert_eq!(view.child(i), e.child);
            let vm = view.mbr(i);
            prop_assert_eq!(vm.t_ref.to_bits(), e.mbr.t_ref.to_bits());
            for d in 0..2 {
                prop_assert_eq!(vm.lo[d].to_bits(), e.mbr.lo[d].to_bits());
                prop_assert_eq!(vm.hi[d].to_bits(), e.mbr.hi[d].to_bits());
            }
        }
        assert_entries_bit_equal(&view.to_node(), &decoded);
    }
}
