//! Randomized workout of the TPR-tree against a brute-force shadow map:
//! after any mixed insert/delete/update workload, structure invariants
//! hold and every query answer matches exhaustive evaluation.

use std::collections::HashMap;
use std::sync::Arc;

use cij_geom::{MovingRect, Rect, Time, INFINITE_TIME};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprError, TprTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_tree(capacity: usize) -> TprTree {
    let store = Arc::new(InMemoryStore::new());
    // A large pool keeps unit tests fast; I/O-sensitive tests build their
    // own pools.
    let pool = BufferPool::new(store, BufferPoolConfig::with_capacity(256));
    TprTree::new(
        pool,
        TreeConfig {
            capacity,
            ..TreeConfig::default()
        },
    )
}

fn random_object(rng: &mut StdRng, now: Time) -> MovingRect {
    let x = rng.gen_range(0.0..1000.0);
    let y = rng.gen_range(0.0..1000.0);
    let side = rng.gen_range(0.5..4.0);
    let vx = rng.gen_range(-3.0..3.0);
    let vy = rng.gen_range(-3.0..3.0);
    MovingRect::rigid(Rect::new([x, y], [x + side, y + side]), [vx, vy], now)
}

/// Inserts `n` random objects at time `now`; returns the shadow map.
fn fill(
    tree: &mut TprTree,
    rng: &mut StdRng,
    n: usize,
    now: Time,
) -> HashMap<ObjectId, MovingRect> {
    let mut shadow = HashMap::new();
    for i in 0..n {
        let oid = ObjectId(i as u64);
        let mbr = random_object(rng, now);
        tree.insert(oid, mbr, now).unwrap();
        shadow.insert(oid, mbr);
    }
    shadow
}

#[test]
fn empty_tree_queries() {
    let tree = make_tree(8);
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 0);
    assert!(tree
        .range_at(&Rect::new([0.0, 0.0], [1000.0, 1000.0]), 0.0)
        .unwrap()
        .is_empty());
    assert!(tree
        .intersect_window(
            &MovingRect::stationary(Rect::new([0.0, 0.0], [10.0, 10.0]), 0.0),
            0.0,
            INFINITE_TIME
        )
        .unwrap()
        .is_empty());
    tree.validate(0.0).unwrap();
}

#[test]
fn single_insert_and_delete() {
    let mut tree = make_tree(8);
    let mbr = MovingRect::rigid(Rect::new([5.0, 5.0], [6.0, 6.0]), [1.0, 0.0], 0.0);
    tree.insert(ObjectId(1), mbr, 0.0).unwrap();
    assert_eq!(tree.len(), 1);
    assert_eq!(tree.height(), 1);
    tree.validate(0.0).unwrap();
    let found = tree
        .range_at(&Rect::new([0.0, 0.0], [10.0, 10.0]), 0.0)
        .unwrap();
    assert_eq!(found, vec![ObjectId(1)]);
    tree.delete(ObjectId(1), &mbr, 1.0).unwrap();
    assert!(tree.is_empty());
    assert_eq!(tree.height(), 0);
    tree.validate(1.0).unwrap();
}

#[test]
fn delete_missing_object_errors() {
    let mut tree = make_tree(8);
    let mbr = MovingRect::stationary(Rect::new([0.0, 0.0], [1.0, 1.0]), 0.0);
    assert!(matches!(
        tree.delete(ObjectId(9), &mbr, 0.0),
        Err(TprError::ObjectNotFound(ObjectId(9)))
    ));
    tree.insert(ObjectId(1), mbr, 0.0).unwrap();
    assert!(matches!(
        tree.delete(ObjectId(2), &mbr, 0.0),
        Err(TprError::ObjectNotFound(ObjectId(2)))
    ));
    // Tree unchanged by the failed deletes.
    assert_eq!(tree.len(), 1);
    tree.validate(0.0).unwrap();
}

#[test]
fn bulk_insert_validates_and_finds_everything() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut tree = make_tree(16);
    let shadow = fill(&mut tree, &mut rng, 2000, 0.0);
    let stats = tree.validate(0.0).unwrap();
    assert_eq!(stats.objects, 2000);
    assert!(stats.height >= 2, "2000 objects can't fit one node");

    // Every object is discoverable through a point query at its location.
    for (oid, mbr) in shadow.iter().take(200) {
        let r = mbr.at(0.0);
        let found = tree.range_at(&r, 0.0).unwrap();
        assert!(found.contains(oid), "{oid} missing from its own region");
    }
    // Full-space query returns everything exactly once.
    let all = tree
        .range_at(&Rect::new([-1e6, -1e6], [1e6, 1e6]), 0.0)
        .unwrap();
    assert_eq!(all.len(), 2000);
    let unique: std::collections::HashSet<_> = all.iter().collect();
    assert_eq!(unique.len(), 2000);
}

#[test]
fn range_query_matches_brute_force_at_future_times() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut tree = make_tree(16);
    let shadow = fill(&mut tree, &mut rng, 800, 0.0);

    for t in [0.0, 13.0, 59.0] {
        for _ in 0..20 {
            let cx = rng.gen_range(0.0..1000.0);
            let cy = rng.gen_range(0.0..1000.0);
            let w = Rect::new([cx, cy], [cx + 60.0, cy + 60.0]);
            let mut got = tree.range_at(&w, t).unwrap();
            let mut expect: Vec<ObjectId> = shadow
                .iter()
                .filter(|(_, m)| m.at(t).intersects(&w))
                .map(|(o, _)| *o)
                .collect();
            got.sort();
            expect.sort();
            assert_eq!(got, expect, "window query diverged at t={t}");
        }
    }
}

#[test]
fn intersect_window_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut tree = make_tree(16);
    let shadow = fill(&mut tree, &mut rng, 600, 0.0);

    for _ in 0..30 {
        let probe = random_object(&mut rng, 0.0);
        let (ts, te) = (0.0, 60.0);
        let mut got = tree.intersect_window(&probe, ts, te).unwrap();
        let mut expect: Vec<(ObjectId, _)> = shadow
            .iter()
            .filter_map(|(o, m)| m.intersect_interval(&probe, ts, te).map(|iv| (*o, iv)))
            .collect();
        got.sort_by_key(|(o, _)| *o);
        expect.sort_by_key(|(o, _)| *o);
        assert_eq!(got.len(), expect.len(), "pair count diverged");
        for ((go, gi), (eo, ei)) in got.iter().zip(&expect) {
            assert_eq!(go, eo);
            assert!((gi.start - ei.start).abs() < 1e-9);
            assert!((gi.end - ei.end).abs() < 1e-9);
        }
    }
}

#[test]
fn mixed_workload_keeps_invariants() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut tree = make_tree(10); // small capacity → deep tree, many splits
    let mut shadow: HashMap<ObjectId, MovingRect> = HashMap::new();
    let mut next_id = 0u64;
    let mut now = 0.0;

    for round in 0..60 {
        now = round as f64;
        for _ in 0..40 {
            let op = rng.gen_range(0..100);
            if op < 45 || shadow.is_empty() {
                let oid = ObjectId(next_id);
                next_id += 1;
                let mbr = random_object(&mut rng, now);
                tree.insert(oid, mbr, now).unwrap();
                shadow.insert(oid, mbr);
            } else if op < 75 {
                // Update a random live object.
                let &oid = shadow.keys().nth(rng.gen_range(0..shadow.len())).unwrap();
                let old = shadow[&oid];
                let new = random_object(&mut rng, now);
                tree.update(oid, &old, new, now).unwrap();
                shadow.insert(oid, new);
            } else {
                let &oid = shadow.keys().nth(rng.gen_range(0..shadow.len())).unwrap();
                let old = shadow.remove(&oid).unwrap();
                tree.delete(oid, &old, now).unwrap();
            }
        }
        assert_eq!(tree.len(), shadow.len());
        tree.validate(now).unwrap();
    }

    // Final cross-check: tree contents == shadow contents.
    let mut listed = tree.iter_objects().unwrap();
    listed.sort_by_key(|(o, _)| *o);
    let mut expect: Vec<_> = shadow.iter().map(|(o, m)| (*o, *m)).collect();
    expect.sort_by_key(|(o, _)| *o);
    assert_eq!(listed.len(), expect.len());
    for ((lo, lm), (eo, em)) in listed.iter().zip(&expect) {
        assert_eq!(lo, eo);
        // The stored trajectory must be exactly what was inserted.
        assert_eq!(lm.t_ref, em.t_ref);
        assert_eq!(lm.lo, em.lo);
        assert_eq!(lm.vlo, em.vlo);
    }

    // Drain to empty.
    let remaining: Vec<_> = shadow.drain().collect();
    for (oid, mbr) in remaining {
        tree.delete(oid, &mbr, now).unwrap();
    }
    assert!(tree.is_empty());
    tree.validate(now).unwrap();
}

#[test]
fn queries_at_much_later_times_stay_correct() {
    // Bounds grow stale (loose) as time passes, but must never produce
    // false negatives.
    let mut rng = StdRng::seed_from_u64(5);
    let mut tree = make_tree(16);
    let shadow = fill(&mut tree, &mut rng, 300, 0.0);
    let t = 240.0; // four maximum update intervals later
    for (oid, mbr) in shadow.iter().take(100) {
        let r = mbr.at(t);
        let found = tree.range_at(&r, t).unwrap();
        assert!(found.contains(oid), "{oid} lost at distant time");
    }
}

#[test]
fn small_pool_still_correct_just_more_io() {
    // A 5-page pool thrashes; results must be identical to a huge pool.
    let store = Arc::new(InMemoryStore::new());
    let pool = BufferPool::new(store, BufferPoolConfig::with_capacity(5));
    let mut tree = TprTree::new(pool.clone(), TreeConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let mut shadow = HashMap::new();
    for i in 0..500 {
        let oid = ObjectId(i);
        let mbr = random_object(&mut rng, 0.0);
        tree.insert(oid, mbr, 0.0).unwrap();
        shadow.insert(oid, mbr);
    }
    tree.validate(0.0).unwrap();

    let before = pool.stats().snapshot();
    let w = Rect::new([100.0, 100.0], [400.0, 400.0]);
    let mut got = tree.range_at(&w, 30.0).unwrap();
    let delta = pool.stats().snapshot() - before;
    assert!(delta.physical_reads > 0, "tiny pool must miss");

    let mut expect: Vec<ObjectId> = shadow
        .iter()
        .filter(|(_, m)| m.at(30.0).intersects(&w))
        .map(|(o, _)| *o)
        .collect();
    got.sort();
    expect.sort();
    assert_eq!(got, expect);
}

#[test]
fn update_heavy_workload_matches_paper_update_pattern() {
    // The paper's maintenance loop: every object re-registers within T_M.
    let mut rng = StdRng::seed_from_u64(77);
    let mut tree = make_tree(30);
    let mut shadow = HashMap::new();
    let n = 400;
    for i in 0..n {
        let oid = ObjectId(i);
        let mbr = random_object(&mut rng, 0.0);
        tree.insert(oid, mbr, 0.0).unwrap();
        shadow.insert(oid, mbr);
    }
    // 120 ticks of updates; each tick updates ~n/60 objects.
    for tick in 1..=120 {
        let now = tick as f64;
        for _ in 0..(n / 60) {
            let oid = ObjectId(rng.gen_range(0..n));
            let old = shadow[&oid];
            let new = random_object(&mut rng, now);
            tree.update(oid, &old, new, now).unwrap();
            shadow.insert(oid, new);
        }
        if tick % 30 == 0 {
            tree.validate(now).unwrap();
        }
    }
    assert_eq!(tree.len(), n as usize);
}

#[test]
fn duplicate_geometry_different_ids() {
    // Many objects with identical rectangles must all be stored and all
    // be individually deletable.
    let mut tree = make_tree(8);
    let mbr = MovingRect::rigid(Rect::new([1.0, 1.0], [2.0, 2.0]), [1.0, 1.0], 0.0);
    for i in 0..50 {
        tree.insert(ObjectId(i), mbr, 0.0).unwrap();
    }
    assert_eq!(tree.len(), 50);
    tree.validate(0.0).unwrap();
    for i in 0..50 {
        tree.delete(ObjectId(i), &mbr, 0.0).unwrap();
    }
    assert!(tree.is_empty());
}

#[test]
fn zero_extent_objects_are_supported() {
    let mut tree = make_tree(8);
    let mut rng = StdRng::seed_from_u64(3);
    for i in 0..100 {
        let p = [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)];
        let mbr = MovingRect::rigid(Rect::point(p), [1.0, -1.0], 0.0);
        tree.insert(ObjectId(i), mbr, 0.0).unwrap();
    }
    tree.validate(0.0).unwrap();
    let all = tree
        .range_at(&Rect::new([-1e3, -1e3], [1e3, 1e3]), 0.0)
        .unwrap();
    assert_eq!(all.len(), 100);
}

#[test]
fn highly_skewed_velocities() {
    // Everything moves the same direction fast — the paper notes MBRs
    // then may not expand in all directions; tree must still work.
    let mut tree = make_tree(16);
    let mut rng = StdRng::seed_from_u64(8);
    let mut shadow = HashMap::new();
    for i in 0..300 {
        let x = rng.gen_range(0.0..1000.0);
        let y = rng.gen_range(0.0..1000.0);
        let mbr = MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [5.0, 5.0], 0.0);
        tree.insert(ObjectId(i), mbr, 0.0).unwrap();
        shadow.insert(ObjectId(i), mbr);
    }
    tree.validate(0.0).unwrap();
    let w = Rect::new([500.0, 500.0], [700.0, 700.0]);
    let t = 40.0;
    let mut got = tree.range_at(&w, t).unwrap();
    let mut expect: Vec<ObjectId> = shadow
        .iter()
        .filter(|(_, m)| m.at(t).intersects(&w))
        .map(|(o, _)| *o)
        .collect();
    got.sort();
    expect.sort();
    assert_eq!(got, expect);
}

#[test]
fn knn_matches_brute_force() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut tree = make_tree(16);
    let shadow = fill(&mut tree, &mut rng, 700, 0.0);

    for t in [0.0, 25.0, 59.0] {
        for _ in 0..15 {
            let q = [rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)];
            for k in [1usize, 5, 20] {
                let got = tree.knn_at(q, k, t).unwrap();
                let mut expect: Vec<(ObjectId, f64)> = shadow
                    .iter()
                    .map(|(o, m)| (*o, m.at(t).min_dist_sq(q)))
                    .collect();
                expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
                expect.truncate(k);
                assert_eq!(got.len(), k);
                // Distances must match exactly (ids may tie-swap).
                for (g, e) in got.iter().zip(&expect) {
                    assert!(
                        (g.1 - e.1).abs() < 1e-9,
                        "k={k} t={t}: dist {} vs {}",
                        g.1,
                        e.1
                    );
                }
            }
        }
    }
}

#[test]
fn knn_edge_cases() {
    let mut tree = make_tree(8);
    assert!(
        tree.knn_at([0.0, 0.0], 3, 0.0).unwrap().is_empty(),
        "empty tree"
    );
    let mbr = MovingRect::rigid(Rect::new([5.0, 5.0], [6.0, 6.0]), [1.0, 0.0], 0.0);
    tree.insert(ObjectId(1), mbr, 0.0).unwrap();
    assert!(tree.knn_at([0.0, 0.0], 0, 0.0).unwrap().is_empty(), "k = 0");
    // k greater than population returns everything.
    let got = tree.knn_at([0.0, 0.0], 10, 0.0).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, ObjectId(1));
    // Query point inside the object: distance 0.
    let got = tree.knn_at([5.5, 5.5], 1, 0.0).unwrap();
    assert_eq!(got[0].1, 0.0);
    // The object moves; at t=10 it is at x in [15,16].
    let got = tree.knn_at([0.0, 5.5], 1, 10.0).unwrap();
    assert!((got[0].1 - 225.0).abs() < 1e-9, "dist {}", got[0].1);
}

#[test]
fn tree_on_real_file_store() {
    // End-to-end disk residency: the whole tree lives in an actual file.
    use cij_storage::FileStore;
    let mut path = std::env::temp_dir();
    path.push(format!("cij-tree-{}.pages", std::process::id()));
    let result = std::panic::catch_unwind(|| {
        let store = Arc::new(FileStore::create(&path).unwrap());
        let pool = BufferPool::new(store, BufferPoolConfig::with_capacity(50));
        let mut tree = TprTree::new(pool, TreeConfig::default());
        let mut rng = StdRng::seed_from_u64(55);
        let mut shadow = HashMap::new();
        for i in 0..400 {
            let oid = ObjectId(i);
            let mbr = random_object(&mut rng, 0.0);
            tree.insert(oid, mbr, 0.0).unwrap();
            shadow.insert(oid, mbr);
        }
        tree.validate(0.0).unwrap();
        // Updates over the file store too.
        for i in 0..100 {
            let oid = ObjectId(i);
            let old = shadow[&oid];
            let new = random_object(&mut rng, 1.0);
            tree.update(oid, &old, new, 1.0).unwrap();
            shadow.insert(oid, new);
        }
        let w = Rect::new([200.0, 200.0], [600.0, 600.0]);
        let mut got = tree.range_at(&w, 10.0).unwrap();
        let mut expect: Vec<ObjectId> = shadow
            .iter()
            .filter(|(_, m)| m.at(10.0).intersects(&w))
            .map(|(o, _)| *o)
            .collect();
        got.sort();
        expect.sort();
        assert_eq!(got, expect);
    });
    let _ = std::fs::remove_file(&path);
    result.unwrap();
}

#[test]
fn corrupt_page_surfaces_as_error_not_panic() {
    // Failure injection: smash a node page behind the tree's back; the
    // next traversal must return a Corrupt error, never panic or hang.
    let store = Arc::new(InMemoryStore::new());
    let pool = BufferPool::new(store.clone(), BufferPoolConfig::with_capacity(4));
    let mut tree = TprTree::new(pool.clone(), TreeConfig::default());
    let mut rng = StdRng::seed_from_u64(66);
    for i in 0..100 {
        tree.insert(ObjectId(i), random_object(&mut rng, 0.0), 0.0)
            .unwrap();
    }
    pool.clear().unwrap(); // push everything to the store

    // Corrupt the root page directly on the store.
    use cij_storage::PageStore;
    let root = tree.root_page().unwrap();
    let mut garbage = cij_storage::zeroed_page();
    garbage[0] = 0xDE;
    garbage[1] = 0xAD;
    store.write(root, &garbage).unwrap();

    let err = tree
        .range_at(&Rect::new([0.0, 0.0], [1e3, 1e3]), 0.0)
        .unwrap_err();
    assert!(
        matches!(
            err,
            TprError::Storage(cij_storage::StorageError::Corrupt(_))
        ),
        "got {err:?}"
    );
}

#[test]
fn heuristic_toggles_never_affect_correctness() {
    // Ablation knobs change tree *quality*, never query answers.
    let mut rng = StdRng::seed_from_u64(88);
    let objs: Vec<(ObjectId, MovingRect)> = (0..500)
        .map(|i| (ObjectId(i), random_object(&mut rng, 0.0)))
        .collect();
    let mut answers: Vec<Vec<ObjectId>> = Vec::new();
    for integral in [true, false] {
        for reinsert in [true, false] {
            let pool = BufferPool::new(
                Arc::new(InMemoryStore::new()),
                BufferPoolConfig::with_capacity(128),
            );
            let config = TreeConfig {
                capacity: 10,
                integral_metrics: integral,
                forced_reinsert: reinsert,
                ..TreeConfig::default()
            };
            let mut tree = TprTree::new(pool, config);
            for &(oid, mbr) in &objs {
                tree.insert(oid, mbr, 0.0).unwrap();
            }
            // Mixed updates and deletes too.
            for &(oid, mbr) in objs.iter().take(100) {
                let new = random_object(&mut rng, 1.0);
                tree.update(oid, &mbr, new, 1.0).unwrap();
                tree.update(oid, &new, mbr.rebase(1.0), 1.0).unwrap();
            }
            tree.validate(1.0).unwrap();
            let w = Rect::new([300.0, 300.0], [700.0, 700.0]);
            let mut got = tree.range_at(&w, 30.0).unwrap();
            got.sort();
            answers.push(got);
        }
    }
    for ans in &answers[1..] {
        assert_eq!(ans, &answers[0], "a heuristic combo changed query answers");
    }
}

/// Decoded-node cache differential: twin trees — cache on vs. off — fed
/// the identical workload of inserts (forcing splits), updates, and
/// deletes (forcing dissolves and page frees) must agree on every query
/// at every step. Any stale cached node would corrupt an answer or a
/// structure invariant.
#[test]
fn node_cache_never_serves_stale_nodes() {
    let mut rng = StdRng::seed_from_u64(0xCACE);
    let make = |cache: usize| {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(256),
        );
        TprTree::new(
            pool,
            TreeConfig {
                capacity: 8, // small fanout → frequent splits/dissolves
                node_cache_capacity: cache,
                ..TreeConfig::default()
            },
        )
    };
    let mut plain = make(0);
    let mut cached = make(64); // smaller than the tree → evictions too
    assert!(plain.node_cache_stats().is_none());

    let mut shadow: HashMap<ObjectId, MovingRect> = HashMap::new();
    let mut next_id = 0u64;
    for step in 0..600 {
        let now = (step / 10) as Time;
        let op = rng.gen_range(0..10);
        if op < 5 || shadow.is_empty() {
            let oid = ObjectId(next_id);
            next_id += 1;
            let mbr = random_object(&mut rng, now);
            plain.insert(oid, mbr, now).unwrap();
            cached.insert(oid, mbr, now).unwrap();
            shadow.insert(oid, mbr);
        } else {
            let &oid = shadow.keys().nth(rng.gen_range(0..shadow.len())).unwrap();
            let old = shadow[&oid];
            if op < 8 {
                let new = random_object(&mut rng, now);
                plain.update(oid, &old, new, now).unwrap();
                cached.update(oid, &old, new, now).unwrap();
                shadow.insert(oid, new);
            } else {
                plain.delete(oid, &old, now).unwrap();
                cached.delete(oid, &old, now).unwrap();
                shadow.remove(&oid);
            }
        }

        // Every step: a query through (potentially) cached interior nodes.
        let w = Rect::new([200.0, 200.0], [800.0, 800.0]);
        let q_t = now + rng.gen_range(0.0..30.0);
        let mut a = plain.range_at(&w, q_t).unwrap();
        let mut b = cached.range_at(&w, q_t).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "cached tree diverged at step {step}");

        if step % 97 == 0 {
            plain.validate(now).unwrap();
            cached.validate(now).unwrap();
            let mut oa = plain.iter_objects().unwrap();
            let mut ob = cached.iter_objects().unwrap();
            oa.sort_by_key(|&(oid, _)| oid);
            ob.sort_by_key(|&(oid, _)| oid);
            assert_eq!(oa.len(), shadow.len());
            assert_eq!(oa, ob, "object sets diverged at step {step}");
        }
    }

    // The workload must actually have exercised the cache paths.
    let stats = cached.node_cache_stats().unwrap();
    assert!(stats.hits > 0, "workload never hit the cache");
    assert!(
        stats.invalidations > 0,
        "splits/deletes never invalidated a cached node"
    );
    assert!(stats.insertions > 0);
}

/// A cache hit must return exactly what a fresh decode returns, and
/// clearing the cache must not change any answer.
#[test]
fn node_cache_hit_equals_fresh_decode() {
    let mut rng = StdRng::seed_from_u64(7);
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    );
    let mut tree = TprTree::new(
        pool,
        TreeConfig {
            capacity: 8,
            node_cache_capacity: 512,
            ..TreeConfig::default()
        },
    );
    let shadow = fill(&mut tree, &mut rng, 400, 0.0);

    let root = tree.root_page().unwrap();
    let warm = tree.read_node_arc(root).unwrap();
    let again = tree.read_node_arc(root).unwrap();
    assert!(Arc::ptr_eq(&warm, &again), "second read must be a hit");

    let w = Rect::new([100.0, 100.0], [900.0, 900.0]);
    let mut hot = tree.range_at(&w, 10.0).unwrap();
    tree.clear_node_cache();
    let mut cold = tree.range_at(&w, 10.0).unwrap();
    hot.sort();
    cold.sort();
    assert_eq!(hot, cold);
    assert_eq!(tree.iter_objects().unwrap().len(), shadow.len());
}

/// Migration differential: a tree written entirely in the legacy v1 page
/// encoding answers every query identically to a v2 tree built from the
/// same operations, with every read served by the legacy decode fallback
/// — and rewriting nodes under the default config upgrades pages to v2
/// in place (mixed-format trees stay correct throughout).
#[test]
fn legacy_pages_tree_matches_v2_tree_and_upgrades_in_place() {
    let build = |legacy: bool| {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(256),
        );
        let mut tree = TprTree::new(
            pool,
            TreeConfig {
                capacity: 8,
                ..TreeConfig::default()
            }
            .with_legacy_pages(legacy),
        );
        let mut rng = StdRng::seed_from_u64(99);
        let shadow = fill(&mut tree, &mut rng, 300, 0.0);
        (tree, shadow)
    };
    let (v1_tree, shadow_v1) = build(true);
    let (v2_tree, shadow_v2) = build(false);
    assert_eq!(shadow_v1, shadow_v2);

    let w = Rect::new([100.0, 100.0], [900.0, 900.0]);
    let mut got_v1 = v1_tree.range_at(&w, 15.0).unwrap();
    let mut got_v2 = v2_tree.range_at(&w, 15.0).unwrap();
    got_v1.sort();
    got_v2.sort();
    assert_eq!(got_v1, got_v2, "page encoding changed query answers");

    let s1 = v1_tree.page_format_stats();
    assert_eq!(s1.zero_copy_reads, 0, "legacy tree produced v2 pages");
    assert!(
        s1.decode_fallbacks > 0,
        "legacy tree never hit the fallback"
    );
    let s2 = v2_tree.page_format_stats();
    assert_eq!(s2.decode_fallbacks, 0, "v2 tree fell back to legacy decode");
    assert!(s2.zero_copy_reads > 0, "v2 tree never took the view path");

    // Migration: flip the legacy tree to v2 writes and churn it — every
    // rewritten node upgrades to v2 in place, reads stay correct on the
    // mixed tree throughout.
    let mut migrated = v1_tree;
    migrated.set_legacy_pages(false);
    let mut rng = StdRng::seed_from_u64(7);
    let mut shadow = shadow_v1;
    for oid in (0..300u64).step_by(3).map(ObjectId) {
        let old = shadow[&oid];
        let new = random_object(&mut rng, 1.0);
        migrated.update(oid, &old, new, 1.0).unwrap();
        shadow.insert(oid, new);
    }
    migrated.validate(1.0).unwrap();
    let base = migrated.page_format_stats();
    let mut got = migrated.range_at(&w, 15.0).unwrap();
    let mut expect: Vec<ObjectId> = shadow
        .iter()
        .filter(|(_, m)| m.at(15.0).intersects(&w))
        .map(|(o, _)| *o)
        .collect();
    got.sort();
    expect.sort();
    assert_eq!(got, expect, "mixed-format tree answered wrong");
    let after = migrated.page_format_stats();
    assert!(
        after.zero_copy_reads > base.zero_copy_reads,
        "churned nodes were not upgraded to v2"
    );
}
