//! Guard: the disabled observability path is allocation-free.
//!
//! A counting global allocator wraps the system allocator; the test
//! exercises every record-path operation on handles from a disabled
//! registry and asserts not a single heap allocation happened. This is
//! the "disabled path compiles to no-ops" acceptance gate — engines run
//! with `metrics: false` by default, and that mode must cost nothing on
//! the hot path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use cij_obs::MetricsRegistry;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// Counting the system allocator's calls requires implementing the
// (unsafe) GlobalAlloc trait; the implementation only forwards.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_registry_record_path_never_allocates() {
    // Handle creation from a disabled registry is also allocation-free
    // (no cells, no map entries), so it is inside the measured window.
    let registry = MetricsRegistry::disabled();
    let before = ALLOCATIONS.load(Ordering::Relaxed);

    let counter = registry.counter("hot.path.counter");
    let gauge = registry.gauge("hot.path.gauge");
    let histogram = registry.histogram("hot.path.histogram");
    for i in 0..10_000u64 {
        counter.inc();
        counter.add(i);
        gauge.set(i as i64);
        gauge.add(-1);
        histogram.record(i);
        let span = registry.span("hot.path.span");
        drop(span);
    }
    let snapshot = registry.snapshot();
    assert!(snapshot.is_empty());

    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disabled metrics path allocated {} times",
        after - before
    );
}

#[test]
fn enabled_registry_record_path_does_not_allocate_after_registration() {
    let registry = MetricsRegistry::new();
    let counter = registry.counter("hot.counter");
    let histogram = registry.histogram("hot.histogram");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        counter.inc();
        histogram.record(i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "enabled record path allocated {} times",
        after - before
    );
}
