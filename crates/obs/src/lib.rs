//! # cij-obs — observability substrate for the CIJ stack
//!
//! A lock-free metrics registry shared by every crate in the workspace:
//!
//! * [`CounterCell`] / [`GaugeCell`] / [`HistogramCell`] — the atomic
//!   recording primitives. `cij-storage`'s `IoStats`/`CacheStats` are
//!   built *on* these cells, so registering them in a
//!   [`MetricsRegistry`] exposes the exact same atomics the legacy
//!   snapshot structs read — the registry view is bit-exact with the
//!   legacy counters by construction, not by copying.
//! * [`MetricsRegistry`] — a cheaply clonable handle. Recording through
//!   registered handles is lock-free (atomic adds); only registration
//!   itself takes a mutex (cold path). A registry built with
//!   [`MetricsRegistry::disabled`] hands out no-op handles: no
//!   allocation, no atomics, a single branch per record call — the
//!   zero-overhead mode the engines default to.
//! * [`Histogram`] — log₂-bucketed latency histograms; snapshots report
//!   count/sum and p50/p95/p99 (bucket upper-bound estimates).
//! * [`Span`] — RAII timing into a histogram, used for the per-phase
//!   spans (initial join, maintenance tick, WAL replay, migration).
//! * [`MetricsSnapshot`] — a deterministic (name-sorted) point-in-time
//!   view with a Prometheus text-exposition encoder, a JSON encoder,
//!   and delta arithmetic for per-phase attribution.
//! * [`QuantileSketch`] — a deterministic fixed-range streaming
//!   quantile sketch (linear histogram + interpolation), the substrate
//!   the adaptive shard controller reads partition boundaries from.
//!
//! The crate is dependency-free and allocation-free on the record path.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod encode;
mod histogram;
mod quantile;
mod registry;

pub use encode::validate_prometheus;
pub use histogram::{HistogramCell, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use quantile::QuantileSketch;
pub use registry::{
    Counter, CounterCell, Gauge, GaugeCell, Histogram, MetricsRegistry, MetricsSnapshot, Span,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enabled_registry_counts_and_snapshots_deterministically() {
        let reg = MetricsRegistry::new();
        assert!(reg.is_enabled());
        let c = reg.counter("zeta.ops");
        let c2 = reg.counter("alpha.ops");
        c.add(5);
        c.inc();
        c2.inc();
        let g = reg.gauge("queue.depth");
        g.set(17);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("zeta.ops"), Some(6));
        assert_eq!(snap.counter("alpha.ops"), Some(1));
        assert_eq!(snap.gauge("queue.depth"), Some(17));
        // Deterministic ordering: names sorted.
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha.ops", "zeta.ops"]);
    }

    #[test]
    fn same_name_returns_same_cell() {
        let reg = MetricsRegistry::new();
        reg.counter("x").add(1);
        reg.counter("x").add(2);
        assert_eq!(reg.snapshot().counter("x"), Some(3));
    }

    #[test]
    fn disabled_registry_is_inert() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.counter("x");
        c.add(10);
        reg.gauge("g").set(5);
        reg.histogram("h").record(123);
        drop(reg.span("s"));
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn registered_external_cell_is_a_live_view() {
        let reg = MetricsRegistry::new();
        let cell = Arc::new(CounterCell::new());
        cell.add(7);
        reg.register_counter_cell("io.reads", Arc::clone(&cell));
        assert_eq!(reg.snapshot().counter("io.reads"), Some(7));
        cell.add(3);
        // No re-registration: the registry reads the same atomic.
        assert_eq!(reg.snapshot().counter("io.reads"), Some(10));
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("lat").expect("recorded");
        assert_eq!(hs.count, 1000);
        assert_eq!(hs.sum, 500_500);
        // Log2 upper-bound estimates: p50 of 1..=1000 lies in (256, 512].
        let p50 = hs.quantile(0.50);
        let p99 = hs.quantile(0.99);
        assert!((256.0..=1024.0).contains(&p50), "p50 = {p50}");
        assert!(p99 >= p50, "p99 {p99} < p50 {p50}");
        assert!(p99 <= 1024.0, "p99 = {p99}");
    }

    #[test]
    fn span_records_into_named_histogram() {
        let reg = MetricsRegistry::new();
        {
            let _s = reg.span("phase.work");
            std::hint::black_box(0u64);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("phase.work").expect("span recorded");
        assert_eq!(hs.count, 1);
    }

    #[test]
    fn snapshot_delta_subtracts_counters() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ops");
        c.add(5);
        let before = reg.snapshot();
        c.add(9);
        let delta = reg.snapshot().delta_since(&before);
        assert_eq!(delta.counter("ops"), Some(9));
    }

    #[test]
    fn prometheus_exposition_is_valid_and_json_balanced() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b.total").add(2);
        reg.gauge("q.depth").set(-3);
        reg.histogram("lat.ns").record(100);
        let snap = reg.snapshot();
        let text = snap.to_prometheus();
        let samples = validate_prometheus(&text).expect("valid exposition");
        // counter + gauge + (3 quantiles + sum + count).
        assert_eq!(samples, 7);
        let json = snap.to_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
        assert!(json.contains("\"a.b.total\": 2"));
        assert!(json.contains("\"q.depth\": -3"));
    }
}
