//! Deterministic streaming quantile sketch.
//!
//! The adaptive shard controller needs running quantiles of observed
//! speeds / positions to pick partition boundaries. Classic sketches
//! (GK, KLL, t-digest) are randomized or merge-order sensitive; here
//! determinism is a hard requirement — the same update stream must
//! produce the same boundaries on every run and on every WAL replay,
//! or recovery would rebuild a differently-sharded coordinator. This
//! sketch is therefore a fixed-range linear histogram: `buckets`
//! equal-width counters over `[lo, hi]`, values clamped into range,
//! quantiles read off the cumulative distribution with linear
//! interpolation inside the hit bucket.
//!
//! Accuracy is bounded by the bucket width `(hi - lo) / buckets` —
//! for boundary picking (hundreds of buckets over a workload-bounded
//! domain) that is far below the slack the rebalance imbalance
//! threshold already tolerates. [`halve`](QuantileSketch::halve) decays
//! history so the distribution tracks drift instead of averaging over
//! the whole stream's lifetime; halving is exact integer arithmetic and
//! keeps determinism.

/// A deterministic fixed-range linear-histogram quantile sketch.
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Exact extremes of the observed values (after clamping), so
    /// interpolated quantiles never leave the observed range.
    seen_min: f64,
    seen_max: f64,
}

impl QuantileSketch {
    /// A sketch over `[lo, hi]` with `buckets` equal-width counters.
    ///
    /// # Panics
    /// If `hi <= lo`, `buckets == 0`, or either bound is not finite.
    #[must_use]
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(hi > lo, "sketch range must be non-empty");
        assert!(buckets >= 1, "sketch needs at least one bucket");
        Self {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
            seen_min: f64::INFINITY,
            seen_max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation. Values outside `[lo, hi]` clamp into
    /// range; NaN is ignored.
    pub fn observe(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        let v = value.clamp(self.lo, self.hi);
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = (((v - self.lo) / width) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.seen_min = self.seen_min.min(v);
        self.seen_max = self.seen_max.max(v);
    }

    /// Total observations currently weighted in the sketch (halving
    /// shrinks this — it is a decayed weight, not a lifetime count).
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.total
    }

    /// Whether the sketch has no weight at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `q`-quantile (`q` clamped into `[0, 1]`) of the decayed
    /// distribution, or `None` while the sketch is empty. Piecewise
    /// linear: exact bucket selection from the cumulative counts, then
    /// linear interpolation inside the bucket, clamped to the observed
    /// extremes.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.5 } else { q.clamp(0.0, 1.0) };
        let rank = q * self.total as f64;
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if rank <= next as f64 {
                let into = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                let v = self.lo + (i as f64 + into) * width;
                return Some(v.clamp(self.seen_min, self.seen_max));
            }
            cum = next;
        }
        Some(self.seen_max)
    }

    /// The `k - 1` interior boundaries splitting the distribution into
    /// `k` equal-weight parts — the adaptive policy's band/strip edges.
    /// Strictly non-decreasing; empty when `k <= 1` or the sketch is
    /// empty.
    #[must_use]
    pub fn boundaries(&self, k: usize) -> Vec<f64> {
        if k <= 1 || self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(k - 1);
        for i in 1..k {
            let q = i as f64 / k as f64;
            let b = self.quantile(q).unwrap_or(self.lo);
            // Monotonicity under interpolation rounding.
            let b = out.last().map_or(b, |&prev: &f64| b.max(prev));
            out.push(b);
        }
        out
    }

    /// The `k - 1` interior boundaries of a **churn-aware** `k`-way
    /// split: minimizes, by dynamic programming over the bucket grid,
    ///
    /// ```text
    /// J(edges) = Σ_parts (weight_part / total)²
    ///          + churn_penalty · Σ_edges density(edge)
    /// ```
    ///
    /// where `density(edge)` is the mass share of the two buckets
    /// flanking the edge. The quadratic term is the balance surrogate
    /// (expected probe work grows with the heaviest parts); the linear
    /// term charges each edge for the objects that live next to it —
    /// exactly the ones whose re-steers will keep crossing it and
    /// forcing shard migrations. On a smooth distribution the density
    /// term is the same wherever an edge lands, so the split stays
    /// near equal-weight; on a clustered distribution (the skewed
    /// workloads) edges snap into the inter-cluster gaps, trading a
    /// bounded population imbalance for near-zero migration churn.
    /// `churn_penalty = 0` reduces to the best quadratic balance on the
    /// grid (≈ [`boundaries`](Self::boundaries)).
    ///
    /// Returns strictly ascending edge values on bucket boundaries;
    /// empty when `k <= 1`, the sketch is empty, or the grid has fewer
    /// boundaries than `k - 1`. Deterministic: pure integer/float
    /// arithmetic over the counts with first-wins tie-breaking.
    #[must_use]
    pub fn partition(&self, k: usize, churn_penalty: f64) -> Vec<f64> {
        let b = self.counts.len();
        if k <= 1 || self.total == 0 || b < k {
            return Vec::new();
        }
        let total = self.total as f64;
        // prefix[i] = mass strictly below boundary i (i in 0..=b).
        let mut prefix = vec![0.0f64; b + 1];
        for (i, &c) in self.counts.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c as f64;
        }
        let bal = |lo: usize, hi: usize| {
            let w = (prefix[hi] - prefix[lo]) / total;
            w * w
        };
        // Interior boundary i (1..b) sits between buckets i-1 and i.
        let edge_cost =
            |i: usize| churn_penalty * (self.counts[i - 1] + self.counts[i]) as f64 / total;

        // best[m-1][i]: cost of splitting [0, boundary i) into m parts
        // with the m-th edge at i; from[m-1][i]: that edge's predecessor.
        let parts = k - 1;
        let mut best = vec![vec![f64::INFINITY; b + 1]; parts];
        let mut from = vec![vec![0usize; b + 1]; parts];
        for (i, slot) in best[0].iter_mut().enumerate().take(b).skip(1) {
            *slot = bal(0, i) + edge_cost(i);
        }
        for m in 1..parts {
            let (done, todo) = best.split_at_mut(m);
            let prev = &done[m - 1];
            for i in (m + 1)..b {
                let mut acc = f64::INFINITY;
                let mut arg = 0usize;
                for (h, &p) in prev.iter().enumerate().take(i).skip(m) {
                    let cand = p + bal(h, i);
                    if cand < acc {
                        acc = cand;
                        arg = h;
                    }
                }
                todo[0][i] = acc + edge_cost(i);
                from[m][i] = arg;
            }
        }
        let mut last = 0usize;
        let mut acc = f64::INFINITY;
        for (i, &p) in best[parts - 1].iter().enumerate().take(b).skip(parts) {
            let cand = p + bal(i, b);
            if cand < acc {
                acc = cand;
                last = i;
            }
        }
        if last == 0 {
            return Vec::new();
        }
        let mut idx = Vec::with_capacity(parts);
        let mut at = last;
        for m in (0..parts).rev() {
            idx.push(at);
            if m > 0 {
                at = from[m][at];
            }
        }
        idx.reverse();
        let width = (self.hi - self.lo) / b as f64;
        idx.into_iter()
            .map(|i| self.lo + i as f64 * width)
            .collect()
    }

    /// The decayed mass observed in `[a, b)`: the sum of the buckets
    /// whose midpoints fall inside. Exact when `a` and `b` lie on
    /// bucket boundaries (as [`partition`](Self::partition) edges do);
    /// bucket-granular otherwise.
    #[must_use]
    pub fn mass_between(&self, a: f64, b: f64) -> u64 {
        if b <= a || self.total == 0 {
            return 0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .filter(|(i, _)| {
                let mid = self.lo + (*i as f64 + 0.5) * width;
                mid >= a && mid < b
            })
            .map(|(_, &c)| c)
            .sum()
    }

    /// Halves every bucket (integer division) so newer observations
    /// outweigh old ones — call after each consumed decision to decay
    /// history. Deterministic and idempotent at zero.
    pub fn halve(&mut self) {
        self.total = 0;
        for c in &mut self.counts {
            *c /= 2;
            self.total += *c;
        }
        if self.total == 0 {
            self.seen_min = f64::INFINITY;
            self.seen_max = f64::NEG_INFINITY;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_ramp_are_linear() {
        let mut s = QuantileSketch::new(0.0, 100.0, 200);
        for i in 0..1000 {
            s.observe(i as f64 / 10.0); // 0.0 .. 99.9 uniformly
        }
        assert_eq!(s.weight(), 1000);
        for (q, expect) in [(0.25, 25.0), (0.5, 50.0), (0.75, 75.0)] {
            let got = s.quantile(q).unwrap();
            assert!(
                (got - expect).abs() < 1.0,
                "q={q}: got {got}, expected ~{expect}"
            );
        }
        let bounds = s.boundaries(4);
        assert_eq!(bounds.len(), 3);
        assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn skewed_mass_moves_the_median() {
        // 80% of the mass at the low end, 20% at the top — the median
        // must sit inside the low cluster, and the 0.8 boundary at the
        // cluster gap (this is exactly the VelocitySkew shape).
        let mut s = QuantileSketch::new(0.0, 3.0, 256);
        for i in 0..800 {
            s.observe(0.9 * (i as f64 / 800.0)); // [0, 0.9)
        }
        for i in 0..200 {
            s.observe(2.1 + 0.9 * (i as f64 / 200.0)); // [2.1, 3.0)
        }
        let med = s.quantile(0.5).unwrap();
        assert!(med < 0.9, "median {med} must sit in the slow cluster");
        let b = s.quantile(0.8).unwrap();
        assert!(
            (0.85..=2.15).contains(&b),
            "0.8-quantile {b} must sit at the cluster gap"
        );
    }

    #[test]
    fn clamping_nan_and_extremes() {
        let mut s = QuantileSketch::new(0.0, 1.0, 10);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        s.observe(f64::NAN); // ignored
        assert!(s.is_empty());
        s.observe(-5.0); // clamps to 0.0
        s.observe(7.0); // clamps to 1.0
        assert_eq!(s.weight(), 2);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_eq!(s.quantile(1.0), Some(1.0));
        assert!(s.boundaries(1).is_empty());
    }

    #[test]
    fn halving_decays_weight_but_keeps_shape() {
        let mut s = QuantileSketch::new(0.0, 10.0, 100);
        for i in 0..400 {
            s.observe(f64::from(i % 100) / 10.0);
        }
        let before = s.quantile(0.5).unwrap();
        s.halve();
        assert_eq!(s.weight(), 200);
        let after = s.quantile(0.5).unwrap();
        assert!(
            (before - after).abs() < 0.2,
            "shape drifted: {before} vs {after}"
        );
        // Halving to zero empties the sketch cleanly.
        let mut tiny = QuantileSketch::new(0.0, 1.0, 4);
        tiny.observe(0.5);
        tiny.halve();
        assert!(tiny.is_empty());
        assert_eq!(tiny.quantile(0.5), None);
    }

    #[test]
    fn churn_aware_partition_balances_smooth_mass() {
        // Uniform density: the edge-density term is flat, so the DP
        // must land near the equal-weight quartiles.
        let mut s = QuantileSketch::new(0.0, 100.0, 200);
        for i in 0..2000 {
            s.observe(i as f64 / 20.0);
        }
        let edges = s.partition(4, 24.0);
        assert_eq!(edges.len(), 3);
        for (e, expect) in edges.iter().zip([25.0, 50.0, 75.0]) {
            assert!(
                (e - expect).abs() < 2.0,
                "uniform split edge {e} far from {expect}"
            );
        }
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn churn_aware_partition_snaps_edges_into_cluster_gaps() {
        // The VelocitySkew shape: 80% of mass in [0, 0.9], 20% in
        // [2.1, 3.0], nothing between. Equal-weight quartiles would cut
        // the slow cluster twice (maximum churn); the churn-aware split
        // must put every edge in the empty gap instead, accepting the
        // [80%, 0, 0, 20%] imbalance.
        let mut s = QuantileSketch::new(0.0, 3.0, 256);
        for i in 0..1600 {
            s.observe(0.9 * (i as f64 / 1600.0));
        }
        for i in 0..400 {
            s.observe(2.1 + 0.9 * (i as f64 / 400.0));
        }
        let edges = s.partition(4, 24.0);
        assert_eq!(edges.len(), 3);
        for e in &edges {
            assert!(
                (0.89..=2.11).contains(e),
                "edge {e} cuts a cluster instead of the gap {edges:?}"
            );
        }
        // Zero penalty degenerates to the balance-only split, which
        // *does* cut the slow cluster — the penalty is what moves it.
        let greedy = s.partition(4, 0.0);
        assert!(
            greedy.iter().filter(|e| **e < 0.89).count() >= 2,
            "balance-only split should cut the slow cluster: {greedy:?}"
        );
    }

    #[test]
    fn deterministic_across_identical_streams() {
        let feed = |s: &mut QuantileSketch| {
            for i in 0..777 {
                s.observe((i as f64 * 0.37) % 3.0);
            }
        };
        let mut x = QuantileSketch::new(0.0, 3.0, 128);
        let mut y = QuantileSketch::new(0.0, 3.0, 128);
        feed(&mut x);
        feed(&mut y);
        assert_eq!(x.boundaries(4), y.boundaries(4));
        assert_eq!(x.quantile(0.33), y.quantile(0.33));
    }
}
