//! Log₂-bucketed histograms.
//!
//! Bucket `i` holds values whose bit length is `i` — i.e. bucket 0 is
//! exactly `{0}`, bucket `i ≥ 1` covers `[2^(i-1), 2^i)`. 65 buckets
//! cover the whole `u64` range, so recording never clamps. Quantiles are
//! estimated as the upper bound of the bucket containing the requested
//! rank — an overestimate by at most 2× (one octave), which is the
//! standard trade-off for fixed-layout lock-free histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets (bit lengths 0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index of a value: its bit length.
#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`, as `f64` for quantile math.
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else if i >= 64 {
        u64::MAX as f64
    } else {
        ((1u64 << i) - 1) as f64
    }
}

/// A lock-free log₂ histogram. Recording is one atomic add per field.
#[derive(Debug)]
pub struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for HistogramCell {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramCell {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Captures the current contents.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`HistogramCell`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts (bucket = bit length of the value).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q ∈ [0, 1]`: the upper bound of the
    /// bucket containing the rank-`⌈q·count⌉` observation. 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (exact, unlike the quantiles). 0 when
    /// empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Component-wise difference `self − earlier` (saturating).
    #[must_use]
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_and_quantiles() {
        let h = HistogramCell::new();
        h.record(0);
        for _ in 0..98 {
            h.record(10); // bucket 4, upper bound 15
        }
        h.record(1 << 20); // one outlier
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.quantile(0.5), 15.0);
        assert_eq!(s.quantile(0.99), 15.0);
        assert!(s.quantile(1.0) >= (1 << 20) as f64);
        assert!((s.mean() - (98.0 * 10.0 + (1u64 << 20) as f64) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = HistogramCell::new().snapshot();
        assert_eq!(s.p50(), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn delta_subtracts() {
        let h = HistogramCell::new();
        h.record(5);
        let before = h.snapshot();
        h.record(5);
        h.record(9);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 14);
    }
}
