//! Exposition encoders: Prometheus text format and JSON.
//!
//! Metric names in the registry are dotted lowercase paths
//! (`storage.pool.physical_reads`). The Prometheus encoder maps them to
//! `cij_storage_pool_physical_reads` (dots → underscores, `cij_`
//! prefix); histograms are exposed as summaries (p50/p95/p99 quantiles
//! plus `_sum`/`_count`). The JSON encoder keeps the dotted names
//! verbatim. Both outputs are deterministic: the snapshot is
//! name-sorted and the encoders add nothing unordered.

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

fn prom_name(dotted: &str) -> String {
    let mut out = String::with_capacity(dotted.len() + 4);
    out.push_str("cij_");
    for ch in dotted.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// `f64` in a form Prometheus accepts (no trailing-zero trimming needed;
/// `{:e}`-free plain formatting).
fn prom_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

impl MetricsSnapshot {
    /// Encodes the snapshot in the Prometheus text exposition format.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} counter");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, value) in &self.gauges {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} gauge");
            let _ = writeln!(out, "{p} {value}");
        }
        for (name, hist) in &self.histograms {
            let p = prom_name(name);
            let _ = writeln!(out, "# TYPE {p} summary");
            for (q, v) in [
                ("0.5", hist.p50()),
                ("0.95", hist.p95()),
                ("0.99", hist.p99()),
            ] {
                let _ = writeln!(out, "{p}{{quantile=\"{q}\"}} {}", prom_f64(v));
            }
            let _ = writeln!(out, "{p}_sum {}", hist.sum);
            let _ = writeln!(out, "{p}_count {}", hist.count);
        }
        out
    }

    /// Encodes the snapshot as a JSON object with `counters`, `gauges`
    /// and `histograms` sections (dotted metric names as keys).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn entries<T, F: Fn(&T) -> String>(items: &[(String, T)], fmt: F) -> String {
            let body: Vec<String> = items
                .iter()
                .map(|(name, v)| format!("\"{name}\": {}", fmt(v)))
                .collect();
            format!("{{{}}}", body.join(", "))
        }
        let counters = entries(&self.counters, u64::to_string);
        let gauges = entries(&self.gauges, i64::to_string);
        let histograms = entries(&self.histograms, |h| {
            format!(
                "{{\"count\": {}, \"sum\": {}, \"p50\": {:.1}, \"p95\": {:.1}, \"p99\": {:.1}, \"mean\": {:.1}}}",
                h.count,
                h.sum,
                h.p50(),
                h.p95(),
                h.p99(),
                h.mean()
            )
        });
        format!("{{\"counters\": {counters}, \"gauges\": {gauges}, \"histograms\": {histograms}}}")
    }
}

/// Validates a Prometheus text exposition: every line must be a comment
/// (`# …`), blank, or a `name[{labels}] value` sample with a legal
/// metric name and a parseable value. Returns the number of samples.
///
/// This is the checker the CI metrics smoke step and the bench binaries
/// run over their own output — a regression in the encoder fails fast
/// instead of producing an exposition a real scraper would reject.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {}: unclosed label braces", lineno + 1))?;
                if close < brace {
                    return Err(format!("line {}: malformed labels", lineno + 1));
                }
                (&line[..brace], line[close + 1..].trim())
            }
            None => match line.split_once(' ') {
                Some((n, v)) => (n, v.trim()),
                None => return Err(format!("line {}: no value", lineno + 1)),
            },
        };
        if !valid_name(name_part.trim()) {
            return Err(format!(
                "line {}: invalid metric name {:?}",
                lineno + 1,
                name_part
            ));
        }
        let value = value_part.trim();
        let parses = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN");
        if !parses {
            return Err(format!(
                "line {}: unparseable value {:?}",
                lineno + 1,
                value
            ));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prom_name_sanitizes() {
        assert_eq!(prom_name("a.b-c.d"), "cij_a_b_c_d");
    }

    #[test]
    fn validator_accepts_good_rejects_bad() {
        assert_eq!(validate_prometheus("# just a comment\n").unwrap(), 0);
        assert_eq!(
            validate_prometheus("# TYPE cij_x counter\ncij_x 5\n").unwrap(),
            1
        );
        assert_eq!(
            validate_prometheus("cij_s{quantile=\"0.5\"} 1.5\ncij_s_count 2\n").unwrap(),
            2
        );
        assert!(validate_prometheus("0badname 5\n").is_err());
        assert!(validate_prometheus("cij_x five\n").is_err());
        assert!(validate_prometheus("cij_x{quantile=\"0.5\" 1\n").is_err());
        assert!(validate_prometheus("lonely_line_without_value\n").is_err());
    }
}
