//! The metrics registry and its recording handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histogram::{HistogramCell, HistogramSnapshot};

/// A monotonic counter cell: one relaxed atomic `u64`.
///
/// This is the primitive `cij-storage`'s `IoStats`/`CacheStats` are
/// built from; registering the *same* `Arc<CounterCell>` in a
/// [`MetricsRegistry`] makes the registry a live, bit-exact view of the
/// legacy counters.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// Creates a zeroed cell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value — used by publish-style views that mirror an
    /// externally accumulated total (e.g. `JoinCounters`) into the
    /// registry, and by `reset`.
    #[inline]
    pub fn store(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge cell: one relaxed atomic `i64`.
#[derive(Debug, Default)]
pub struct GaugeCell(AtomicI64);

impl GaugeCell {
    /// Creates a zeroed cell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Counter handle. `None` inside = no-op (disabled registry).
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Self(None)
    }

    /// Adds `n` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }

    /// Adds one (no-op when disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value (no-op when disabled). See
    /// [`CounterCell::store`].
    #[inline]
    pub fn store(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.store(v);
        }
    }
}

/// Gauge handle. `None` inside = no-op (disabled registry).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Self(None)
    }

    /// Sets the value (no-op when disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Adds `n` (no-op when disabled).
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }
}

/// Histogram handle. `None` inside = no-op (disabled registry).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Self(None)
    }

    /// Records one observation (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(h) = &self.0 {
            h.record(value);
        }
    }

    /// Starts a timing span recording into this histogram on drop.
    /// Disabled handles return an inert span that never reads the clock.
    #[must_use]
    pub fn start_span(&self) -> Span {
        Span {
            inner: self.0.as_ref().map(|h| (Arc::clone(h), Instant::now())),
        }
    }
}

/// RAII timing guard: records elapsed **nanoseconds** into its histogram
/// when dropped. Obtained from [`MetricsRegistry::span`] or
/// [`Histogram::start_span`]. The disabled form holds nothing and never
/// touches the clock.
#[derive(Debug)]
pub struct Span {
    inner: Option<(Arc<HistogramCell>, Instant)>,
}

impl Span {
    /// An inert span.
    #[must_use]
    pub fn noop() -> Self {
        Self { inner: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, started)) = self.inner.take() {
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<CounterCell>>>,
    gauges: Mutex<BTreeMap<String, Arc<GaugeCell>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
}

/// A cheaply clonable metrics registry handle (see the crate docs).
///
/// Recording through handles is lock-free; the mutexes guard only the
/// name → cell maps, taken at registration/snapshot time. Disabled
/// registries (`inner == None`) hand out no-op handles and snapshot to
/// the empty [`MetricsSnapshot`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Option<Arc<RegistryInner>>,
}

impl MetricsRegistry {
    /// Creates an enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// Creates a disabled registry: every handle it hands out is a
    /// no-op, and [`snapshot`](Self::snapshot) is empty.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// [`new`](Self::new) when `enabled`, otherwise
    /// [`disabled`](Self::disabled).
    #[must_use]
    pub fn enabled_if(enabled: bool) -> Self {
        if enabled {
            Self::new()
        } else {
            Self::disabled()
        }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Returns the counter handle for `name`, registering a fresh cell
    /// on first use. Disabled registries return a no-op handle.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter(None);
        };
        let mut map = inner.counters.lock().expect("counter map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(CounterCell::new()));
        Counter(Some(Arc::clone(cell)))
    }

    /// Registers an *existing* cell under `name`, making the registry a
    /// live view of it (replaces any previous cell of that name). No-op
    /// on disabled registries.
    pub fn register_counter_cell(&self, name: &str, cell: Arc<CounterCell>) {
        if let Some(inner) = &self.inner {
            let mut map = inner.counters.lock().expect("counter map poisoned");
            map.insert(name.to_string(), cell);
        }
    }

    /// Returns the gauge handle for `name` (no-op when disabled).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge(None);
        };
        let mut map = inner.gauges.lock().expect("gauge map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(GaugeCell::new()));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Returns the histogram handle for `name` (no-op when disabled).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram(None);
        };
        let mut map = inner.histograms.lock().expect("histogram map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCell::new()));
        Histogram(Some(Arc::clone(cell)))
    }

    /// Starts a timing span recording into histogram `name` on drop.
    /// On a disabled registry this is fully inert (no clock read).
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        if self.inner.is_none() {
            return Span::noop();
        }
        self.histogram(name).start_span()
    }

    /// Captures every registered metric, name-sorted (deterministic).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A deterministic (name-sorted) point-in-time view of a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Whether nothing was registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Counter/histogram-wise difference `self − earlier` (saturating;
    /// gauges keep their current value — deltas of instantaneous values
    /// are meaningless). Names absent from `earlier` keep their value.
    #[must_use]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let prior = earlier.counter(name).unwrap_or(0);
                (name.clone(), v.saturating_sub(prior))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let delta = match earlier.histogram(name) {
                    Some(prior) => h.delta_since(prior),
                    None => *h,
                };
                (name.clone(), delta)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}
