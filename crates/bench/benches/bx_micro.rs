//! Criterion micro-benchmarks for the Bˣ substrate: the Z-order kernel,
//! B⁺-tree throughput, and the Bˣ-vs-TPR update/query contrast.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cij_bench::runner::fresh_pool;
use cij_bx::{z_decompose, z_encode, BxConfig, BxTree};
use cij_tpr::{TprTree, TreeConfig};
use cij_workload::{generate_set, Params, SetTag};

fn bench_zorder(c: &mut Criterion) {
    c.bench_function("bx/z_encode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for x in 0..64u16 {
                for y in 0..64u16 {
                    acc ^= z_encode(black_box(x * 31), black_box(y * 17));
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("bx/z_decompose_window", |b| {
        b.iter(|| black_box(z_decompose(1000, 1400, 2000, 2300, 64).len()))
    });
}

fn bench_update_throughput(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let objs = generate_set(&params, SetTag::A, 0, 0.0);
    let mut group = c.benchmark_group("bx_vs_tpr_updates_2k");
    group.sample_size(10);

    group.bench_function("tpr_update_cycle", |b| {
        let mut tree = TprTree::new(fresh_pool(), TreeConfig::default());
        for o in &objs {
            tree.insert(o.id, o.mbr, 0.0).expect("insert");
        }
        let mut i = 0usize;
        b.iter(|| {
            let o = &objs[i % objs.len()];
            tree.delete(o.id, &o.mbr, 0.0).expect("delete");
            tree.insert(o.id, o.mbr, 0.0).expect("insert");
            i += 1;
        })
    });
    group.bench_function("bx_update_cycle", |b| {
        let config = BxConfig {
            space: params.space,
            max_speed: params.max_speed,
            ..BxConfig::default()
        };
        let mut bx = BxTree::new(fresh_pool(), config);
        for o in &objs {
            bx.insert(o.id, o.mbr, 0.0).expect("insert");
        }
        let mut i = 0usize;
        b.iter(|| {
            let o = &objs[i % objs.len()];
            bx.remove(o.id, &o.mbr, 0.0).expect("remove");
            bx.insert(o.id, o.mbr, 0.0).expect("insert");
            i += 1;
        })
    });
    group.finish();
}

fn bench_window_queries(c: &mut Criterion) {
    let params = Params {
        dataset_size: 5_000,
        ..Params::default()
    };
    let objs = generate_set(&params, SetTag::A, 0, 0.0);
    let window = cij_geom::Rect::new([400.0, 400.0], [460.0, 460.0]);
    let mut group = c.benchmark_group("bx_vs_tpr_window_5k");

    let mut tpr = TprTree::new(fresh_pool(), TreeConfig::default());
    for o in &objs {
        tpr.insert(o.id, o.mbr, 0.0).expect("insert");
    }
    group.bench_function("tpr_range_at", |b| {
        b.iter(|| black_box(tpr.range_at(&window, 30.0).expect("query").len()))
    });

    let config = BxConfig {
        space: params.space,
        max_speed: params.max_speed,
        ..BxConfig::default()
    };
    let mut bx = BxTree::new(fresh_pool(), config);
    for o in &objs {
        bx.insert(o.id, o.mbr, 0.0).expect("insert");
    }
    group.bench_function("bx_range_at", |b| {
        b.iter(|| black_box(bx.range_at(&window, 30.0).expect("query").len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_zorder,
    bench_update_throughput,
    bench_window_queries
);
criterion_main!(benches);
