//! Criterion micro-benchmarks for the continuous engines: one tick of
//! maintenance (updates + event processing) under each engine — the
//! steady-state cost the paper's Fig. 13 amortizes per update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cij_bench::runner::EngineKind;
use cij_join::techniques;
use cij_workload::Params;

fn params() -> Params {
    Params {
        dataset_size: 1_000,
        ..Params::default()
    }
}

/// One measured iteration = advance a fresh engine through `ticks` ticks
/// of the deterministic update stream.
fn run_ticks(kind: EngineKind, ticks: u32) -> usize {
    let p = params();
    let (mut engine, mut stream, _pool) = kind.build(&p, techniques::ALL).expect("build");
    engine.run_initial_join(0.0).expect("initial");
    for tick in 1..=ticks {
        let now = f64::from(tick);
        engine.advance_time(now).expect("advance");
        for u in stream.tick(now) {
            engine.apply_update(&u, now).expect("update");
        }
    }
    engine.result_at(f64::from(ticks)).len()
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_5_ticks_1k");
    group.sample_size(10);
    for kind in [
        EngineKind::Tc,
        EngineKind::Mtb,
        EngineKind::Etp,
        EngineKind::Naive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| b.iter(|| black_box(run_ticks(*kind, 5))),
        );
    }
    group.finish();
}

fn bench_initial_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_initial_1k");
    group.sample_size(10);
    for kind in [
        EngineKind::Tc,
        EngineKind::Mtb,
        EngineKind::Etp,
        EngineKind::Naive,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let p = params();
                    let (mut engine, _stream, _pool) =
                        kind.build(&p, techniques::ALL).expect("build");
                    engine.run_initial_join(0.0).expect("initial");
                    black_box(engine.result_at(0.0).len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance, bench_initial_join);
criterion_main!(benches);
