//! Criterion micro-benchmarks for the TPR-tree: build, update and probe
//! throughput — the index-side costs every engine pays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cij_bench::runner::fresh_pool;
use cij_geom::{MovingRect, Rect};
use cij_tpr::{ObjectId, TprTree, TreeConfig};
use cij_workload::{generate_set, Params, SetTag};

fn params(n: usize) -> Params {
    Params {
        dataset_size: n,
        ..Params::default()
    }
}

fn bench_build(c: &mut Criterion) {
    let objs = generate_set(&params(2_000), SetTag::A, 0, 0.0);
    let mut group = c.benchmark_group("tree");
    group.sample_size(10);
    group.bench_function("build_2k_inserts", |b| {
        b.iter(|| {
            let mut tree = TprTree::new(fresh_pool(), TreeConfig::default());
            for o in &objs {
                tree.insert(o.id, o.mbr, 0.0).expect("insert");
            }
            black_box(tree.len())
        })
    });
    group.finish();
}

fn bench_update_cycle(c: &mut Criterion) {
    let objs = generate_set(&params(2_000), SetTag::A, 0, 0.0);
    let mut tree = TprTree::new(fresh_pool(), TreeConfig::default());
    for o in &objs {
        tree.insert(o.id, o.mbr, 0.0).expect("insert");
    }
    let mut group = c.benchmark_group("tree");
    group.bench_function("update_cycle_2k", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let o = &objs[i % objs.len()];
            // Delete + reinsert at the same trajectory: the index-side
            // cost of one object update.
            tree.delete(o.id, &o.mbr, 0.0).expect("delete");
            tree.insert(o.id, o.mbr, 0.0).expect("insert");
            i += 1;
            black_box(i)
        })
    });
    group.finish();
}

fn bench_probes(c: &mut Criterion) {
    let objs = generate_set(&params(5_000), SetTag::A, 0, 0.0);
    let probe = MovingRect::rigid(Rect::new([500.0, 500.0], [505.0, 505.0]), [2.0, -1.0], 0.0);
    let window = Rect::new([480.0, 480.0], [540.0, 540.0]);
    let mut group = c.benchmark_group("tree");
    // Cache-off (the paper's I/O-faithful mode) vs cache-on: the delta on
    // a warm pool is the per-read page-decode cost the cache removes.
    for (suffix, cache) in [("", 0usize), ("_cached", 1024)] {
        let mut tree = TprTree::new(fresh_pool(), TreeConfig::default().with_node_cache(cache));
        for o in &objs {
            tree.insert(o.id, o.mbr, 0.0).expect("insert");
        }
        group.bench_function(format!("range_at_5k{suffix}"), |b| {
            b.iter(|| black_box(tree.range_at(&window, 30.0).expect("query").len()))
        });
        group.bench_function(format!("intersect_window_5k_tm{suffix}"), |b| {
            b.iter(|| {
                black_box(
                    tree.intersect_window(&probe, 0.0, 60.0)
                        .expect("query")
                        .len(),
                )
            })
        });
        group.bench_function(format!("intersect_window_5k_unbounded{suffix}"), |b| {
            b.iter(|| {
                black_box(
                    tree.intersect_window(&probe, 0.0, cij_geom::INFINITE_TIME)
                        .expect("query")
                        .len(),
                )
            })
        });
    }
    group.finish();
    let _ = ObjectId(0);
}

criterion_group!(benches, bench_build, bench_update_cycle, bench_probes);
criterion_main!(benches);
