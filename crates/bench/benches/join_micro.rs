//! Criterion micro-benchmarks for the join kernels: the geometry
//! primitive, plane sweep vs nested loop, and the Fig. 8 technique
//! combinations on a fixed workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use std::sync::Arc;

use cij_bench::runner::{build_pair_trees, build_pair_trees_with, fresh_pool, tree_config};
use cij_geom::{MovingRect, Rect};
use cij_join::{
    improved_join, improved_join_into, naive_join, ps_intersection, ps_intersection_soa,
    techniques, JoinCounters, JoinScratch, SweepItem, SweepSoa,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::Params;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rects(n: usize, seed: u64) -> Vec<MovingRect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let s = rng.gen_range(0.5..4.0);
            MovingRect::rigid(
                Rect::new([x, y], [x + s, y + s]),
                [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                0.0,
            )
        })
        .collect()
}

fn bench_intersect_interval(c: &mut Criterion) {
    let rects = random_rects(64, 1);
    c.bench_function("geom/intersect_interval_window", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for a in &rects[..32] {
                for x in &rects[32..] {
                    if black_box(a)
                        .intersect_interval(black_box(x), 0.0, 60.0)
                        .is_some()
                    {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
    c.bench_function("geom/intersect_interval_unbounded", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for a in &rects[..32] {
                for x in &rects[32..] {
                    if black_box(a)
                        .intersect_interval(black_box(x), 0.0, cij_geom::INFINITE_TIME)
                        .is_some()
                    {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
}

fn bench_plane_sweep(c: &mut Criterion) {
    // Node-sized inputs (capacity 30) — the unit of work inside joins.
    let ra = random_rects(30, 2);
    let rb = random_rects(30, 3);
    let mut group = c.benchmark_group("sweep");
    group.bench_function("nested_loop_30x30", |b| {
        b.iter(|| {
            let mut out = 0u32;
            for x in &ra {
                for y in &rb {
                    if x.intersect_interval(y, 0.0, 60.0).is_some() {
                        out += 1;
                    }
                }
            }
            black_box(out)
        })
    });
    group.bench_function("plane_sweep_30x30", |b| {
        b.iter(|| {
            let mut sa: Vec<SweepItem> = ra
                .iter()
                .enumerate()
                .map(|(i, m)| SweepItem::new(*m, i, 0, 0.0, 60.0))
                .collect();
            let mut sb: Vec<SweepItem> = rb
                .iter()
                .enumerate()
                .map(|(i, m)| SweepItem::new(*m, i, 0, 0.0, 60.0))
                .collect();
            let mut counters = JoinCounters::new();
            black_box(ps_intersection(&mut sa, &mut sb, 0.0, 60.0, &mut counters))
        })
    });
    // The allocation-free SoA twin: buffers persist across iterations.
    group.bench_function("plane_sweep_soa_30x30", |b| {
        let mut sa = SweepSoa::new();
        let mut sb = SweepSoa::new();
        let mut out = Vec::new();
        b.iter(|| {
            sa.clear();
            sb.clear();
            for (i, m) in ra.iter().enumerate() {
                sa.push(*m, i as u32, 0, 0.0, 60.0);
            }
            for (i, m) in rb.iter().enumerate() {
                sb.push(*m, i as u32, 0, 0.0, 60.0);
            }
            let mut counters = JoinCounters::new();
            ps_intersection_soa(&mut sa, &mut sb, 0.0, 60.0, &mut counters, &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

/// The PR's headline comparison: warm `improved_join` over a pool large
/// enough that every read is a pool hit, with the decoded-node cache off
/// (every read re-decodes the page) vs on (every read is an `Arc`
/// clone). The delta is pure decode + allocation cost.
fn bench_node_cache(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let big_pool = || {
        BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(8192),
        )
    };
    let mut group = c.benchmark_group("improved_join_2k_pool_hit");
    group.sample_size(20);
    for (name, cache) in [("cache_off", 0usize), ("cache_on_4k", 4096)] {
        let pool = big_pool();
        let config = tree_config(&params).with_node_cache(cache);
        let (ta, tb, _, _) = build_pair_trees_with(&params, &pool, config).expect("trees");
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        // Warm the pool (and cache) so the measured loop is steady-state.
        improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
            .expect("warm-up");
        group.bench_function(name, |b| {
            b.iter(|| {
                improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
                    .expect("join");
                black_box(out.len())
            })
        });
    }
    group.finish();
}

/// The observability acceptance probe: the warm cached join wrapped in
/// exactly the instrumentation the engines apply per maintenance tick —
/// a named span plus a handful of counter publishes — against a
/// disabled registry vs an enabled one. The acceptance bar is enabled ≤
/// 3% over disabled; the disabled variant also pins that the no-op path
/// adds nothing measurable over the bare join above.
fn bench_metrics_overhead(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(8192),
    );
    let config = tree_config(&params).with_node_cache(4096);
    let (ta, tb, _, _) = build_pair_trees_with(&params, &pool, config).expect("trees");
    let mut group = c.benchmark_group("metrics_overhead_2k");
    group.sample_size(20);
    for (name, registry) in [
        ("disabled", cij_obs::MetricsRegistry::disabled()),
        ("enabled", cij_obs::MetricsRegistry::new()),
    ] {
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
            .expect("warm-up");
        group.bench_function(name, |b| {
            b.iter(|| {
                let _span = registry.span("phase.maintenance_tick");
                let mut counters = JoinCounters::new();
                improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)
                    .expect("join");
                counters.pairs_emitted = out.len() as u64;
                registry
                    .counter("join.pairs_emitted")
                    .store(counters.pairs_emitted);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_technique_combos(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool).expect("trees");
    let mut group = c.benchmark_group("improved_join_2k");
    group.sample_size(20);
    for (name, tech) in [
        ("none", techniques::NONE),
        ("ic", techniques::IC),
        ("ps", techniques::PS),
        ("all", techniques::ALL),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &tech, |b, tech| {
            b.iter(|| {
                let (pairs, _) = improved_join(&ta, &tb, 0.0, 60.0, *tech).expect("join");
                black_box(pairs.len())
            })
        });
    }
    group.finish();
}

fn bench_naive_vs_tc(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool).expect("trees");
    let mut group = c.benchmark_group("tc_vs_naive_2k");
    group.sample_size(10);
    group.bench_function("naive_unbounded", |b| {
        b.iter(|| black_box(naive_join(&ta, &tb, 0.0).expect("join").0.len()))
    });
    group.bench_function("tc_window_60", |b| {
        b.iter(|| {
            black_box(
                cij_join::tc_join(&ta, &tb, 0.0, 60.0)
                    .expect("join")
                    .0
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intersect_interval,
    bench_plane_sweep,
    bench_node_cache,
    bench_metrics_overhead,
    bench_technique_combos,
    bench_naive_vs_tc
);
criterion_main!(benches);
