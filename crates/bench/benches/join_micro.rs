//! Criterion micro-benchmarks for the join kernels: the geometry
//! primitive, plane sweep vs nested loop, and the Fig. 8 technique
//! combinations on a fixed workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cij_bench::runner::{build_pair_trees, fresh_pool};
use cij_geom::{MovingRect, Rect};
use cij_join::{improved_join, naive_join, ps_intersection, techniques, JoinCounters, SweepItem};
use cij_workload::Params;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_rects(n: usize, seed: u64) -> Vec<MovingRect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..1000.0);
            let y = rng.gen_range(0.0..1000.0);
            let s = rng.gen_range(0.5..4.0);
            MovingRect::rigid(
                Rect::new([x, y], [x + s, y + s]),
                [rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)],
                0.0,
            )
        })
        .collect()
}

fn bench_intersect_interval(c: &mut Criterion) {
    let rects = random_rects(64, 1);
    c.bench_function("geom/intersect_interval_window", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for a in &rects[..32] {
                for x in &rects[32..] {
                    if black_box(a)
                        .intersect_interval(black_box(x), 0.0, 60.0)
                        .is_some()
                    {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
    c.bench_function("geom/intersect_interval_unbounded", |b| {
        b.iter(|| {
            let mut found = 0u32;
            for a in &rects[..32] {
                for x in &rects[32..] {
                    if black_box(a)
                        .intersect_interval(black_box(x), 0.0, cij_geom::INFINITE_TIME)
                        .is_some()
                    {
                        found += 1;
                    }
                }
            }
            black_box(found)
        })
    });
}

fn bench_plane_sweep(c: &mut Criterion) {
    // Node-sized inputs (capacity 30) — the unit of work inside joins.
    let ra = random_rects(30, 2);
    let rb = random_rects(30, 3);
    let mut group = c.benchmark_group("sweep");
    group.bench_function("nested_loop_30x30", |b| {
        b.iter(|| {
            let mut out = 0u32;
            for x in &ra {
                for y in &rb {
                    if x.intersect_interval(y, 0.0, 60.0).is_some() {
                        out += 1;
                    }
                }
            }
            black_box(out)
        })
    });
    group.bench_function("plane_sweep_30x30", |b| {
        b.iter(|| {
            let mut sa: Vec<SweepItem> = ra
                .iter()
                .enumerate()
                .map(|(i, m)| SweepItem::new(*m, i, 0, 0.0, 60.0))
                .collect();
            let mut sb: Vec<SweepItem> = rb
                .iter()
                .enumerate()
                .map(|(i, m)| SweepItem::new(*m, i, 0, 0.0, 60.0))
                .collect();
            let mut counters = JoinCounters::new();
            black_box(ps_intersection(&mut sa, &mut sb, 0.0, 60.0, &mut counters))
        })
    });
    group.finish();
}

fn bench_technique_combos(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool).expect("trees");
    let mut group = c.benchmark_group("improved_join_2k");
    group.sample_size(20);
    for (name, tech) in [
        ("none", techniques::NONE),
        ("ic", techniques::IC),
        ("ps", techniques::PS),
        ("all", techniques::ALL),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &tech, |b, tech| {
            b.iter(|| {
                let (pairs, _) = improved_join(&ta, &tb, 0.0, 60.0, *tech).expect("join");
                black_box(pairs.len())
            })
        });
    }
    group.finish();
}

fn bench_naive_vs_tc(c: &mut Criterion) {
    let params = Params {
        dataset_size: 2_000,
        ..Params::default()
    };
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool).expect("trees");
    let mut group = c.benchmark_group("tc_vs_naive_2k");
    group.sample_size(10);
    group.bench_function("naive_unbounded", |b| {
        b.iter(|| black_box(naive_join(&ta, &tb, 0.0).expect("join").0.len()))
    });
    group.bench_function("tc_window_60", |b| {
        b.iter(|| {
            black_box(
                cij_join::tc_join(&ta, &tb, 0.0, 60.0)
                    .expect("join")
                    .0
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intersect_interval,
    bench_plane_sweep,
    bench_technique_combos,
    bench_naive_vs_tc
);
criterion_main!(benches);
