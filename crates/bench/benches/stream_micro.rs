//! Criterion micro-benchmarks for the streaming layer: ingest → apply →
//! delta-extraction throughput through a full service, and the marginal
//! cost of delta extraction itself against the snapshot query it
//! replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine, TcEngine};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{IngestOutcome, StreamConfig, StreamService, SubscriptionFilter};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, MovingObject, ObjectUpdate, Params, UpdateStream};

fn bench_params() -> Params {
    Params {
        dataset_size: 500,
        space: 400.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

/// Pre-generates the tick schedule once so every iteration replays the
/// identical update sequence.
fn schedule(params: &Params, ticks: u32) -> Vec<(Time, Vec<ObjectUpdate>)> {
    let (a, b) = generate_pair(params, 0.0);
    let mut stream = UpdateStream::new(params, &a, &b, 0.0);
    (1..=ticks)
        .map(|tick| {
            let now = Time::from(tick);
            (now, stream.tick(now))
        })
        .collect()
}

fn engine_factory(
    kind: &'static str,
) -> impl Fn(
    &EngineConfig,
    &[MovingObject],
    &[MovingObject],
    Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    move |config, a, b, start| {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(128),
        );
        Ok(match kind {
            "tc" => Box::new(TcEngine::new(pool, *config, a, b, start)?),
            _ => Box::new(MtbEngine::new(pool, *config, a, b, start)?),
        })
    }
}

/// Full-service ingest throughput: submit + advance over 30 ticks with
/// one all-pairs subscriber attached, per engine.
fn bench_ingest_throughput(c: &mut Criterion) {
    let params = bench_params();
    let (a, b) = generate_pair(&params, 0.0);
    let plan = schedule(&params, 30);

    let mut group = c.benchmark_group("stream/ingest_30_ticks");
    group.sample_size(10);
    for kind in ["tc", "mtb"] {
        let factory = engine_factory(kind);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |bench, _| {
            bench.iter(|| {
                let config = StreamConfig::builder().batch_capacity(1 << 16).build();
                let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).expect("service");
                let sub = svc.subscribe(SubscriptionFilter::All).expect("subscribe");
                let mut deltas = 0usize;
                for (now, updates) in &plan {
                    for u in updates {
                        assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
                    }
                    deltas += svc.advance_to(*now).expect("advance").len();
                    deltas += svc.poll(sub).expect("poll").len();
                }
                black_box(deltas)
            })
        });
    }
    group.finish();
}

/// The cost the delta layer actually adds per tick: a service advance
/// (incremental extraction) vs the full snapshot query it lets
/// subscribers skip.
fn bench_delta_vs_snapshot(c: &mut Criterion) {
    let params = bench_params();
    let (a, b) = generate_pair(&params, 0.0);
    let plan = schedule(&params, 30);
    let factory = engine_factory("mtb");

    let mut group = c.benchmark_group("stream/per_tick");
    group.sample_size(10);
    group.bench_function("advance_with_deltas", |bench| {
        bench.iter(|| {
            let config = StreamConfig::builder().batch_capacity(1 << 16).build();
            let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).expect("service");
            let mut n = 0usize;
            for (now, updates) in &plan {
                for u in updates {
                    svc.submit(*u, *now);
                }
                n += svc.advance_to(*now).expect("advance").len();
            }
            black_box(n)
        })
    });
    group.bench_function("snapshot_every_tick", |bench| {
        bench.iter(|| {
            // The pre-stream consumption model: re-query the full
            // result at every tick on a bare engine.
            let pool = BufferPool::new(
                Arc::new(InMemoryStore::new()),
                BufferPoolConfig::with_capacity(128),
            );
            let mut engine =
                MtbEngine::new(pool, EngineConfig::default(), &a, &b, 0.0).expect("engine");
            engine.run_initial_join(0.0).expect("initial");
            let mut n = 0usize;
            for (now, updates) in &plan {
                for u in updates {
                    engine.apply_update(u, *now).expect("update");
                }
                engine.gc(*now);
                n += engine.result_at(*now).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ingest_throughput, bench_delta_vs_snapshot);
criterion_main!(benches);
