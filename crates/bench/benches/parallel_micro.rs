//! Criterion micro-benchmarks for the parallel join layer: the improved
//! initial join at each worker count, and the MTB-style multi-job
//! worklist, against the same fixed workload. `threads = 1` is the
//! sequential kernel, so the group doubles as a scaling report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cij_bench::runner::{build_pair_trees, fresh_pool, Scale};
use cij_join::{parallel_improved_join, parallel_improved_multi_join, techniques, JoinJob};
use cij_workload::Params;

fn bench_parallel_initial_join(c: &mut Criterion) {
    let scale = Scale::Small;
    let params = scale.adjust(Params {
        dataset_size: scale.default_size(),
        ..Params::default()
    });
    let t_m = params.maximum_update_interval;
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool).expect("build trees");

    let mut group = c.benchmark_group("parallel/initial_join");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let (pairs, counters) = parallel_improved_join(
                        black_box(&ta),
                        black_box(&tb),
                        0.0,
                        t_m,
                        techniques::ALL,
                        threads,
                    )
                    .expect("join");
                    black_box((pairs.len(), counters))
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_multi_join(c: &mut Criterion) {
    let scale = Scale::Small;
    let params = scale.adjust(Params {
        dataset_size: scale.default_size(),
        ..Params::default()
    });
    let t_m = params.maximum_update_interval;
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool).expect("build trees");
    // Four bucket-pair style jobs over the same trees with staggered
    // windows, sharing one worklist — the MTB initial-join shape.
    let jobs: Vec<JoinJob<'_>> = (0..4)
        .map(|i| JoinJob {
            tree_a: &ta,
            tree_b: &tb,
            t_s: f64::from(i) * 5.0,
            t_e: f64::from(i) * 5.0 + t_m,
        })
        .collect();

    let mut group = c.benchmark_group("parallel/multi_join");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let results =
                        parallel_improved_multi_join(black_box(&jobs), techniques::ALL, threads)
                            .expect("multi join");
                    black_box(results.iter().map(|(p, _)| p.len()).sum::<usize>())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_initial_join,
    bench_parallel_multi_join
);
criterion_main!(benches);
