//! Sustained-ingest saturation benchmark: emits `BENCH_ingest.json`.
//!
//! ```text
//! cargo run --release -p cij-bench --bin bench_ingest            # full run
//! cargo run --release -p cij-bench --bin bench_ingest -- --smoke # CI gate
//! cargo run --release -p cij-bench --bin bench_ingest -- --objects 1000000
//! ```
//!
//! Drives a [`StreamService`] (MTB-Join engine) end to end with a
//! sustained update stream and measures what saturation does to it:
//!
//! * three arrival-rate **schedules** — `steady` (the workload's natural
//!   `1/T_M` rate), `burst` (periodic 6× spikes), `ramp` (linear climb
//!   to 9×, past the queue's high watermark);
//! * four [`ShedPolicy`] settings — `none`, `coalesce_harder`,
//!   `drop_stale_per_object`, `degrade_to_resync` — on identical
//!   schedules, so their shed/refuse/latency trade-offs are directly
//!   comparable.
//!
//! Every cell reports p50/p95/p99 ingest latency, queue depth and
//! freshness lag pulled from the service's cij-obs histograms, the shed
//! and backpressure counters, and a **conservation self-check**: every
//! accepted update must be applied, superseded (`DropStalePerObject`),
//! or still pending — the binary asserts the ledger balances.
//!
//! The queue is sized to ~3× the steady per-tick arrival rate, so the
//! burst and ramp schedules genuinely cross the high watermark and the
//! policies have something to shed. `--objects` scales the workload to
//! the million-object saturation run (space grows as `√N` to hold
//! density constant); `--smoke` shrinks it so CI finishes in seconds.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cij_bench::runner::engine_config;
use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_geom::Time;
use cij_join::techniques;
use cij_obs::validate_prometheus;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_stream::{
    IngestOutcome, ShedPolicy, StreamConfig, StreamResult, StreamService, SubscriptionFilter,
};
use cij_workload::{generate_pair, Params, UpdateStream};

struct Options {
    smoke: bool,
    out: String,
    /// Total objects across both sets (overrides the mode default).
    objects: Option<usize>,
    ticks: Option<u32>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_ingest.json".to_string(),
        objects: None,
        ticks: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let want = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                i += 1;
                opts.out = want(&args, i, "--out");
            }
            "--objects" => {
                i += 1;
                opts.objects = Some(want(&args, i, "--objects").parse().unwrap_or_else(|e| {
                    eprintln!("--objects: {e}");
                    std::process::exit(2);
                }));
            }
            "--ticks" => {
                i += 1;
                opts.ticks = Some(want(&args, i, "--ticks").parse().unwrap_or_else(|e| {
                    eprintln!("--ticks: {e}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other} (use --smoke, --out PATH, --objects N, --ticks T)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

/// Arrival-rate schedule: how many `UpdateStream::tick` sub-steps (each
/// an independent `1/T_M` draw per object) land inside one service tick.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Schedule {
    /// The workload's natural rate — 1 sub-step per tick.
    Steady,
    /// 2-tick 6× spikes every 8 ticks — tests watermark recovery.
    Burst,
    /// Linear 1× → 9× climb — tests behavior *at* sustained saturation.
    Ramp,
}

impl Schedule {
    fn label(self) -> &'static str {
        match self {
            Self::Steady => "steady",
            Self::Burst => "burst",
            Self::Ramp => "ramp",
        }
    }

    /// Sub-step multiplier for `tick` (1-based) of `ticks`.
    fn multiplier(self, tick: u32, ticks: u32) -> u32 {
        match self {
            Self::Steady => 1,
            Self::Burst => {
                if tick % 8 < 2 {
                    6
                } else {
                    1
                }
            }
            Self::Ramp => 1 + tick * 8 / ticks.max(1),
        }
    }
}

/// Quantile summary of one cij-obs histogram.
struct Quantiles {
    count: u64,
    p50: f64,
    p95: f64,
    p99: f64,
    mean: f64,
}

impl Quantiles {
    fn from_snapshot(s: Option<&cij_obs::HistogramSnapshot>) -> Self {
        let s = s.copied().unwrap_or_default();
        Self {
            count: s.count,
            p50: s.p50(),
            p95: s.p95(),
            p99: s.p99(),
            mean: s.mean(),
        }
    }
}

struct CellResult {
    schedule: &'static str,
    policy: &'static str,
    threads: usize,
    submitted: u64,
    accepted: u64,
    refused_full: u64,
    refused_stale: u64,
    applied: u64,
    shed_dropped_stale: u64,
    shed_coalesced: u64,
    degrade_engaged: u64,
    degrade_resyncs: u64,
    backpressure_engaged: u64,
    backpressure_released: u64,
    subscriber_dropped: u64,
    deltas: u64,
    /// Updates still waiting in the producer-side retry queue at the
    /// end of the run — nonzero means the service never caught up.
    producer_backlog: u64,
    updates_per_s: f64,
    latency_ns: Quantiles,
    queue_depth: Quantiles,
    freshness_lag_milliticks: Quantiles,
    conservation_ok: bool,
}

/// Workload with space scaled as `√N` so object density (and hence join
/// selectivity) matches the paper's default 10K-per-set setting at any
/// dataset size.
fn scaled_params(per_set: usize) -> Params {
    Params {
        dataset_size: per_set,
        space: 1000.0 * (per_set as f64 / 10_000.0).sqrt(),
        ..Params::default()
    }
}

fn build_service(
    params: &Params,
    policy: ShedPolicy,
    threads: usize,
    capacity: usize,
) -> StreamResult<StreamService> {
    let engine_cfg = engine_config(params, techniques::ALL, 2)
        .to_builder()
        .threads(threads)
        .metrics(true)
        .build();
    let config = StreamConfig::builder()
        .engine(engine_cfg)
        .batch_capacity(capacity)
        .shed_policy(policy)
        .build();
    let (a, b) = generate_pair(params, 0.0);
    let pages = (params.dataset_size / 4).max(8192);
    let factory = move |cfg: &EngineConfig,
                        a: &[cij_workload::MovingObject],
                        b: &[cij_workload::MovingObject],
                        start: Time|
          -> cij_tpr::TprResult<Box<dyn ContinuousJoinEngine>> {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(pages),
        );
        Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, start)?))
    };
    StreamService::new(config, &a, &b, 0.0, &factory)
}

/// Releases one backlog slot for `id`; the object may submit directly
/// again once no backlogged predecessor remains.
fn unblock(
    blocked: &mut std::collections::HashMap<cij_tpr::ObjectId, usize>,
    id: cij_tpr::ObjectId,
) {
    if let Some(n) = blocked.get_mut(&id) {
        *n -= 1;
        if *n == 0 {
            blocked.remove(&id);
        }
    }
}

/// One (schedule × policy × threads) cell: fresh service, `ticks` ticks
/// of schedule-shaped arrivals, metrics pulled from the service's
/// registry at the end. Returns the cell plus the Prometheus exposition
/// of its final registry snapshot.
fn run_cell(
    params: &Params,
    schedule: Schedule,
    policy: ShedPolicy,
    threads: usize,
    ticks: u32,
) -> StreamResult<(CellResult, String)> {
    // ~3× the steady per-tick arrival rate: steady stays comfortably
    // open, burst (6×) and ramp (9×) cross the high watermark.
    let steady_per_tick = (2 * params.dataset_size) / params.maximum_update_interval as usize;
    let capacity = (steady_per_tick * 3).max(64);

    let mut svc = build_service(params, policy, threads, capacity)?;
    let sub = svc.subscribe(SubscriptionFilter::All)?;
    let (a, b) = generate_pair(params, 0.0);
    let mut stream = UpdateStream::new(params, &a, &b, 0.0);

    let (mut submitted, mut accepted, mut refused_full, mut refused_stale) =
        (0u64, 0u64, 0u64, 0u64);
    let mut deltas = 0u64;
    // Producer-side retry queue. A refused update cannot simply be
    // dropped: the workload generator has already advanced the object's
    // trajectory, so its *next* update chains from the refused one's
    // `new_mbr` — applying it without the predecessor would delete an
    // MBR the engine never saw. The chain constraint is per object, so
    // only objects with a backlogged predecessor are held back; fresh
    // updates for other objects still reach the service directly (which
    // is what gives `DropStalePerObject` something to supersede). FIFO
    // retry order preserves every per-object chain.
    let mut backlog: std::collections::VecDeque<cij_workload::ObjectUpdate> =
        std::collections::VecDeque::new();
    let mut blocked: std::collections::HashMap<cij_tpr::ObjectId, usize> =
        std::collections::HashMap::new();
    let t0 = Instant::now();
    for tick in 1..=ticks {
        let now = Time::from(tick);
        let m = schedule.multiplier(tick, ticks);
        for step in 1..=m {
            let at = f64::from(tick - 1) + f64::from(step) / f64::from(m);
            while let Some(&u) = backlog.front() {
                match svc.submit(u, at) {
                    IngestOutcome::Accepted => {
                        accepted += 1;
                        backlog.pop_front();
                        unblock(&mut blocked, u.id);
                    }
                    IngestOutcome::QueueFull => {
                        refused_full += 1;
                        break;
                    }
                    IngestOutcome::Stale => {
                        refused_stale += 1;
                        backlog.pop_front();
                        unblock(&mut blocked, u.id);
                    }
                }
            }
            for u in stream.tick(at) {
                submitted += 1;
                if blocked.contains_key(&u.id) {
                    *blocked.entry(u.id).or_insert(0) += 1;
                    backlog.push_back(u);
                    continue;
                }
                match svc.submit(u, at) {
                    IngestOutcome::Accepted => accepted += 1,
                    IngestOutcome::QueueFull => {
                        refused_full += 1;
                        *blocked.entry(u.id).or_insert(0) += 1;
                        backlog.push_back(u);
                    }
                    IngestOutcome::Stale => refused_stale += 1,
                }
            }
        }
        deltas += svc.advance_to(now)?.len() as u64;
        let _ = svc.poll(sub);
    }
    // Flush ticks that CoalesceHarder may have quantized past the end so
    // the conservation ledger closes with an empty queue.
    if let ShedPolicy::CoalesceHarder { window } = policy {
        deltas += svc.advance_to(f64::from(ticks) + window + 1.0)?.len() as u64;
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let snap = svc.metrics_snapshot();
    let exposition = snap.to_prometheus();
    let counter = |name: &str| snap.counter(name).unwrap_or(0);
    let latency_ns = Quantiles::from_snapshot(snap.histogram("stream.ingest.latency_ns"));
    let applied = latency_ns.count;
    let pending = svc.queue_len() as u64;
    let conservation_ok = accepted == applied + svc.shed_dropped_stale() + pending;
    assert!(
        conservation_ok,
        "conservation violated in {}/{}: accepted {} != applied {} + shed {} + pending {}",
        schedule.label(),
        policy.label(),
        accepted,
        applied,
        svc.shed_dropped_stale(),
        pending,
    );

    Ok((
        CellResult {
            schedule: schedule.label(),
            policy: policy.label(),
            threads,
            submitted,
            accepted,
            refused_full,
            refused_stale,
            applied,
            shed_dropped_stale: svc.shed_dropped_stale(),
            shed_coalesced: svc.shed_coalesced(),
            degrade_engaged: counter("stream.degrade.engaged"),
            degrade_resyncs: counter("stream.degrade.resyncs"),
            backpressure_engaged: counter("stream.backpressure.engaged"),
            backpressure_released: counter("stream.backpressure.released"),
            subscriber_dropped: counter("stream.subscribers.dropped_deltas"),
            deltas,
            producer_backlog: backlog.len() as u64,
            updates_per_s: if elapsed > 0.0 {
                applied as f64 / elapsed
            } else {
                0.0
            },
            latency_ns,
            queue_depth: Quantiles::from_snapshot(snap.histogram("stream.ingest.queue_depth")),
            freshness_lag_milliticks: Quantiles::from_snapshot(
                snap.histogram("stream.freshness.lag_milliticks"),
            ),
            conservation_ok,
        },
        exposition,
    ))
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn quantiles_json(q: &Quantiles) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}}}",
        q.count,
        json_num(q.p50),
        json_num(q.p95),
        json_num(q.p99),
        json_num(q.mean),
    )
}

fn cell_json(c: &CellResult) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schedule\": \"{}\", \"policy\": \"{}\", \"threads\": {}, ",
        c.schedule, c.policy, c.threads
    );
    let _ = write!(
        s,
        "\"submitted\": {}, \"accepted\": {}, \"refused_full\": {}, \"refused_stale\": {}, \
         \"applied\": {}, ",
        c.submitted, c.accepted, c.refused_full, c.refused_stale, c.applied
    );
    let _ = write!(
        s,
        "\"shed_dropped_stale\": {}, \"shed_coalesced\": {}, \"degrade_engaged\": {}, \
         \"degrade_resyncs\": {}, ",
        c.shed_dropped_stale, c.shed_coalesced, c.degrade_engaged, c.degrade_resyncs
    );
    let _ = write!(
        s,
        "\"backpressure_engaged\": {}, \"backpressure_released\": {}, \
         \"subscriber_dropped\": {}, \"deltas\": {}, \"producer_backlog\": {}, \
         \"updates_per_s\": {}, ",
        c.backpressure_engaged,
        c.backpressure_released,
        c.subscriber_dropped,
        c.deltas,
        c.producer_backlog,
        json_num(c.updates_per_s)
    );
    let _ = write!(
        s,
        "\"ingest_latency_ns\": {}, \"queue_depth\": {}, \"freshness_lag_milliticks\": {}, \
         \"conservation_ok\": {}}}",
        quantiles_json(&c.latency_ns),
        quantiles_json(&c.queue_depth),
        quantiles_json(&c.freshness_lag_milliticks),
        c.conservation_ok
    );
    s
}

fn main() {
    let opts = parse_args();
    let per_set = opts
        .objects
        .unwrap_or(if opts.smoke { 800 } else { 20_000 })
        / 2;
    let ticks = opts.ticks.unwrap_or(if opts.smoke { 12 } else { 48 });
    let params = scaled_params(per_set.max(10));

    let schedules = [Schedule::Steady, Schedule::Burst, Schedule::Ramp];
    let policies = [
        ShedPolicy::None,
        ShedPolicy::CoalesceHarder { window: 2.0 },
        ShedPolicy::DropStalePerObject,
        ShedPolicy::DegradeToResync,
    ];

    let mut cells = Vec::new();
    let mut exposition = None;
    for schedule in schedules {
        for policy in policies {
            let (cell, prom) =
                run_cell(&params, schedule, policy, 1, ticks).expect("benchmark cell");
            println!(
                "{:<7} {:<22} accepted {:>6}  refused {:>5}  shed {:>5}  p99 latency {:>9.0} ns",
                cell.schedule,
                cell.policy,
                cell.accepted,
                cell.refused_full,
                cell.shed_dropped_stale + cell.shed_coalesced,
                cell.latency_ns.p99,
            );
            if schedule == Schedule::Steady && policy == ShedPolicy::None {
                exposition = Some(prom);
            }
            cells.push(cell);
        }
    }

    // Thread sweep on the steady schedule: the engine-parallelism knob
    // exercised through the full service path.
    let mut thread_cells = Vec::new();
    for threads in [1usize, 4] {
        let (cell, _) = run_cell(&params, Schedule::Steady, ShedPolicy::None, threads, ticks)
            .expect("thread sweep cell");
        println!(
            "threads {threads}: {:.0} applied updates/s",
            cell.updates_per_s
        );
        thread_cells.push(cell);
    }

    let exposition = exposition.expect("steady/none cell ran");
    let samples = validate_prometheus(&exposition)
        .unwrap_or_else(|e| panic!("bench_ingest produced invalid Prometheus exposition: {e}"));

    let summary = cells
        .iter()
        .find(|c| c.schedule == "steady" && c.policy == "none")
        .expect("steady/none cell");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"ingest\",");
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"engine\": \"MTB-Join\",");
    let _ = writeln!(json, "  \"objects_per_set\": {},", params.dataset_size);
    let _ = writeln!(json, "  \"space\": {},", json_num(params.space));
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"ingest_latency_ns\": {{");
    let _ = writeln!(json, "    \"p50\": {},", json_num(summary.latency_ns.p50));
    let _ = writeln!(json, "    \"p95\": {},", json_num(summary.latency_ns.p95));
    let _ = writeln!(json, "    \"p99\": {}", json_num(summary.latency_ns.p99));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", cell_json(c));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"thread_sweep\": [");
    for (i, c) in thread_cells.iter().enumerate() {
        let comma = if i + 1 < thread_cells.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", cell_json(c));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"prometheus_samples\": {samples}, \"validated\": true}}"
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&opts.out, &json).expect("write benchmark json");
    let prom_out = format!("{}.prom", opts.out.trim_end_matches(".json"));
    std::fs::write(&prom_out, &exposition).expect("write prometheus exposition");
    println!(
        "steady/none ingest latency: p50 {:.0} ns, p95 {:.0} ns, p99 {:.0} ns over {} applied",
        summary.latency_ns.p50, summary.latency_ns.p95, summary.latency_ns.p99, summary.applied,
    );
    println!("metrics: {samples} Prometheus samples (exposition validated)");
    println!("wrote {} and {prom_out}", opts.out);
}
