//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! ```text
//! cargo run --release -p cij-bench --bin figures -- all
//! cargo run --release -p cij-bench --bin figures -- fig9 --scale paper
//! ```
//!
//! Subcommands: `table1`, `validate`, `fig7` … `fig22`, `all`.
//! (`fig16`–`fig22` are this repo's own extension experiments; `fig22`
//! is the parallel initial-join scaling driver.)
//!
//! `--scale small` (default) runs the sweep at one tenth of the paper's
//! dataset sizes so the whole suite finishes in minutes; `--scale paper`
//! uses Table I sizes verbatim. Costs are reported as physical disk I/Os
//! (hardware-independent) and wall-clock response time.

use std::time::Duration;

use cij_bench::report::{fmt_duration, Row, Table};
use cij_bench::runner::{
    build_pair_trees, engine_config, fresh_pool, maintenance_cost, measure, EngineKind, Scale,
};
use cij_core::MtbEngine;
use cij_join::{improved_join, naive_join, tc_join, techniques, tp_join, Techniques};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut scale = Scale::Small;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("paper") => Scale::Paper,
                    Some("small") => Scale::Small,
                    other => {
                        eprintln!("unknown scale {other:?} (use small|paper)");
                        std::process::exit(2);
                    }
                };
            }
            c if !c.starts_with('-') => command = c.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let result = match command.as_str() {
        "table1" => table1(scale),
        "validate" => validate(scale),
        "fig7" => fig7(scale),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "fig13" => fig13(scale),
        "fig14" => fig14(scale),
        "fig15" => fig15(scale),
        "fig16" => fig16(scale),
        "fig17" => fig17(scale),
        "fig18" => fig18(scale),
        "fig19" => fig19(scale),
        "fig20" => fig20(scale),
        "fig21" => fig21(scale),
        "fig22" => fig22(scale),
        "all" => [
            table1 as fn(Scale) -> TprResult<()>,
            fig7,
            fig8,
            fig9,
            fig10,
            fig11,
            fig12,
            fig13,
            fig14,
            fig15,
            fig16,
            fig17,
            fig18,
            fig19,
            fig20,
            fig21,
            fig22,
        ]
        .iter()
        .try_for_each(|f| f(scale)),
        other => {
            eprintln!("unknown subcommand {other}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn default_params(scale: Scale) -> Params {
    scale.params()
}

/// Table I — the parameter space (echoed so every run records its
/// configuration).
fn table1(scale: Scale) -> TprResult<()> {
    let mut t = Table::new(
        "Table I — parameters (defaults in use marked *)",
        "Parameter",
        &["Setting"],
    );
    let d = default_params(scale);
    t.push(Row::new(
        "Node capacity",
        vec![format!("{}*", d.node_capacity)],
    ));
    t.push(Row::new(
        "Maximum update interval",
        vec!["60*, 120, 240".into()],
    ));
    t.push(Row::new(
        "Maximum object speed",
        vec!["1, 2, 3*, 4, 5".into()],
    ));
    t.push(Row::new(
        "Object size (% of space side)",
        vec!["0.05%, 0.1%*, 0.2%, 0.4%, 0.8%".into()],
    ));
    t.push(Row::new(
        "Dataset size",
        vec![format!(
            "{} (default {})",
            Scale::Paper
                .size_sweep()
                .iter()
                .map(|&s| Scale::size_label(s))
                .collect::<Vec<_>>()
                .join(", "),
            Scale::size_label(d.dataset_size)
        )],
    ));
    t.push(Row::new(
        "Dataset",
        vec!["Uniform*, Gaussian, Battlefield".into()],
    ));
    t.push(Row::new(
        "Scale",
        vec![format!("{scale:?} (sizes {:?})", scale.size_sweep())],
    ));
    t.print();
    Ok(())
}

/// Fig. 7 — effect of TC processing on the initial join, *without* any
/// improvement technique: NaiveJoin (`[0, ∞)`) vs the time-constrained
/// run (`[0, T_M]`), sweeping dataset size.
fn fig7(scale: Scale) -> TprResult<()> {
    let mut io_t = Table::new(
        "Fig. 7 — effect of TC processing (initial join, no techniques): I/O",
        "size",
        &["Non-TC (NaiveJoin) I/O", "TC I/O", "ratio"],
    );
    let mut rt_t = Table::new(
        "Fig. 7 — effect of TC processing (initial join, no techniques): response time",
        "size",
        &["Non-TC time", "TC time", "ratio"],
    );
    for size in scale.size_sweep() {
        let params = scale.adjust(Params {
            dataset_size: size,
            ..Params::default()
        });
        let t_m = params.maximum_update_interval;
        let pool = fresh_pool();
        let (ta, tb, _, _) = build_pair_trees(&params, &pool)?;
        let ((pairs_n, _), io_n, time_n) = measure(&pool, || naive_join(&ta, &tb, 0.0))?;
        let ((pairs_tc, _), io_tc, time_tc) = measure(&pool, || tc_join(&ta, &tb, 0.0, t_m))?;
        assert!(pairs_tc.len() <= pairs_n.len());
        let label = Scale::size_label(size);
        io_t.push(Row::new(
            label.clone(),
            vec![
                io_n.to_string(),
                io_tc.to_string(),
                format!("{:.1}×", io_n as f64 / io_tc.max(1) as f64),
            ],
        ));
        rt_t.push(Row::new(
            label,
            vec![
                fmt_duration(time_n),
                fmt_duration(time_tc),
                format!(
                    "{:.1}×",
                    time_n.as_secs_f64() / time_tc.as_secs_f64().max(1e-9)
                ),
            ],
        ));
    }
    io_t.print();
    rt_t.print();
    Ok(())
}

/// Fig. 8 — effect of the improvement techniques, independent of TC: all
/// combinations run the same `[0, T_M]` window on the default dataset.
fn fig8(scale: Scale) -> TprResult<()> {
    let params = default_params(scale);
    let t_m = params.maximum_update_interval;
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(&params, &pool)?;
    let mut t = Table::new(
        format!(
            "Fig. 8 — effect of improvement techniques ({} objects, window [0, {t_m}])",
            Scale::size_label(params.dataset_size)
        ),
        "techniques",
        &["I/O", "response time", "entry comparisons", "pairs"],
    );
    let combos: [(&str, Techniques); 6] = [
        ("None", techniques::NONE),
        ("IC", techniques::IC),
        ("PS", techniques::PS),
        ("DS+PS", techniques::DS_PS),
        ("IC+PS", techniques::IC_PS),
        ("ALL", techniques::ALL),
    ];
    let mut expected_pairs = None;
    for (name, tech) in combos {
        let ((pairs, counters), io, time) =
            measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, tech))?;
        match expected_pairs {
            None => expected_pairs = Some(pairs.len()),
            Some(n) => assert_eq!(n, pairs.len(), "technique changed the answer!"),
        }
        t.push(Row::new(
            name,
            vec![
                io.to_string(),
                fmt_duration(time),
                counters.entry_comparisons.to_string(),
                pairs.len().to_string(),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// One algorithm's measured cell: (label, physical I/O, wall time).
type InitialCell = (String, u64, Duration);

/// Shared body of Figs. 9–12: initial-join cost of NaiveJoin (fig 9
/// only), ETP-Join (one TP-Join run) and MTB-Join (improved join, all
/// techniques, `[0, T_M]` window).
fn initial_join_row(params: &Params, include_naive: bool) -> TprResult<(Vec<InitialCell>, usize)> {
    let t_m = params.maximum_update_interval;
    let pool = fresh_pool();
    let (ta, tb, _, _) = build_pair_trees(params, &pool)?;
    let mut cells = Vec::new();
    if include_naive {
        let ((pairs, _), io, time) = measure(&pool, || naive_join(&ta, &tb, 0.0))?;
        let _ = pairs;
        cells.push(("NaiveJoin".to_string(), io, time));
    }
    let (ans, io, time) = measure(&pool, || tp_join(&ta, &tb, 0.0))?;
    let _ = ans;
    cells.push(("ETP-Join".to_string(), io, time));
    let ((pairs, _), io, time) =
        measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, techniques::ALL))?;
    let n_pairs = pairs.len();
    cells.push(("MTB-Join".to_string(), io, time));
    Ok((cells, n_pairs))
}

/// Fig. 9 — initial join cost vs dataset size (all three algorithms).
fn fig9(scale: Scale) -> TprResult<()> {
    let mut io_t = Table::new(
        "Fig. 9 — initial join vs dataset size: I/O",
        "size",
        &["NaiveJoin", "ETP-Join", "MTB-Join"],
    );
    let mut rt_t = Table::new(
        "Fig. 9 — initial join vs dataset size: response time",
        "size",
        &["NaiveJoin", "ETP-Join", "MTB-Join"],
    );
    for size in scale.size_sweep() {
        let params = scale.adjust(Params {
            dataset_size: size,
            ..Params::default()
        });
        let (cells, _) = initial_join_row(&params, true)?;
        io_t.push(Row::new(
            Scale::size_label(size),
            cells.iter().map(|(_, io, _)| io.to_string()).collect(),
        ));
        rt_t.push(Row::new(
            Scale::size_label(size),
            cells.iter().map(|(_, _, t)| fmt_duration(*t)).collect(),
        ));
    }
    io_t.print();
    rt_t.print();
    Ok(())
}

/// Figs. 10–12 share this sweep skeleton (ETP vs MTB, NaiveJoin dropped
/// as in the paper).
fn sweep_initial<P: Clone + std::fmt::Display>(
    title_io: &str,
    title_rt: &str,
    key: &str,
    values: &[P],
    make: impl Fn(&P) -> Params,
) -> TprResult<()> {
    let mut io_t = Table::new(title_io, key, &["ETP-Join", "MTB-Join", "MTB/ETP"]);
    let mut rt_t = Table::new(title_rt, key, &["ETP-Join", "MTB-Join", "MTB/ETP"]);
    for v in values {
        let params = make(v);
        let (cells, _) = initial_join_row(&params, false)?;
        let (etp_io, etp_t) = (cells[0].1, cells[0].2);
        let (mtb_io, mtb_t) = (cells[1].1, cells[1].2);
        io_t.push(Row::new(
            v.to_string(),
            vec![
                etp_io.to_string(),
                mtb_io.to_string(),
                format!("{:.0}%", 100.0 * mtb_io as f64 / etp_io.max(1) as f64),
            ],
        ));
        rt_t.push(Row::new(
            v.to_string(),
            vec![
                fmt_duration(etp_t),
                fmt_duration(mtb_t),
                format!(
                    "{:.0}%",
                    100.0 * mtb_t.as_secs_f64() / etp_t.as_secs_f64().max(1e-9)
                ),
            ],
        ));
    }
    io_t.print();
    rt_t.print();
    Ok(())
}

/// Fig. 10 — initial join vs data distribution.
fn fig10(scale: Scale) -> TprResult<()> {
    let base = default_params(scale);
    sweep_initial(
        "Fig. 10 — initial join vs data distribution: I/O",
        "Fig. 10 — initial join vs data distribution: response time",
        "distribution",
        &[
            Distribution::Uniform,
            Distribution::Gaussian,
            Distribution::Battlefield,
        ],
        |d| Params {
            distribution: *d,
            ..base
        },
    )
}

/// Fig. 11 — initial join vs maximum object speed.
fn fig11(scale: Scale) -> TprResult<()> {
    let base = default_params(scale);
    sweep_initial(
        "Fig. 11 — initial join vs maximum object speed: I/O",
        "Fig. 11 — initial join vs maximum object speed: response time",
        "max speed",
        &[1.0, 2.0, 3.0, 4.0, 5.0],
        |s| Params {
            max_speed: *s,
            ..base
        },
    )
}

/// Fig. 12 — initial join vs object size.
fn fig12(scale: Scale) -> TprResult<()> {
    sweep_initial(
        "Fig. 12 — initial join vs object size: I/O",
        "Fig. 12 — initial join vs object size: response time",
        "object size %",
        &[0.05, 0.1, 0.2, 0.4, 0.8],
        |p| {
            scale.adjust(Params {
                dataset_size: scale.default_size(),
                object_size_pct: *p,
                ..Params::default()
            })
        },
    )
}

/// Maintenance sweep shared by Figs. 13–14: per-update I/O and response
/// time, ETP vs MTB, measured after the bucket structure reaches steady
/// state (`t > T_M`).
fn sweep_maintenance<P: Clone + std::fmt::Display>(
    title: &str,
    key: &str,
    values: &[P],
    make: impl Fn(&P) -> Params,
) -> TprResult<()> {
    let mut t = Table::new(
        title,
        key,
        &[
            "ETP I/O/upd",
            "MTB I/O/upd",
            "ETP time/upd",
            "MTB time/upd",
            "speedup",
        ],
    );
    for v in values {
        let params = make(v);
        let t_m = params.maximum_update_interval;
        // ETP pays a full TP-Join per result change, so its cost per
        // update is enormous at larger sizes — measure a handful of
        // ticks right after the initial join (it has no bucket structure
        // to warm up; per-update cost is stationary from tick 1). MTB
        // warms through a full T_M first so bucket rotation is in steady
        // state, as in the paper's [T_M, 4·T_M] window.
        let etp = maintenance_cost(EngineKind::Etp, &params, techniques::ALL, 0.0, 5.0)?;
        let mtb = maintenance_cost(EngineKind::Mtb, &params, techniques::ALL, t_m, 2.0 * t_m)?;
        let speedup =
            etp.time_per_update.as_secs_f64() / mtb.time_per_update.as_secs_f64().max(1e-9);
        t.push(Row::new(
            v.to_string(),
            vec![
                format!("{:.1}", etp.io_per_update),
                format!("{:.1}", mtb.io_per_update),
                fmt_duration(etp.time_per_update),
                fmt_duration(mtb.time_per_update),
                format!("{speedup:.0}×"),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 13 — maintenance cost per update vs dataset size.
fn fig13(scale: Scale) -> TprResult<()> {
    sweep_maintenance(
        "Fig. 13 — maintenance cost per update vs dataset size (measured after T_M)",
        "size",
        &scale.size_sweep(),
        |s| {
            scale.adjust(Params {
                dataset_size: *s,
                ..Params::default()
            })
        },
    )
}

/// Fig. 14 (§VI-D2 extras, full version of the paper) — maintenance cost
/// under the other parameters: T_M, distribution, speed, object size.
fn fig14(scale: Scale) -> TprResult<()> {
    let base = default_params(scale);
    sweep_maintenance(
        "Fig. 14a — maintenance cost vs maximum update interval",
        "T_M",
        &[60.0, 120.0, 240.0],
        |tm| Params {
            maximum_update_interval: *tm,
            ..base
        },
    )?;
    sweep_maintenance(
        "Fig. 14b — maintenance cost vs data distribution",
        "distribution",
        &[
            Distribution::Uniform,
            Distribution::Gaussian,
            Distribution::Battlefield,
        ],
        |d| Params {
            distribution: *d,
            ..base
        },
    )?;
    sweep_maintenance(
        "Fig. 14c — maintenance cost vs maximum object speed",
        "max speed",
        &[1.0, 3.0, 5.0],
        |s| Params {
            max_speed: *s,
            ..base
        },
    )?;
    sweep_maintenance(
        "Fig. 14d — maintenance cost vs object size",
        "object size %",
        &[0.05, 0.1, 0.4, 0.8],
        |p| {
            scale.adjust(Params {
                dataset_size: scale.default_size(),
                object_size_pct: *p,
                ..Params::default()
            })
        },
    )
}

/// Fig. 15 (ablation, ours) — MTB bucket granularity: buckets per `T_M`
/// vs maintenance cost. `m = 1` degenerates toward plain TC-Join;
/// larger `m` tightens windows but multiplies trees (§IV-C trade-off).
fn fig15(scale: Scale) -> TprResult<()> {
    let params = default_params(scale);
    let t_m = params.maximum_update_interval;
    let mut t = Table::new(
        "Fig. 15 — ablation: MTB buckets per T_M (maintenance, per update)",
        "m",
        &["I/O/upd", "time/upd", "live buckets (end)"],
    );
    for m in [1u32, 2, 4, 8] {
        let pool = fresh_pool();
        let (a, b) = generate_pair(&params, 0.0);
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        let config = engine_config(&params, techniques::ALL, m);
        let mut engine = MtbEngine::new(pool, config, &a, &b, 0.0)?;
        let metrics =
            cij_core::run_simulation(&mut engine, &mut stream, 0.0, 2.0 * t_m, t_m, |_, _| Ok(()))?;
        t.push(Row::new(
            m.to_string(),
            vec![
                format!("{:.1}", metrics.io_per_update()),
                fmt_duration(metrics.time_per_update()),
                engine.mtb_a().bucket_count().to_string(),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 16 (ours) — storage backend: the in-memory I/O simulator vs a
/// real file on disk, same buffer pool, same workload. Physical I/O
/// *counts* must be identical (the simulator's whole point); only wall
/// time differs.
fn fig16(scale: Scale) -> TprResult<()> {
    use cij_storage::{BufferPool, BufferPoolConfig, FileStore, PageStore};
    use std::sync::Arc;

    let params = default_params(scale);
    let t_m = params.maximum_update_interval;
    let mut t = Table::new(
        format!(
            "Fig. 16 — storage backend comparison ({} objects, TC initial join)",
            cij_bench::runner::Scale::size_label(params.dataset_size)
        ),
        "backend",
        &["build time", "join I/O", "join time"],
    );

    // In-memory simulator.
    {
        let pool = fresh_pool();
        let t0 = std::time::Instant::now();
        let (ta, tb, _, _) = build_pair_trees(&params, &pool)?;
        let build = t0.elapsed();
        let ((pairs, _), io, time) =
            measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, techniques::ALL))?;
        let _ = pairs;
        t.push(Row::new(
            "InMemoryStore",
            vec![fmt_duration(build), io.to_string(), fmt_duration(time)],
        ));
    }

    // Real file on disk.
    {
        let mut path = std::env::temp_dir();
        path.push(format!("cij-fig16-{}.pages", std::process::id()));
        let store: Arc<dyn PageStore> =
            Arc::new(FileStore::create(&path).map_err(cij_tpr::TprError::from)?);
        let pool = BufferPool::new(store, BufferPoolConfig::default());
        let t0 = std::time::Instant::now();
        let (ta, tb, _, _) = build_pair_trees(&params, &pool)?;
        let build = t0.elapsed();
        let ((pairs, _), io, time) =
            measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, techniques::ALL))?;
        let _ = pairs;
        t.push(Row::new(
            "FileStore",
            vec![fmt_duration(build), io.to_string(), fmt_duration(time)],
        ));
        let _ = std::fs::remove_file(&path);
    }
    t.print();
    Ok(())
}

/// Fig. 17 (ours) — TPR-tree heuristic ablation: integral-over-horizon
/// metrics (the TPR/TPR* innovation) and R* forced reinserts, toggled
/// independently. Quality metric: cost of the default TC initial join
/// plus per-update maintenance on the resulting trees.
fn fig17(scale: Scale) -> TprResult<()> {
    use cij_tpr::{TprTree, TreeConfig};

    let params = default_params(scale);
    let t_m = params.maximum_update_interval;
    let mut t = Table::new(
        format!(
            "Fig. 17 — TPR-tree heuristic ablation ({} objects)",
            Scale::size_label(params.dataset_size)
        ),
        "tree heuristics",
        &["join I/O @t=0", "join I/O @t=T_M/2", "join time @t=T_M/2"],
    );
    let combos: [(&str, bool, bool); 4] = [
        ("integral + reinsert (TPR*)", true, true),
        ("integral, no reinsert", true, false),
        ("instantaneous + reinsert (R*)", false, true),
        ("instantaneous, no reinsert", false, false),
    ];
    for (name, integral, reinsert) in combos {
        let pool = fresh_pool();
        let config = TreeConfig {
            capacity: params.node_capacity,
            horizon: t_m,
            integral_metrics: integral,
            forced_reinsert: reinsert,
            ..TreeConfig::default()
        };
        let (a, b) = generate_pair(&params, 0.0);
        let mut ta = TprTree::new(pool.clone(), config);
        for o in &a {
            ta.insert(o.id, o.mbr, 0.0)?;
        }
        let mut tb = TprTree::new(pool.clone(), config);
        for o in &b {
            tb.insert(o.id, o.mbr, 0.0)?;
        }
        // Join at build time and again halfway through the horizon —
        // motion-blind trees age badly, which is the point of the
        // integral metrics.
        let (_, io_now, _) = measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, techniques::ALL))?;
        let ((_, _), io_later, time_later) = measure(&pool, || {
            improved_join(&ta, &tb, t_m / 2.0, 3.0 * t_m / 2.0, techniques::ALL)
        })?;
        t.push(Row::new(
            name,
            vec![
                io_now.to_string(),
                io_later.to_string(),
                fmt_duration(time_later),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 18 (ours) — index join vs partition join for the one-shot
/// initial join: ImprovedJoin over TPR-trees vs PBSM over raw object
/// arrays (§VII contrast). PBSM avoids all index I/O but cannot be
/// maintained incrementally — the engines exist because of maintenance.
fn fig18(scale: Scale) -> TprResult<()> {
    use cij_join::partition_join_auto;
    use std::time::Instant;

    let mut t = Table::new(
        "Fig. 18 — initial join: TPR-tree ImprovedJoin vs PBSM partition join",
        "size",
        &["tree I/O", "tree time", "PBSM time", "pairs"],
    );
    for size in scale.size_sweep() {
        let params = scale.adjust(Params {
            dataset_size: size,
            ..Params::default()
        });
        let t_m = params.maximum_update_interval;
        let pool = fresh_pool();
        let (ta, tb, a, b) = build_pair_trees(&params, &pool)?;
        let ((tree_pairs, _), io, tree_time) =
            measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, techniques::ALL))?;

        let to_pairs = |set: &[cij_workload::MovingObject]| {
            set.iter().map(|o| (o.id, o.mbr)).collect::<Vec<_>>()
        };
        let (pa, pb) = (to_pairs(&a), to_pairs(&b));
        let t0 = Instant::now();
        let (pbsm_pairs, _) = partition_join_auto(&pa, &pb, 0.0, t_m);
        let pbsm_time = t0.elapsed();
        assert_eq!(tree_pairs.len(), pbsm_pairs.len(), "algorithms disagree!");

        t.push(Row::new(
            Scale::size_label(size),
            vec![
                io.to_string(),
                fmt_duration(tree_time),
                fmt_duration(pbsm_time),
                tree_pairs.len().to_string(),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 19 (ours) — substrate comparison: TPR-tree vs Bˣ-tree (the index
/// §IV-C's bucketing idea comes from). The classic trade-off: the Bˣ
/// pays far less per update (B⁺-tree insert/delete vs R-tree
/// delete+reinsert) but more per query (enlargement produces false
/// candidates the TPR-tree never visits).
fn fig19(scale: Scale) -> TprResult<()> {
    use cij_bx::{BxConfig, BxTree};
    use cij_tpr::TprTree;
    use std::time::Instant;

    let params = default_params(scale);
    let t_m = params.maximum_update_interval;
    let (a, _) = generate_pair(&params, 0.0);
    let mut t = Table::new(
        format!(
            "Fig. 19 — index substrate: TPR-tree vs Bx-tree ({} objects)",
            Scale::size_label(params.dataset_size)
        ),
        "substrate",
        &[
            "build",
            "1000 updates",
            "upd I/O/op",
            "100 window queries",
            "qry I/O/op",
        ],
    );

    // Workload: build, then 1000 update cycles, then 100 window queries.
    let updates: Vec<usize> = (0..1000).map(|i| (i * 7) % a.len()).collect();
    let windows: Vec<cij_geom::Rect> = (0..100)
        .map(|i| {
            let x = (i * 97 % 900) as f64;
            let y = (i * 61 % 900) as f64;
            cij_geom::Rect::new([x, y], [x + 60.0, y + 60.0])
        })
        .collect();

    // TPR-tree.
    {
        let pool = fresh_pool();
        let stats = pool.stats();
        let t0 = Instant::now();
        let mut tree = TprTree::new(pool.clone(), cij_bench::runner::tree_config(&params));
        for o in &a {
            tree.insert(o.id, o.mbr, 0.0)?;
        }
        let build = t0.elapsed();
        let before = stats.snapshot();
        let t0 = Instant::now();
        for &i in &updates {
            let o = &a[i];
            tree.update(o.id, &o.mbr, o.mbr.rebase(1.0), 1.0)?;
            tree.update(o.id, &o.mbr.rebase(1.0), o.mbr, 1.0)?;
        }
        let upd_time = t0.elapsed();
        let upd_io = (stats.snapshot() - before).physical_total() as f64 / 2000.0;
        let before = stats.snapshot();
        let t0 = Instant::now();
        let mut found = 0usize;
        for w in &windows {
            found += tree.range_at(w, 30.0)?.len();
        }
        let qry_time = t0.elapsed();
        let qry_io = (stats.snapshot() - before).physical_total() as f64 / 100.0;
        let _ = found;
        t.push(Row::new(
            "TPR-tree",
            vec![
                fmt_duration(build),
                fmt_duration(upd_time),
                format!("{upd_io:.1}"),
                fmt_duration(qry_time),
                format!("{qry_io:.1}"),
            ],
        ));
    }

    // Bx-tree.
    {
        let pool = fresh_pool();
        let stats = pool.stats();
        let config = BxConfig {
            t_m,
            space: params.space,
            max_speed: params.max_speed,
            max_extent: params.object_side(),
            ..BxConfig::default()
        };
        let t0 = Instant::now();
        let mut bx = BxTree::new(pool.clone(), config);
        for o in &a {
            bx.insert(o.id, o.mbr, 0.0)?;
        }
        let build = t0.elapsed();
        let before = stats.snapshot();
        let t0 = Instant::now();
        for &i in &updates {
            let o = &a[i];
            bx.update(o.id, &o.mbr, 0.0, o.mbr.rebase(1.0), 1.0)?;
            bx.update(o.id, &o.mbr.rebase(1.0), 1.0, o.mbr, 1.0)?;
        }
        let upd_time = t0.elapsed();
        let upd_io = (stats.snapshot() - before).physical_total() as f64 / 2000.0;
        let before = stats.snapshot();
        let t0 = Instant::now();
        let mut found = 0usize;
        for w in &windows {
            found += bx.range_at(w, 30.0)?.len();
        }
        let qry_time = t0.elapsed();
        let qry_io = (stats.snapshot() - before).physical_total() as f64 / 100.0;
        let _ = found;
        t.push(Row::new(
            "Bx-tree",
            vec![
                fmt_duration(build),
                fmt_duration(upd_time),
                format!("{upd_io:.1}"),
                fmt_duration(qry_time),
                format!("{qry_io:.1}"),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 20 (ours) — dimension selection under axis-skewed motion: the
/// Highway workload (all velocity in x) is where §IV-D2 shines, because
/// sorting on the quiet axis keeps sweep overlaps static-like. Compare
/// PS (always sorts x — the worst axis here) against DS+PS.
fn fig20(scale: Scale) -> TprResult<()> {
    let mut t = Table::new(
        "Fig. 20 — dimension selection vs axis-skewed motion (TC initial join)",
        "workload",
        &[
            "PS comparisons",
            "DS+PS comparisons",
            "saved",
            "PS time",
            "DS+PS time",
        ],
    );
    for dist in [Distribution::Uniform, Distribution::Highway] {
        let params = scale.adjust(Params {
            dataset_size: scale.default_size(),
            distribution: dist,
            ..Params::default()
        });
        let t_m = params.maximum_update_interval;
        let pool = fresh_pool();
        let (ta, tb, _, _) = build_pair_trees(&params, &pool)?;
        let ((_, ps), _, ps_time) =
            measure(&pool, || improved_join(&ta, &tb, 0.0, t_m, techniques::PS))?;
        let ((_, ds), _, ds_time) = measure(&pool, || {
            improved_join(&ta, &tb, 0.0, t_m, techniques::DS_PS)
        })?;
        let saved =
            100.0 * (1.0 - ds.entry_comparisons as f64 / ps.entry_comparisons.max(1) as f64);
        t.push(Row::new(
            dist.to_string(),
            vec![
                ps.entry_comparisons.to_string(),
                ds.entry_comparisons.to_string(),
                format!("{saved:.0}%"),
                fmt_duration(ps_time),
                fmt_duration(ds_time),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 21 (ours) — **per-timestamp** maintenance latency percentiles:
/// events + all of the tick's updates, the quantity the paper's
/// real-time argument is about ("0.1 second may be a preferable choice
/// for a timestamp" — i.e. a tick's whole maintenance must fit in one
/// tick). Averages (Fig. 13) hide the tail; this shows it.
fn fig21(scale: Scale) -> TprResult<()> {
    use cij_bench::LatencyHistogram;
    use std::time::Instant;

    let params = default_params(scale);
    let t_m = params.maximum_update_interval;
    let mut t = Table::new(
        format!(
            "Fig. 21 — per-timestamp maintenance latency percentiles ({} objects)",
            Scale::size_label(params.dataset_size)
        ),
        "engine",
        &["ticks", "p50", "p95", "p99", "max"],
    );
    for kind in [EngineKind::Tc, EngineKind::Mtb, EngineKind::Etp] {
        let (mut engine, mut stream, _pool) = kind.build(&params, techniques::ALL)?;
        engine.run_initial_join(0.0)?;
        let mut hist = LatencyHistogram::new();
        // ETP is orders slower per tick; bound its tick count.
        let ticks = if kind == EngineKind::Etp {
            10
        } else {
            2 * t_m as u32
        };
        for tick in 1..=ticks {
            let now = f64::from(tick);
            let updates = stream.tick(now);
            let t0 = Instant::now();
            engine.advance_time(now)?;
            for u in &updates {
                engine.apply_update(u, now)?;
            }
            hist.record(t0.elapsed());
        }
        t.push(Row::new(
            engine.name(),
            vec![
                hist.len().to_string(),
                fmt_duration(hist.quantile(0.5)),
                fmt_duration(hist.quantile(0.95)),
                fmt_duration(hist.quantile(0.99)),
                fmt_duration(hist.max()),
            ],
        ));
    }
    t.print();
    Ok(())
}

/// Fig. 22 (ours) — parallel initial-join scaling: the MTB-Join initial
/// join (ImprovedJoin with all techniques, window `[0, T_M]`) fanned out
/// over worker threads via `parallel_improved_join`, reading through a
/// lock-striped (64-shard) buffer pool sized to hold both trees — the
/// paper's 50-page pool measures I/O, this figure measures CPU
/// parallelism, so the disk is taken out of the equation. `1 thread`
/// runs the exact sequential kernel; every parallel run is checked
/// bit-identical to it before its time is reported, so the speedup
/// column never trades correctness for wall-clock. Each cell is the
/// best of three runs (the usual guard against scheduler noise).
/// Speedup is bounded by the host's cores: the detected count is
/// recorded in `FIG22_scaling.json` alongside the timings, and a 1-core
/// host gets an explicit "overhead-bound" note instead of a silent
/// ~1.0x row that reads like a parallelism bug.
fn fig22(scale: Scale) -> TprResult<()> {
    use cij_join::parallel_improved_join;
    use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    use std::fmt::Write as _;
    use std::sync::Arc;

    const THREADS: [usize; 4] = [1, 2, 4, 8];
    const REPS: usize = 3;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut t = Table::new(
        format!("Fig. 22 — parallel initial-join scaling (best of 3; host has {cores} core(s))"),
        "size",
        &[
            "1 thread",
            "2 threads",
            "4 threads",
            "8 threads",
            "speedup @4",
        ],
    );
    let mut json_rows: Vec<String> = Vec::new();
    for size in scale.size_sweep() {
        let params = scale.adjust(Params {
            dataset_size: size,
            ..Params::default()
        });
        let t_m = params.maximum_update_interval;
        // Both trees resident: ~size/20 leaf pages per tree plus
        // internals, doubled for slack.
        let frames = (size / 5).max(256);
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::sharded(frames, 64.min(frames)),
        );
        let (ta, tb, _, _) = build_pair_trees(&params, &pool)?;
        let (seq_pairs, seq_counters) = improved_join(&ta, &tb, 0.0, t_m, techniques::ALL)?;
        let mut best: Vec<Duration> = Vec::with_capacity(THREADS.len());
        for threads in THREADS {
            let mut fastest = Duration::MAX;
            for _ in 0..REPS {
                let ((pairs, counters), _, time) = measure(&pool, || {
                    parallel_improved_join(&ta, &tb, 0.0, t_m, techniques::ALL, threads)
                })?;
                assert_eq!(
                    pairs, seq_pairs,
                    "parallel result diverged at {threads} threads"
                );
                assert_eq!(
                    counters, seq_counters,
                    "counters diverged at {threads} threads"
                );
                fastest = fastest.min(time);
            }
            best.push(fastest);
        }
        let speedup = best[0].as_secs_f64() / best[2].as_secs_f64().max(f64::EPSILON);
        let mut cells: Vec<String> = best.iter().map(|d| fmt_duration(*d)).collect();
        cells.push(format!("{speedup:.2}x"));
        t.push(Row::new(Scale::size_label(size), cells));
        let times: Vec<String> = best
            .iter()
            .map(|d| format!("{:.3}", d.as_secs_f64() * 1e3))
            .collect();
        json_rows.push(format!(
            "    {{\"size\": {size}, \"threads\": [1, 2, 4, 8], \"best_ms\": [{}], \
             \"speedup_at_4\": {speedup:.3}}}",
            times.join(", ")
        ));
    }
    t.print();
    if cores == 1 {
        println!(
            "note: overhead-bound: 1 core — the fan-out has no parallelism to exploit \
             on this host, so speedup ~1.0x is the expected ceiling, not a regression."
        );
    }
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"figure\": \"fig22\",");
    let _ = writeln!(json, "  \"detected_cores\": {cores},");
    let _ = writeln!(json, "  \"overhead_bound\": {},", cores == 1);
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"rows\": [");
    let _ = writeln!(json, "{}", json_rows.join(",\n"));
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    std::fs::write("FIG22_scaling.json", &json).map_err(|e| cij_tpr::TprError::Unsupported {
        what: format!("writing FIG22_scaling.json: {e}"),
    })?;
    println!("wrote FIG22_scaling.json (detected_cores={cores})");
    Ok(())
}

/// `validate` — a fast self-check: MTB-Join vs the brute-force oracle
/// over a short continuous run. For users who want evidence before
/// trusting figure output ("is this build producing correct answers?").
fn validate(_scale: Scale) -> TprResult<()> {
    use cij_core::{ContinuousJoinEngine, MtbEngine};
    use cij_join::brute;
    use cij_workload::SetTag;

    let params = Params {
        dataset_size: 200,
        space: 300.0,
        object_size_pct: 1.0,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let mut engine = MtbEngine::new(
        fresh_pool(),
        engine_config(&params, techniques::ALL, 2),
        &a,
        &b,
        0.0,
    )?;
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    engine.run_initial_join(0.0)?;
    let mut checked = 0usize;
    for tick in 0..=70u32 {
        let now = f64::from(tick);
        if tick > 0 {
            for u in stream.tick(now) {
                engine.apply_update(&u, now)?;
            }
        }
        let expect = brute::brute_pairs_at(
            &stream.snapshot(SetTag::A),
            &stream.snapshot(SetTag::B),
            now,
        );
        assert_eq!(
            engine.result_at(now),
            expect,
            "VALIDATION FAILED at t={now}"
        );
        checked += expect.len();
    }
    println!(
        "validate: OK — MTB-Join matched the brute-force oracle at every of 71 ticks \
         ({checked} pair-observations verified)"
    );
    Ok(())
}
