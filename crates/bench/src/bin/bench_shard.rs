//! Machine-readable sharding benchmark: emits `BENCH_shard.json`.
//!
//! ```text
//! cargo run --release -p cij-bench --bin bench_shard            # full run
//! cargo run --release -p cij-bench --bin bench_shard -- --smoke # CI gate
//! cargo run --release -p cij-bench --bin bench_shard -- --out /tmp/s.json
//! ```
//!
//! One MTB-Join engine per joinable shard pair, driven through the
//! [`ShardCoordinator`] over the skewed-velocity workload
//! (`Distribution::VelocitySkew`: 20% of objects near top speed, the
//! rest slow). Policies compared on identical update streams:
//!
//! * `single` — K=1, the unsharded oracle and overhead baseline;
//! * `hash` — K=4 id-hash shards, speed classes mixed in every tree;
//! * `velocity-band` — K=4 speed-magnitude bands, so fast movers (whose
//!   expanded MBRs dominate probe fan-out) stay out of the slow trees;
//! * `spatial-grid` — K=4 x-strips with out-of-reach pairs pruned.
//!
//! * `velocity-band-adaptive` — starts from the same equal-width K=4
//!   bands and lets the telemetry-driven `AdaptiveController` re-fit
//!   the partition to the observed speed distribution via online
//!   re-partitioning: churn-aware boundaries snap into the gap between
//!   the slow and fast clusters, and the empty bands in between merge
//!   away, shrinking K to the workload's true cluster count.
//!
//! The headline number is maintenance-phase node accesses (pool logical
//! reads after the initial trees are built and swept): velocity banding
//! must beat the hash baseline on this workload, and adaptive banding
//! must beat the fixed equal-width bands it starts from — both asserted
//! by the binary. Build-phase reads are reported separately — every K=4
//! policy pays the same replicated-construction cost, so folding it in
//! would only dilute the per-update comparison the paper cares about.
//! The adaptive run's registry snapshot (including the
//! `shard.rebalances` / `shard.rebalance.moved_objects` counters) is
//! exported as a validated Prometheus exposition next to the JSON.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_obs::validate_prometheus;
use cij_shard::{
    AdaptiveConfig, HashPolicy, PartitionPolicy, ShardCoordinator, ShardReport, SpatialGridPolicy,
    VelocityBandPolicy,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::TprResult;
use cij_workload::{Distribution, Params, UpdateStream};

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_shard.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            other => {
                eprintln!("unknown flag {other} (use --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

struct PolicyResult {
    name: &'static str,
    wall_ms: f64,
    report: ShardReport,
    final_pairs: usize,
    /// Pool logical reads spent building + initially sweeping the trees.
    build_reads: u64,
    /// Pool logical reads spent on update maintenance (the headline).
    maint_reads: u64,
}

/// Drives one coordinator over the shared deterministic update stream.
/// With `adaptive` set, the coordinator re-partitions itself whenever
/// the controller's imbalance trigger fires.
fn run_policy(
    name: &'static str,
    policy: Arc<dyn PartitionPolicy>,
    adaptive: Option<AdaptiveConfig>,
    params: &Params,
    threads: usize,
    ticks: u32,
) -> TprResult<PolicyResult> {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(4096),
    );
    let config = EngineConfig {
        t_m: params.maximum_update_interval,
        threads,
        metrics: true,
        ..EngineConfig::default()
    };
    let (set_a, set_b) = cij_workload::generate_pair(params, 0.0);
    let mut stream = UpdateStream::new(params, &set_a, &set_b, 0.0);

    let t0 = Instant::now();
    let stats = pool.stats();
    let mut coord = ShardCoordinator::with_factory(
        pool,
        config,
        policy,
        &set_a,
        &set_b,
        0.0,
        Arc::new(|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?))),
    )?;
    if let Some(cfg) = adaptive {
        coord.enable_adaptive(cfg)?;
    }
    coord.run_initial_join(0.0)?;
    let build_reads = stats.snapshot().logical_reads;
    let mut final_pairs = coord.result_at(0.0).len();
    for tick in 1..=ticks {
        let now = f64::from(tick);
        let updates = stream.tick(now);
        coord.advance_time(now)?;
        coord.apply_batch(&updates, now)?;
        coord.gc(now);
        final_pairs = coord.result_at(now).len();
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let report = coord.report();
    let maint_reads = report.io.logical_reads - build_reads;
    Ok(PolicyResult {
        name,
        wall_ms,
        report,
        final_pairs,
        build_reads,
        maint_reads,
    })
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn policy_json(r: &PolicyResult) -> String {
    let counters = r.report.total_counters();
    // The coordinator runs with metrics enabled, so the report carries a
    // registry snapshot — embed the unified view via the JSON encoder.
    let metrics = r
        .report
        .metrics
        .as_ref()
        .map_or_else(|| "null".to_string(), cij_obs::MetricsSnapshot::to_json);
    let cache = r.report.total_cache().map_or_else(
        || "null".to_string(),
        |c| {
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}}}",
                c.hits, c.misses, c.evictions
            )
        },
    );
    format!(
        "{{\"name\": \"{}\", \"k\": {}, \"engines\": {}, \"migrations\": {}, \
         \"rebalances\": {}, \"rebalance_moved\": {}, \
         \"wall_ms\": {}, \"final_pairs\": {}, \
         \"node_pairs\": {}, \"entry_comparisons\": {}, \"pairs_emitted\": {}, \
         \"build_logical_reads\": {}, \"maintenance_logical_reads\": {}, \
         \"logical_reads\": {}, \"physical_io\": {}, \"pool_hit_ratio\": {}, \
         \"cache\": {}, \"metrics\": {}}}",
        r.name,
        r.report.k,
        r.report.engine_count(),
        r.report.migrations,
        r.report.rebalances,
        r.report.rebalance_moved,
        json_num(r.wall_ms),
        r.final_pairs,
        counters.node_pairs,
        counters.entry_comparisons,
        counters.pairs_emitted,
        r.build_reads,
        r.maint_reads,
        r.report.io.logical_reads,
        r.report.io.physical_total(),
        r.report
            .io
            .hit_ratio()
            .map_or_else(|| "null".to_string(), |h| format!("{h:.4}")),
        cache,
        metrics,
    )
}

fn main() {
    let opts = parse_args();
    let params = Params {
        dataset_size: if opts.smoke { 200 } else { 1_000 },
        distribution: Distribution::VelocitySkew,
        maximum_update_interval: 20.0,
        seed: 7,
        ..Params::default()
    };
    let ticks: u32 = if opts.smoke { 15 } else { 60 };
    let threads = 4;
    let k = 4;

    // The adaptive row starts from the *same* fixed equal-width bands as
    // `velocity-band` and lets the imbalance trigger re-fit both the
    // boundaries and the shard count to the observed speed distribution
    // (VelocitySkew is two clusters, so the empty middle bands merge
    // away) — any win over the fixed row is earned online.
    let adaptive_cfg = AdaptiveConfig::velocity(params.max_speed);
    type PolicyRow = (
        &'static str,
        Arc<dyn PartitionPolicy>,
        Option<AdaptiveConfig>,
    );
    let policies: Vec<PolicyRow> = vec![
        ("single", Arc::new(HashPolicy::new(1)), None),
        ("hash", Arc::new(HashPolicy::new(k)), None),
        (
            "velocity-band",
            Arc::new(VelocityBandPolicy::new(k, params.max_speed)),
            None,
        ),
        (
            "velocity-band-adaptive",
            Arc::new(VelocityBandPolicy::new(k, params.max_speed)),
            Some(adaptive_cfg),
        ),
        (
            "spatial-grid",
            Arc::new(SpatialGridPolicy::for_horizon(
                k,
                params.space,
                params.max_speed,
                params.maximum_update_interval,
                params.object_side(),
            )),
            None,
        ),
    ];

    let results: Vec<PolicyResult> = policies
        .into_iter()
        .map(|(name, policy, adaptive)| {
            run_policy(name, policy, adaptive, &params, threads, ticks).expect(name)
        })
        .collect();

    // All policies are decompositions of one join, so they must agree on
    // the final answer — and velocity banding must earn its keep on the
    // skewed workload by touching fewer tree nodes than blind hashing.
    let single = &results[0];
    for r in &results[1..] {
        assert_eq!(
            r.final_pairs, single.final_pairs,
            "{} disagrees with the single-engine answer",
            r.name
        );
    }
    let hash = &results[1];
    let band = &results[2];
    let adaptive = &results[3];
    assert!(
        band.maint_reads < hash.maint_reads,
        "velocity banding should reduce maintenance node accesses vs hash on the \
         skewed workload ({} vs {})",
        band.maint_reads,
        hash.maint_reads
    );
    assert!(
        adaptive.report.rebalances >= 1,
        "the adaptive controller never re-partitioned — the skewed equal-width \
         start must trip the imbalance trigger"
    );
    // Re-partitioning pays a one-time evict/restore bill that only
    // amortizes over a real run — the 15-tick smoke window is too short
    // by design, so the wins are asserted on the full benchmark only.
    if !opts.smoke {
        assert!(
            adaptive.maint_reads < band.maint_reads,
            "adaptive banding should reduce maintenance node accesses vs the fixed \
             equal-width bands it started from ({} vs {})",
            adaptive.maint_reads,
            band.maint_reads
        );
        assert!(
            adaptive.wall_ms < band.wall_ms,
            "adaptive banding should also win wall-clock vs the fixed bands ({:.1} ms \
             vs {:.1} ms) — merging the empty bands shrinks every update's engine fan",
            adaptive.wall_ms,
            band.wall_ms
        );
    }

    // Export the adaptive run's registry (it carries the rebalance
    // counters) as the bench's Prometheus exposition.
    let exposition = adaptive
        .report
        .metrics
        .as_ref()
        .expect("metrics-on run must snapshot")
        .to_prometheus();
    let samples = validate_prometheus(&exposition)
        .unwrap_or_else(|e| panic!("bench_shard produced invalid Prometheus exposition: {e}"));
    for needle in ["cij_shard_rebalances", "cij_shard_rebalance_moved_objects"] {
        assert!(
            exposition.contains(needle),
            "exposition lacks the {needle} counter"
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"shard\",");
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"engine\": \"MTB-Join\",");
    let _ = writeln!(json, "  \"distribution\": \"{}\",", params.distribution);
    let _ = writeln!(json, "  \"dataset_size\": {},", params.dataset_size);
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"t_m\": {},", params.maximum_update_interval);
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"policies\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", policy_json(r));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"prometheus_samples\": {samples}, \"validated\": true}}"
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&opts.out, &json).expect("write benchmark json");
    let prom_out = format!("{}.prom", opts.out.trim_end_matches(".json"));
    std::fs::write(&prom_out, &exposition).expect("write prometheus exposition");
    for r in &results {
        println!(
            "{:<22} K={} engines={:>2} migrations={:>4} rebalances={} wall={:>8.1} ms \
             build_reads={:>8} maint_reads={:>8} node_pairs={:>6}",
            r.name,
            r.report.k,
            r.report.engine_count(),
            r.report.migrations,
            r.report.rebalances,
            r.wall_ms,
            r.build_reads,
            r.maint_reads,
            r.report.total_counters().node_pairs,
        );
    }
    println!(
        "velocity-band vs hash maintenance node accesses: {} vs {} ({:.1}% saved)",
        band.maint_reads,
        hash.maint_reads,
        100.0 * (1.0 - band.maint_reads as f64 / hash.maint_reads as f64)
    );
    println!(
        "adaptive vs fixed velocity bands: maint_reads {} vs {} ({:.1}% saved), \
         wall {:.1} ms vs {:.1} ms, {} rebalances moving {} objects",
        adaptive.maint_reads,
        band.maint_reads,
        100.0 * (1.0 - adaptive.maint_reads as f64 / band.maint_reads as f64),
        adaptive.wall_ms,
        band.wall_ms,
        adaptive.report.rebalances,
        adaptive.report.rebalance_moved
    );
    println!("metrics: {samples} Prometheus samples (exposition validated)");
    println!("wrote {} and {prom_out}", opts.out);
}
