//! Machine-readable distribution benchmark: emits `BENCH_dist.json`
//! and `BENCH_dist.prom`.
//!
//! ```text
//! cargo run --release -p cij-bench --bin bench_dist            # full run
//! cargo run --release -p cij-bench --bin bench_dist -- --smoke # CI gate
//! cargo run --release -p cij-bench --bin bench_dist -- --out /tmp/d.json
//! ```
//!
//! Prices the coordinator/worker split of `cij-dist` against the
//! in-process shard coordinator it decomposes, on one deterministic
//! skewed-velocity workload under a K = 2 velocity-band policy:
//!
//! * `inproc` — the [`ShardCoordinator`] baseline (no transport);
//! * `loopback` — [`DistCoordinator`] over in-process loopback workers,
//!   isolating the protocol codec cost (every request and response is
//!   encoded and decoded) from socket cost;
//! * `loopback-kill` — the same, with a worker killed mid-run and
//!   restarted from its WAL: the recovery tax in wall-clock and
//!   `dist.*` counters, with the final answer asserted unchanged;
//! * `tcp` — workers served over real sockets (in-process threads, one
//!   listener each), adding kernel round-trips to the codec cost.
//!
//! All modes must land on the same final pair set — the binary asserts
//! it — so the numbers compare cost, never answers.

use std::fmt::Write as _;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cij_core::{ContinuousJoinEngine, EngineConfig, MtbEngine};
use cij_dist::loopback::LoopbackHost;
use cij_dist::tcp::TcpConnector;
use cij_dist::{joinable_pairs, Connector, DistConfig, DistCoordinator, EngineKind, ShardWorker};
use cij_obs::validate_prometheus;
use cij_shard::{PartitionPolicy, ShardCoordinator, VelocityBandPolicy};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_dist.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            other => {
                eprintln!("unknown flag {other} (use --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

fn policy(params: &Params) -> Arc<dyn PartitionPolicy> {
    Arc::new(VelocityBandPolicy::new(2, params.max_speed))
}

fn engine_config(params: &Params) -> EngineConfig {
    EngineConfig {
        t_m: params.maximum_update_interval,
        ..EngineConfig::default()
    }
}

struct ModeResult {
    name: &'static str,
    wall_ms: f64,
    final_pairs: usize,
    workers: usize,
    rpc_calls: u64,
    reconnects: u64,
    resyncs: u64,
    replayed: u64,
    /// Prometheus exposition of the coordinator's registry (`dist`
    /// modes only).
    exposition: Option<String>,
}

/// Drives any engine over the shared deterministic stream; the caller
/// injects faults through `at_tick`.
fn drive(
    engine: &mut dyn ContinuousJoinEngine,
    params: &Params,
    ticks: u32,
    mut at_tick: impl FnMut(u32),
) -> TprResult<(f64, usize)> {
    let (set_a, set_b) = generate_pair(params, 0.0);
    let mut stream = UpdateStream::new(params, &set_a, &set_b, 0.0);
    let t0 = Instant::now();
    engine.run_initial_join(0.0)?;
    let mut final_pairs = engine.result_at(0.0).len();
    for tick in 1..=ticks {
        at_tick(tick);
        let now = f64::from(tick);
        let updates = stream.tick(now);
        engine.advance_time(now)?;
        engine.apply_batch(&updates, now)?;
        engine.gc(now);
        final_pairs = engine.result_at(now).len();
    }
    Ok((t0.elapsed().as_secs_f64() * 1e3, final_pairs))
}

fn run_inproc(params: &Params, ticks: u32) -> ModeResult {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(4096),
    );
    let mut coord = ShardCoordinator::new(
        pool,
        engine_config(params),
        policy(params),
        &generate_pair(params, 0.0).0,
        &generate_pair(params, 0.0).1,
        0.0,
        &|pool, cfg, a, b, now| Ok(Box::new(MtbEngine::new(pool, *cfg, a, b, now)?)),
    )
    .expect("inproc coordinator");
    let workers = coord.engine_count();
    let (wall_ms, final_pairs) = drive(&mut coord, params, ticks, |_| {}).expect("inproc run");
    ModeResult {
        name: "inproc",
        wall_ms,
        final_pairs,
        workers,
        rpc_calls: 0,
        reconnects: 0,
        resyncs: 0,
        replayed: 0,
        exposition: None,
    }
}

fn dist_config(params: &Params) -> DistConfig {
    let cfg = engine_config(params);
    DistConfig {
        engine: EngineKind::Mtb,
        t_m: cfg.t_m,
        buckets_per_tm: cfg.buckets_per_tm,
        metrics: true,
        ..DistConfig::default()
    }
}

fn finish_dist(
    name: &'static str,
    mut coord: DistCoordinator,
    wall_ms: f64,
    final_pairs: usize,
) -> ModeResult {
    coord.publish_metrics();
    let snap = coord.metrics_registry().snapshot();
    let counter = |n: &str| snap.counter(n).unwrap_or(0);
    let result = ModeResult {
        name,
        wall_ms,
        final_pairs,
        workers: coord.worker_count(),
        rpc_calls: counter("dist.rpc.calls"),
        reconnects: counter("dist.reconnects"),
        resyncs: counter("dist.resyncs"),
        replayed: counter("dist.replayed_requests"),
        exposition: Some(snap.to_prometheus()),
    };
    coord.shutdown_workers();
    result
}

/// `kill_at`: tick at which the middle worker is crashed (restarting
/// from its WAL on the next dial); `None` runs fault-free on ephemeral
/// hosts.
fn run_loopback(
    name: &'static str,
    params: &Params,
    ticks: u32,
    kill_at: Option<u32>,
) -> ModeResult {
    let policy = policy(params);
    let slots = joinable_pairs(&*policy).len();
    let mut wal_paths = Vec::new();
    let hosts: Vec<Arc<LoopbackHost>> = (0..slots)
        .map(|idx| {
            if kill_at.is_some() {
                let path = std::env::temp_dir()
                    .join(format!("cij-bench-dist-{idx}-{}.wal", std::process::id()));
                let _ = std::fs::remove_file(&path);
                wal_paths.push(path.clone());
                LoopbackHost::durable(path).expect("durable host")
            } else {
                LoopbackHost::ephemeral()
            }
        })
        .collect();
    let connectors: Vec<Box<dyn Connector>> = hosts
        .iter()
        .map(|h| Box::new(h.connector()) as Box<dyn Connector>)
        .collect();
    let (set_a, set_b) = generate_pair(params, 0.0);
    let mut coord =
        DistCoordinator::new(dist_config(params), policy, connectors, &set_a, &set_b, 0.0)
            .expect("loopback coordinator");
    let victim = slots / 2;
    let (wall_ms, final_pairs) = drive(&mut coord, params, ticks, |tick| {
        if Some(tick) == kill_at {
            hosts[victim].kill();
        }
    })
    .expect("loopback run");
    if kill_at.is_some() {
        assert_eq!(hosts[victim].restarts(), 1, "the kill must force a restart");
    }
    let result = finish_dist(name, coord, wall_ms, final_pairs);
    for path in wal_paths {
        let _ = std::fs::remove_file(path);
    }
    result
}

fn run_tcp(params: &Params, ticks: u32) -> ModeResult {
    let policy = policy(params);
    let slots = joinable_pairs(&*policy).len();
    let mut threads = Vec::new();
    let mut connectors: Vec<Box<dyn Connector>> = Vec::new();
    for _ in 0..slots {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker listener");
        let addr = listener.local_addr().expect("local addr").to_string();
        connectors.push(Box::new(TcpConnector::new(addr, Duration::from_secs(10))));
        threads.push(std::thread::spawn(move || {
            let mut worker = ShardWorker::ephemeral();
            cij_dist::tcp::serve(&listener, &mut worker).expect("serve");
        }));
    }
    let (set_a, set_b) = generate_pair(params, 0.0);
    let mut coord =
        DistCoordinator::new(dist_config(params), policy, connectors, &set_a, &set_b, 0.0)
            .expect("tcp coordinator");
    let (wall_ms, final_pairs) = drive(&mut coord, params, ticks, |_| {}).expect("tcp run");
    let result = finish_dist("tcp", coord, wall_ms, final_pairs);
    for t in threads {
        t.join().expect("worker thread");
    }
    result
}

fn mode_json(r: &ModeResult) -> String {
    format!(
        "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"final_pairs\": {}, \"workers\": {}, \
         \"rpc_calls\": {}, \"reconnects\": {}, \"resyncs\": {}, \"replayed_requests\": {}}}",
        r.name,
        r.wall_ms,
        r.final_pairs,
        r.workers,
        r.rpc_calls,
        r.reconnects,
        r.resyncs,
        r.replayed
    )
}

fn main() {
    let opts = parse_args();
    let params = Params {
        dataset_size: if opts.smoke { 150 } else { 600 },
        distribution: Distribution::VelocitySkew,
        maximum_update_interval: 20.0,
        seed: 11,
        // Dense enough that the final answer is non-empty — the
        // cross-mode equality assertions must compare real pair sets.
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    };
    let ticks: u32 = if opts.smoke { 12 } else { 40 };
    let kill_at = ticks / 2;

    let results = vec![
        run_inproc(&params, ticks),
        run_loopback("loopback", &params, ticks, None),
        run_loopback("loopback-kill", &params, ticks, Some(kill_at)),
        run_tcp(&params, ticks),
    ];

    // The transport must never change the answer — under a kill
    // included — and the fault run must actually have recovered.
    let baseline = &results[0];
    for r in &results[1..] {
        assert!(baseline.final_pairs > 0, "workload produced no pairs");
        assert_eq!(
            r.final_pairs, baseline.final_pairs,
            "{} disagrees with the in-process answer",
            r.name
        );
        assert!(r.rpc_calls > 0, "{}: no RPCs recorded", r.name);
    }
    let kill = &results[2];
    assert!(
        kill.reconnects >= 1,
        "loopback-kill recorded no reconnect ({} reconnects)",
        kill.reconnects
    );
    assert_eq!(
        kill.resyncs, 0,
        "a WAL-intact restart must not need a history resync"
    );

    // The richest registry — the fault run's — becomes the exposition.
    let exposition = kill.exposition.clone().expect("dist mode has a registry");
    let samples = validate_prometheus(&exposition).expect("valid prometheus exposition");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"dist\",");
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"engine\": \"MTB-Join\",");
    let _ = writeln!(json, "  \"policy\": \"velocity-band\",");
    let _ = writeln!(json, "  \"k\": 2,");
    let _ = writeln!(json, "  \"distribution\": \"{}\",", params.distribution);
    let _ = writeln!(json, "  \"dataset_size\": {},", params.dataset_size);
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"kill_at\": {kill_at},");
    let _ = writeln!(json, "  \"modes\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", mode_json(r));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"prometheus_samples\": {samples}, \"validated\": true}}"
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&opts.out, &json).expect("write benchmark json");
    let prom_out = format!("{}.prom", opts.out.trim_end_matches(".json"));
    std::fs::write(&prom_out, &exposition).expect("write prometheus exposition");

    for r in &results {
        println!(
            "{:<14} workers={} wall={:>8.1} ms final_pairs={:>5} rpc_calls={:>6} \
             reconnects={} resyncs={} replayed={}",
            r.name,
            r.workers,
            r.wall_ms,
            r.final_pairs,
            r.rpc_calls,
            r.reconnects,
            r.resyncs,
            r.replayed
        );
    }
    println!(
        "loopback overhead vs inproc: {:.1}% wall; tcp overhead: {:.1}% wall",
        100.0 * (results[1].wall_ms / results[0].wall_ms - 1.0),
        100.0 * (results[3].wall_ms / results[0].wall_ms - 1.0),
    );
    println!("wrote {} and {prom_out}", opts.out);
}
