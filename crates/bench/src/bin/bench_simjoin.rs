//! ε-threshold similarity-join benchmark: emits `BENCH_simjoin.json`.
//!
//! ```text
//! cargo run --release -p cij-bench --bin bench_simjoin            # full run
//! cargo run --release -p cij-bench --bin bench_simjoin -- --smoke # CI gate
//! ```
//!
//! Sweeps the proximity threshold ε over a [`ProximityJoinEngine`] on
//! two workloads and reports the **candidate economics** that govern the
//! filter-and-refine design:
//!
//! * a synthetic uniform workload at the paper's density (space scaled
//!   as `√N`), driven by [`UpdateStream`] — ε from 0 (pure intersection
//!   join) up to a sizeable fraction of an object diameter ×25;
//! * the checked-in Geolife-style trajectory sample replayed through
//!   the `trace` format — the trace-replay selectivity row.
//!
//! Every cell pulls `simjoin.candidates` / `simjoin.refine_rejects` and
//! the `simjoin.refine_ns` histogram **from the engine's cij-obs
//! registry** (not ad-hoc counters), computes the candidate selectivity
//! `accepted / candidates`, and the binary cross-checks the registry
//! totals against the engine's accessors so the exported numbers cannot
//! silently drift from what the metrics pipeline exposes. The registry's
//! Prometheus exposition for one representative cell is validated and
//! written alongside as `BENCH_simjoin.prom`.

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufReader;
use std::sync::Arc;
use std::time::Instant;

use cij_core::{ContinuousJoinEngine, EngineConfig};
use cij_geom::Time;
use cij_obs::validate_prometheus;
use cij_simjoin::{ProximityConfig, ProximityJoinEngine};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::{generate_pair, trace, MovingObject, ObjectUpdate, Params, UpdateStream};

const TRACE_OBJECTS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../workload/data/geolife_sample.objects.csv"
);
const TRACE_UPDATES: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../workload/data/geolife_sample.updates.csv"
);

struct Options {
    smoke: bool,
    out: String,
    ticks: Option<u32>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_simjoin.json".to_string(),
        ticks: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let want = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i)
                .unwrap_or_else(|| {
                    eprintln!("{flag} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                i += 1;
                opts.out = want(&args, i, "--out");
            }
            "--ticks" => {
                i += 1;
                opts.ticks = Some(want(&args, i, "--ticks").parse().unwrap_or_else(|e| {
                    eprintln!("--ticks: {e}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown flag {other} (use --smoke, --out PATH, --ticks T)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

/// One ε sweep point, with counters sourced from the cij-obs registry.
struct Cell {
    workload: &'static str,
    epsilon: f64,
    candidates: u64,
    accepted: u64,
    refine_rejects: u64,
    /// accepted / candidates — how sharp the Minkowski filter is.
    selectivity: f64,
    refine_calls: u64,
    refine_ns_p50: f64,
    refine_ns_p99: f64,
    refine_ns_mean: f64,
    final_pairs: usize,
    elapsed_ms: f64,
    ticks: u32,
}

/// Drives a fresh proximity engine over `(set_a, set_b)` + `schedule`
/// and harvests the cell from its metrics registry. Returns the cell and
/// the registry's Prometheus exposition.
fn run_cell(
    workload: &'static str,
    engine_cfg: EngineConfig,
    epsilon: f64,
    set_a: &[MovingObject],
    set_b: &[MovingObject],
    schedule: &[(Time, Vec<ObjectUpdate>)],
) -> (Cell, String) {
    let pool = BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(256, 8),
    );
    let config = ProximityConfig::new(engine_cfg, epsilon);
    let mut engine =
        ProximityJoinEngine::new(pool, config, set_a, set_b, 0.0).expect("build engine");

    let t0 = Instant::now();
    engine.run_initial_join(0.0).expect("initial join");
    let mut final_pairs = engine.result_at(0.0).len();
    for (now, updates) in schedule {
        engine.advance_time(*now).expect("advance");
        for u in updates {
            engine.apply_update(u, *now).expect("update");
        }
        engine.gc(*now);
        final_pairs = engine.result_at(*now).len();
    }
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    // The exported numbers come from the registry the obs pipeline
    // scrapes; the engine accessors only cross-check them.
    engine.publish_metrics();
    let snap = engine.metrics_registry().snapshot();
    let exposition = snap.to_prometheus();
    let candidates = snap.counter("simjoin.candidates").unwrap_or(0);
    let refine_rejects = snap.counter("simjoin.refine_rejects").unwrap_or(0);
    assert_eq!(
        (candidates, refine_rejects),
        (engine.candidates(), engine.refine_rejects()),
        "registry diverged from engine accessors"
    );
    let refine = snap
        .histogram("simjoin.refine_ns")
        .copied()
        .unwrap_or_default();
    let accepted = candidates - refine_rejects;

    (
        Cell {
            workload,
            epsilon,
            candidates,
            accepted,
            refine_rejects,
            selectivity: if candidates > 0 {
                accepted as f64 / candidates as f64
            } else {
                0.0
            },
            refine_calls: refine.count,
            refine_ns_p50: refine.p50(),
            refine_ns_p99: refine.p99(),
            refine_ns_mean: refine.mean(),
            final_pairs,
            elapsed_ms,
            ticks: schedule.len() as u32,
        },
        exposition,
    )
}

/// Synthetic workload at paper density: space scales as `√N`.
fn synthetic(per_set: usize, ticks: u32) -> SyntheticWorkload {
    let params = Params {
        dataset_size: per_set,
        space: 1000.0 * (per_set as f64 / 10_000.0).sqrt(),
        object_size_pct: 1.0,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let schedule = (1..=ticks)
        .map(|tick| {
            let now = Time::from(tick);
            (now, stream.tick(now))
        })
        .collect();
    SyntheticWorkload {
        engine_cfg: EngineConfig::builder()
            .t_m(params.maximum_update_interval)
            .metrics(true)
            .build(),
        a,
        b,
        schedule,
    }
}

struct SyntheticWorkload {
    engine_cfg: EngineConfig,
    a: Vec<MovingObject>,
    b: Vec<MovingObject>,
    schedule: Vec<(Time, Vec<ObjectUpdate>)>,
}

/// The checked-in Geolife-style sample, grouped into whole-tick batches.
fn trace_replay() -> SyntheticWorkload {
    let (a, b) = trace::read_objects(&mut BufReader::new(
        File::open(TRACE_OBJECTS).expect("checked-in trace objects"),
    ))
    .expect("parse trace objects");
    let updates = trace::read_updates(
        &mut BufReader::new(File::open(TRACE_UPDATES).expect("checked-in trace updates")),
        &a,
        &b,
    )
    .expect("parse trace updates");
    let last = updates.last().map_or(0.0, |u| u.new_mbr.t_ref);
    let mut schedule = Vec::new();
    let mut tick = 1.0;
    while tick <= last {
        let batch: Vec<ObjectUpdate> = updates
            .iter()
            .filter(|u| u.new_mbr.t_ref == tick)
            .copied()
            .collect();
        schedule.push((tick, batch));
        tick += 1.0;
    }
    SyntheticWorkload {
        // 10 s lookahead: the demo's pedestrian-vs-vehicle horizon.
        engine_cfg: EngineConfig::builder().t_m(10.0).metrics(true).build(),
        a,
        b,
        schedule,
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn cell_json(c: &Cell) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"workload\": \"{}\", \"epsilon\": {}, \"candidates\": {}, \"accepted\": {}, \
         \"refine_rejects\": {}, \"selectivity\": {}, ",
        c.workload,
        json_num(c.epsilon),
        c.candidates,
        c.accepted,
        c.refine_rejects,
        json_num(c.selectivity)
    );
    let _ = write!(
        s,
        "\"refine_ns\": {{\"count\": {}, \"p50\": {}, \"p99\": {}, \"mean\": {}}}, ",
        c.refine_calls,
        json_num(c.refine_ns_p50),
        json_num(c.refine_ns_p99),
        json_num(c.refine_ns_mean)
    );
    let _ = write!(
        s,
        "\"final_pairs\": {}, \"elapsed_ms\": {}, \"ticks\": {}}}",
        c.final_pairs,
        json_num(c.elapsed_ms),
        c.ticks
    );
    s
}

fn main() {
    let opts = parse_args();
    let per_set = if opts.smoke { 300 } else { 2000 };
    let ticks = opts.ticks.unwrap_or(if opts.smoke { 10 } else { 40 });
    // Object side at 1% of a √N-scaled space ≈ 2 units: the sweep spans
    // "pure intersection" to "ε ≫ object diameter".
    let synth_eps: &[f64] = if opts.smoke {
        &[0.0, 2.5, 10.0]
    } else {
        &[0.0, 1.0, 2.5, 5.0, 10.0, 25.0]
    };
    // Metre scale for the Geolife-style sample (2 m boxes, 320 m frame).
    let trace_eps: &[f64] = if opts.smoke {
        &[15.0, 30.0]
    } else {
        &[5.0, 15.0, 30.0, 60.0]
    };

    let synth = synthetic(per_set, ticks);
    let mut cells = Vec::new();
    let mut exposition = None;
    for &eps in synth_eps {
        let (cell, prom) = run_cell(
            "synthetic",
            synth.engine_cfg,
            eps,
            &synth.a,
            &synth.b,
            &synth.schedule,
        );
        println!(
            "synthetic eps={eps:<5} candidates {:>8}  selectivity {:>6.3}  refine p99 {:>7.0} ns  \
             pairs {:>6}",
            cell.candidates, cell.selectivity, cell.refine_ns_p99, cell.final_pairs
        );
        if exposition.is_none() && eps > 0.0 {
            exposition = Some(prom);
        }
        cells.push(cell);
    }

    let replay = trace_replay();
    for &eps in trace_eps {
        let (cell, _) = run_cell(
            "trace:geolife_sample",
            replay.engine_cfg,
            eps,
            &replay.a,
            &replay.b,
            &replay.schedule,
        );
        println!(
            "trace     eps={eps:<5} candidates {:>8}  selectivity {:>6.3}  refine p99 {:>7.0} ns  \
             pairs {:>6}",
            cell.candidates, cell.selectivity, cell.refine_ns_p99, cell.final_pairs
        );
        cells.push(cell);
    }

    let exposition = exposition.expect("at least one ε > 0 synthetic cell");
    let samples = validate_prometheus(&exposition)
        .unwrap_or_else(|e| panic!("bench_simjoin produced invalid Prometheus exposition: {e}"));
    assert!(
        exposition.contains("simjoin_candidates") || exposition.contains("simjoin.candidates"),
        "exposition lacks simjoin candidate counter"
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"simjoin\",");
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"engine\": \"Proximity-Join\",");
    let _ = writeln!(json, "  \"objects_per_set\": {per_set},");
    let _ = writeln!(json, "  \"ticks\": {ticks},");
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(json, "    {}{comma}", cell_json(c));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"prometheus_samples\": {samples}, \"validated\": true}}"
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&opts.out, &json).expect("write benchmark json");
    let prom_out = format!("{}.prom", opts.out.trim_end_matches(".json"));
    std::fs::write(&prom_out, &exposition).expect("write prometheus exposition");
    println!("metrics: {samples} Prometheus samples (exposition validated)");
    println!("wrote {} and {prom_out}", opts.out);
}
