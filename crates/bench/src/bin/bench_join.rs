//! Machine-readable join benchmark: emits `BENCH_join.json`.
//!
//! ```text
//! cargo run --release -p cij-bench --bin bench_join            # full run
//! cargo run --release -p cij-bench --bin bench_join -- --smoke # CI gate
//! cargo run --release -p cij-bench --bin bench_join -- --out /tmp/b.json
//! ```
//!
//! Two sections:
//!
//! * `micro` — repeated `improved_join` over warm pair trees with the
//!   decoded-node cache off vs on, on a pool big enough that every node
//!   read is a pool hit. This isolates exactly what the cache removes
//!   (per-read page decode + node allocation) and backs the PR's
//!   speedup claim.
//! * `engines` — per engine: initial-join cost and maintenance
//!   throughput from a full simulation, with the cache off (the paper's
//!   I/O-faithful mode) and on (throughput mode, plus the cache hit
//!   rate).
//!
//! `--smoke` shrinks datasets/iterations so the whole binary finishes in
//! seconds — CI runs it to prove the harness works end to end.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use cij_bench::runner::{build_pair_trees_with, engine_config, tree_config, EngineKind};
use cij_core::run_simulation;
use cij_join::{improved_join_into, techniques, JoinScratch};
use cij_obs::validate_prometheus;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::TprResult;
use cij_workload::Params;

/// Cache capacity (nodes per tree) used by every cache-on measurement.
const NODE_CACHE: usize = 4096;

struct Options {
    smoke: bool,
    out: String,
}

fn parse_args() -> Options {
    let mut opts = Options {
        smoke: false,
        out: "BENCH_join.json".to_string(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => opts.smoke = true,
            "--out" => {
                i += 1;
                opts.out = args
                    .get(i)
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            other => {
                eprintln!("unknown flag {other} (use --smoke, --out PATH)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

/// A pool big enough that every node read hits the buffer — so the
/// cache-off/cache-on delta below is pure decode cost, not disk I/O.
fn big_pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(8192),
    )
}

struct MicroResult {
    dataset_size: usize,
    iterations: u32,
    rounds: u32,
    pairs: usize,
    uncached_ns: f64,
    cached_ns: f64,
    /// Uncached warm join over a tree written in the legacy v1 (AoS)
    /// page encoding — every read pays the decode fallback. The
    /// `legacy_ns / uncached_ns` ratio is the zero-copy page format's
    /// isolated contribution.
    legacy_ns: f64,
    speedup: f64,
    zero_copy_speedup: f64,
    /// `None` when the cache-on trees saw no reads (degenerate run) —
    /// serialized as JSON `null`, never a fabricated 0.0.
    cache_hit_rate: Option<f64>,
    /// Cache-off page reads served straight from the v2 SoA view — no
    /// intermediate `Node`. The pair of counters proves which decode
    /// path the uncached measurement actually took.
    zero_copy_reads: u64,
    /// Cache-off page reads that fell back to the legacy v1 decoder.
    decode_fallbacks: u64,
}

/// Repeated warm `improved_join` with the cache off vs on.
fn micro(smoke: bool) -> TprResult<MicroResult> {
    let params = Params {
        dataset_size: if smoke { 300 } else { 2_000 },
        ..Params::default()
    };
    let iterations: u32 = if smoke { 5 } else { 40 };
    // Best-of-N rounds: each round times `iterations` joins; the fastest
    // round is reported. The box this runs on shares cores, so a single
    // timed window can absorb a 20%+ co-tenant spike — the minimum over
    // rounds is the standard noise-robust estimator for a deterministic
    // workload.
    let rounds: u32 = if smoke { 2 } else { 5 };
    let base = tree_config(&params);

    type RunStats = (f64, usize, Option<f64>, cij_storage::CacheSnapshot);
    let run = |config| -> TprResult<RunStats> {
        let pool = big_pool();
        let (ta, tb, _, _) = build_pair_trees_with(&params, &pool, config)?;
        let mut scratch = JoinScratch::new();
        let mut out = Vec::new();
        // Warm-up: faults every page into the pool (and cache, if any).
        improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)?;
        let pairs = out.len();
        let mut per_iter_ns = f64::INFINITY;
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..iterations {
                improved_join_into(&ta, &tb, 0.0, 60.0, techniques::ALL, &mut scratch, &mut out)?;
            }
            per_iter_ns = per_iter_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iterations));
        }
        let hit_rate = ta
            .node_cache_stats()
            .zip(tb.node_cache_stats())
            .and_then(|(a, b)| a.merged(&b).hit_rate());
        let format = ta.page_format_stats().merged(&tb.page_format_stats());
        Ok((per_iter_ns, pairs, hit_rate, format))
    };

    let (uncached_ns, pairs, none, format) = run(base)?;
    assert!(none.is_none(), "cache-off run must report no cache stats");
    assert!(
        format.zero_copy_reads > 0,
        "cache-off micro must exercise the zero-copy page path"
    );
    let (legacy_ns, legacy_pairs, _, legacy_format) = run(base.with_legacy_pages(true))?;
    assert_eq!(pairs, legacy_pairs, "page encoding changed the join answer");
    assert!(
        legacy_format.zero_copy_reads == 0 && legacy_format.decode_fallbacks > 0,
        "legacy run must decode every page through the fallback"
    );
    let (cached_ns, cached_pairs, hit_rate, _) = run(base.with_node_cache(NODE_CACHE))?;
    assert_eq!(pairs, cached_pairs, "cache changed the join answer");

    Ok(MicroResult {
        dataset_size: params.dataset_size,
        iterations,
        rounds,
        pairs,
        uncached_ns,
        cached_ns,
        legacy_ns,
        speedup: uncached_ns / cached_ns,
        zero_copy_speedup: legacy_ns / uncached_ns,
        cache_hit_rate: hit_rate,
        zero_copy_reads: format.zero_copy_reads,
        decode_fallbacks: format.decode_fallbacks,
    })
}

struct EngineRun {
    initial_io: u64,
    initial_ms: f64,
    maint_io_per_update: f64,
    maint_us_per_update: f64,
    updates_per_s: f64,
    updates: u64,
    cache_hit_rate: Option<f64>,
}

struct EngineResult {
    name: &'static str,
    cache_off: EngineRun,
    cache_on: EngineRun,
}

/// Full simulation protocol for one engine and one cache setting.
fn engine_run(kind: EngineKind, params: &Params, cache: usize, end: f64) -> TprResult<EngineRun> {
    let config = engine_config(params, techniques::ALL, 2)
        .to_builder()
        .node_cache_capacity(cache)
        .build();
    let (mut engine, mut stream, _pool) = kind.build_with_config(params, config)?;
    let measure_from = end / 2.0;
    let metrics = run_simulation(
        engine.as_mut(),
        &mut stream,
        0.0,
        end,
        measure_from,
        |_, _| Ok(()),
    )?;
    let time_per_update = metrics.time_per_update();
    let updates_per_s = if time_per_update.is_zero() {
        0.0
    } else {
        1.0 / time_per_update.as_secs_f64()
    };
    Ok(EngineRun {
        initial_io: metrics.initial_io,
        initial_ms: metrics.initial_time.as_secs_f64() * 1e3,
        maint_io_per_update: metrics.io_per_update(),
        maint_us_per_update: time_per_update.as_secs_f64() * 1e6,
        updates_per_s,
        updates: metrics.maintenance_updates,
        cache_hit_rate: engine.node_cache_snapshot().and_then(|s| s.hit_rate()),
    })
}

fn engines(smoke: bool) -> TprResult<Vec<EngineResult>> {
    let params = Params {
        dataset_size: if smoke { 200 } else { 1_000 },
        ..Params::default()
    };
    let end = if smoke { 20.0 } else { 120.0 };
    let kinds = [
        EngineKind::Naive,
        EngineKind::Etp,
        EngineKind::Tc,
        EngineKind::Mtb,
    ];
    kinds
        .into_iter()
        .map(|kind| {
            Ok(EngineResult {
                name: kind.label(),
                cache_off: engine_run(kind, &params, 0, end)?,
                cache_on: engine_run(kind, &params, NODE_CACHE, end)?,
            })
        })
        .collect()
}

/// One metrics-enabled simulation: returns the Prometheus text
/// exposition of the engine's registry snapshot plus its validated
/// sample count. Exercises the whole observability path end to end —
/// live pool-I/O views, per-phase spans, published join counters — and
/// proves the exposition parses.
fn metrics_exposition(smoke: bool) -> TprResult<(String, usize)> {
    let params = Params {
        dataset_size: if smoke { 200 } else { 1_000 },
        ..Params::default()
    };
    let end = if smoke { 10.0 } else { 60.0 };
    let config = engine_config(&params, techniques::ALL, 2)
        .to_builder()
        .node_cache_capacity(NODE_CACHE)
        .metrics(true)
        .build();
    let (mut engine, mut stream, _pool) = EngineKind::Mtb.build_with_config(&params, config)?;
    run_simulation(engine.as_mut(), &mut stream, 0.0, end, 0.0, |_, _| Ok(()))?;
    let snapshot = engine.metrics_registry().snapshot();
    let text = snapshot.to_prometheus();
    let samples = validate_prometheus(&text)
        .unwrap_or_else(|e| panic!("bench_join produced invalid Prometheus exposition: {e}"));
    Ok((text, samples))
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| format!("{x:.4}"))
}

fn engine_run_json(r: &EngineRun) -> String {
    format!(
        "{{\"initial_io\": {}, \"initial_ms\": {}, \"maintenance_io_per_update\": {}, \
         \"maintenance_us_per_update\": {}, \"updates_per_s\": {}, \"updates\": {}, \
         \"node_cache_hit_rate\": {}}}",
        r.initial_io,
        json_num(r.initial_ms),
        json_num(r.maint_io_per_update),
        json_num(r.maint_us_per_update),
        json_num(r.updates_per_s),
        r.updates,
        json_opt(r.cache_hit_rate),
    )
}

fn main() {
    let opts = parse_args();
    let micro = micro(opts.smoke).expect("micro benchmark");
    let engines = engines(opts.smoke).expect("engine benchmark");
    let (exposition, samples) = metrics_exposition(opts.smoke).expect("metrics exposition");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"join\",");
    let _ = writeln!(json, "  \"smoke\": {},", opts.smoke);
    let _ = writeln!(json, "  \"node_cache_capacity\": {NODE_CACHE},");
    let _ = writeln!(json, "  \"micro\": {{");
    let _ = writeln!(json, "    \"dataset_size\": {},", micro.dataset_size);
    let _ = writeln!(json, "    \"iterations\": {},", micro.iterations);
    let _ = writeln!(json, "    \"rounds\": {},", micro.rounds);
    let _ = writeln!(json, "    \"pairs\": {},", micro.pairs);
    let _ = writeln!(
        json,
        "    \"uncached_ns_per_join\": {},",
        json_num(micro.uncached_ns)
    );
    let _ = writeln!(
        json,
        "    \"cached_ns_per_join\": {},",
        json_num(micro.cached_ns)
    );
    let _ = writeln!(
        json,
        "    \"legacy_uncached_ns_per_join\": {},",
        json_num(micro.legacy_ns)
    );
    let _ = writeln!(json, "    \"speedup\": {},", json_num(micro.speedup));
    let _ = writeln!(
        json,
        "    \"zero_copy_speedup\": {},",
        json_num(micro.zero_copy_speedup)
    );
    let _ = writeln!(
        json,
        "    \"cache_hit_rate\": {},",
        json_opt(micro.cache_hit_rate)
    );
    let _ = writeln!(json, "    \"zero_copy_reads\": {},", micro.zero_copy_reads);
    let _ = writeln!(json, "    \"decode_fallbacks\": {}", micro.decode_fallbacks);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engines\": [");
    for (i, e) in engines.iter().enumerate() {
        let comma = if i + 1 < engines.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cache_off\": {}, \"cache_on\": {}}}{comma}",
            e.name,
            engine_run_json(&e.cache_off),
            engine_run_json(&e.cache_on),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"metrics\": {{\"prometheus_samples\": {samples}, \"validated\": true}}"
    );
    let _ = writeln!(json, "}}");

    std::fs::write(&opts.out, &json).expect("write benchmark json");
    let prom_out = format!("{}.prom", opts.out.trim_end_matches(".json"));
    std::fs::write(&prom_out, &exposition).expect("write prometheus exposition");
    println!(
        "join micro: legacy-pages {:.0} ns, zero-copy {:.0} ns ({:.2}x), cached {:.0} ns (residual {:.2}x, hit rate {})",
        micro.legacy_ns,
        micro.uncached_ns,
        micro.zero_copy_speedup,
        micro.cached_ns,
        micro.speedup,
        micro
            .cache_hit_rate
            .map_or_else(|| "n/a".to_string(), |h| format!("{:.1}%", h * 100.0)),
    );
    println!(
        "join micro cache-off page reads: {} zero-copy, {} legacy-decode fallbacks",
        micro.zero_copy_reads, micro.decode_fallbacks,
    );
    for e in &engines {
        println!(
            "{:<10} maint: {:>9.1} us/update (cache off) | {:>9.1} us/update, hit rate {} (cache on)",
            e.name,
            e.cache_off.maint_us_per_update,
            e.cache_on.maint_us_per_update,
            e.cache_on
                .cache_hit_rate
                .map_or_else(|| "n/a".to_string(), |h| format!("{:.1}%", h * 100.0)),
        );
    }
    println!("metrics: {samples} Prometheus samples (exposition validated)");
    println!("wrote {} and {prom_out}", opts.out);
}
