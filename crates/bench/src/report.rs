//! Minimal table formatting for experiment output (markdown-compatible,
//! so runs paste straight into EXPERIMENTS.md).

/// One output row: a label plus one cell per column.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (e.g. the parameter value).
    pub label: String,
    /// Cell values, already formatted.
    pub cells: Vec<String>,
}

impl Row {
    /// Builds a row from a label and formatted cells.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Self {
            label: label.into(),
            cells,
        }
    }
}

/// A titled table with a header and rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (figure id + description).
    pub title: String,
    /// First header cell (the sweep parameter name).
    pub key_header: String,
    /// Remaining header cells.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, key_header: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            key_header: key_header.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        assert_eq!(row.cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as a markdown table (also readable as plain text).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.headers.len() + 1);
        widths.push(
            self.rows
                .iter()
                .map(|r| r.label.len())
                .chain([self.key_header.len()])
                .max()
                .unwrap_or(4),
        );
        for (i, h) in self.headers.iter().enumerate() {
            widths.push(
                self.rows
                    .iter()
                    .map(|r| r.cells[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(4),
            );
        }
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        let pad = |s: &str, w: usize| format!("{s:<w$}");
        out.push_str(&format!("| {} |", pad(&self.key_header, widths[0])));
        for (i, h) in self.headers.iter().enumerate() {
            out.push_str(&format!(" {} |", pad(h, widths[i + 1])));
        }
        out.push('\n');
        out.push_str(&format!("|{}|", "-".repeat(widths[0] + 2)));
        for w in &widths[1..] {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("| {} |", pad(&r.label, widths[0])));
            for (i, c) in r.cells.iter().enumerate() {
                out.push_str(&format!(" {} |", pad(c, widths[i + 1])));
            }
            out.push('\n');
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Formats a duration in adaptive units.
#[must_use]
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Fig X", "size", &["io", "time"]);
        t.push(Row::new("1K", vec!["10".into(), "1.00 ms".into()]));
        t.push(Row::new("100K", vec!["123456".into(), "2.00 s".into()]));
        let md = t.to_markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| size |"));
        assert!(md.contains("| 100K | 123456 | 2.00 s  |"));
        // Header separator row present (markdown validity).
        assert!(md.lines().nth(3).unwrap().starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", "k", &["a", "b"]);
        t.push(Row::new("x", vec!["only-one".into()]));
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
    }
}
