//! # cij-bench — experiment harness for the paper's evaluation (§VI)
//!
//! Shared machinery between the `figures` binary (one subcommand per
//! table/figure of the paper) and the Criterion micro-benchmarks:
//! dataset/engine construction from [`cij_workload::Params`], cold-cache measurement
//! helpers, and table formatting.
//!
//! Scale note: the paper sweeps dataset sizes 1K–100K. `Scale::Paper`
//! reproduces those sizes; `Scale::Small` divides them by 10 so the full
//! figure suite completes in minutes. Both produce the same *shapes*
//! (who wins, by what factor) — the claims the reproduction checks.

#![deny(unsafe_code)]

pub mod histogram;
pub mod report;
pub mod runner;

pub use histogram::LatencyHistogram;
pub use report::{Row, Table};
pub use runner::{build_pair_trees, fresh_pool, measure, EngineKind, MaintenanceCost, Scale};
