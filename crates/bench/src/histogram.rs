//! A log-bucketed latency histogram for per-operation percentile
//! reporting (p50/p95/p99 of maintenance updates — averages hide the
//! tail that decides whether a timestamp's updates finish within the
//! timestamp, which is the paper's real-time argument).

use std::time::Duration;

/// Buckets per decade (5 % resolution is plenty for benchmark tables).
const BUCKETS_PER_DECADE: usize = 48;
/// Smallest representable latency (1 ns) and number of decades (1 ns →
/// 100 s).
const DECADES: usize = 11;

/// Fixed-memory log-bucketed histogram of durations.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS_PER_DECADE * DECADES],
            total: 0,
            max: Duration::ZERO,
        }
    }

    fn bucket_of(d: Duration) -> usize {
        let ns = d.as_nanos().max(1) as f64;
        let pos = ns.log10() * BUCKETS_PER_DECADE as f64;
        (pos as usize).min(BUCKETS_PER_DECADE * DECADES - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
        self.max = self.max.max(d);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The maximum recorded value (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> Duration {
        self.max
    }

    /// The value at quantile `q ∈ [0, 1]` (bucket upper edge; ±5 %).
    ///
    /// # Panics
    /// Panics when the histogram is empty or `q` is out of range.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(self.total > 0, "empty histogram has no quantiles");
        let rank = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper_ns = 10f64.powf((i + 1) as f64 / BUCKETS_PER_DECADE as f64);
                return Duration::from_nanos(upper_ns as u64);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 100 samples: 1µs … 100µs linearly.
        for i in 1..=100u64 {
            h.record(Duration::from_micros(i));
        }
        assert_eq!(h.len(), 100);
        let p50 = h.quantile(0.5).as_micros() as f64;
        assert!((45.0..=56.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((90.0..=110.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.max(), Duration::from_micros(100));
    }

    #[test]
    fn single_sample() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(3));
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(2800) && p50 <= Duration::from_micros(3300));
        assert_eq!(h.quantile(1.0), h.quantile(0.0));
    }

    #[test]
    fn extreme_values_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(1000));
        assert_eq!(h.len(), 2);
        assert!(h.quantile(0.01) <= Duration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "empty histogram")]
    fn empty_quantile_panics() {
        let _ = LatencyHistogram::new().quantile(0.5);
    }
}
