//! Experiment execution: engine construction, cold-cache measurement, and
//! the initial-join / maintenance cost probes every figure driver uses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cij_core::{
    run_simulation, ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, TcEngine,
};
use cij_geom::Time;
use cij_join::Techniques;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore, IoSnapshot};
use cij_tpr::{TprResult, TprTree, TreeConfig};
use cij_workload::{generate_pair, MovingObject, Params, UpdateStream};

/// Experiment scale: the paper's dataset sizes, or 10× smaller for quick
/// full-suite runs. Shapes (relative algorithm ordering, crossovers) are
/// preserved at both scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Sizes ÷ 10: {100, 1K, 5K, 10K}, default 1K.
    Small,
    /// The paper's Table I sizes: {1K, 10K, 50K, 100K}, default 10K.
    Paper,
}

impl Scale {
    /// The dataset-size sweep of Figs. 7, 9, 13.
    #[must_use]
    pub fn size_sweep(self) -> Vec<usize> {
        match self {
            Self::Small => vec![100, 1_000, 5_000, 10_000],
            Self::Paper => vec![1_000, 10_000, 50_000, 100_000],
        }
    }

    /// The default dataset size (bold in Table I).
    #[must_use]
    pub fn default_size(self) -> usize {
        match self {
            Self::Small => 1_000,
            Self::Paper => 10_000,
        }
    }

    /// Parameter pass-through hook. Both scales keep the paper's space
    /// domain (1000²) and object-size percentages verbatim — Table I is
    /// absolute, and the top of the Small sweep (10K) coincides exactly
    /// with the paper's default configuration, which keeps measured
    /// maintenance costs directly comparable to the published numbers.
    #[must_use]
    pub fn adjust(self, p: Params) -> Params {
        p
    }

    /// Default parameters at this scale.
    #[must_use]
    pub fn params(self) -> Params {
        self.adjust(Params {
            dataset_size: self.default_size(),
            ..Params::default()
        })
    }

    /// Label for a size in the paper's K-notation.
    #[must_use]
    pub fn size_label(size: usize) -> String {
        if size.is_multiple_of(1000) {
            format!("{}K", size / 1000)
        } else {
            size.to_string()
        }
    }
}

/// A fresh simulated disk with the paper's 50-page LRU pool.
#[must_use]
pub fn fresh_pool() -> BufferPool {
    BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default())
}

/// Tree configuration derived from workload parameters (capacity from
/// Table I, horizon = `T_M`).
#[must_use]
pub fn tree_config(params: &Params) -> TreeConfig {
    TreeConfig {
        capacity: params.node_capacity,
        horizon: params.maximum_update_interval,
        ..TreeConfig::default()
    }
}

/// Engine configuration derived from workload parameters.
#[must_use]
pub fn engine_config(params: &Params, techniques: Techniques, buckets_per_tm: u32) -> EngineConfig {
    EngineConfig {
        t_m: params.maximum_update_interval,
        tree: tree_config(params),
        techniques,
        buckets_per_tm,
        threads: 1,
        ..EngineConfig::default()
    }
}

/// Builds the two single TPR-trees over a generated pair of datasets,
/// sharing `pool`.
pub fn build_pair_trees(
    params: &Params,
    pool: &BufferPool,
) -> TprResult<(TprTree, TprTree, Vec<MovingObject>, Vec<MovingObject>)> {
    build_pair_trees_with(params, pool, tree_config(params))
}

/// [`build_pair_trees`] with an explicit tree configuration (e.g. a
/// decoded-node cache enabled for the cache-on benchmark variants).
pub fn build_pair_trees_with(
    params: &Params,
    pool: &BufferPool,
    config: TreeConfig,
) -> TprResult<(TprTree, TprTree, Vec<MovingObject>, Vec<MovingObject>)> {
    let (a, b) = generate_pair(params, 0.0);
    let mut ta = TprTree::new(pool.clone(), config);
    for o in &a {
        ta.insert(o.id, o.mbr, 0.0)?;
    }
    let mut tb = TprTree::new(pool.clone(), config);
    for o in &b {
        tb.insert(o.id, o.mbr, 0.0)?;
    }
    Ok((ta, tb, a, b))
}

/// Measures `op` against a cold buffer pool (cleared first, like the
/// paper's fresh measurements).
pub fn measure<T>(
    pool: &BufferPool,
    op: impl FnOnce() -> TprResult<T>,
) -> TprResult<(T, u64, Duration)> {
    pool.clear().map_err(cij_tpr::TprError::from)?;
    let stats = pool.stats();
    let before: IoSnapshot = stats.snapshot();
    let t0 = Instant::now();
    let value = op()?;
    let time = t0.elapsed();
    let io = (stats.snapshot() - before).physical_total();
    Ok((value, io, time))
}

/// The three competitor stacks of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// §II-C baseline.
    Naive,
    /// §III competitor.
    Etp,
    /// §IV-B single-tree TC processing (used by the Fig. 7 ablation).
    Tc,
    /// §IV-C/D full proposal.
    Mtb,
}

impl EngineKind {
    /// The figure label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Naive => "NaiveJoin",
            Self::Etp => "ETP-Join",
            Self::Tc => "TC-Join",
            Self::Mtb => "MTB-Join",
        }
    }

    /// Builds the engine over freshly generated data on a fresh pool.
    pub fn build(
        self,
        params: &Params,
        techniques: Techniques,
    ) -> TprResult<(Box<dyn ContinuousJoinEngine>, UpdateStream, BufferPool)> {
        self.build_with_config(params, engine_config(params, techniques, 2))
    }

    /// [`EngineKind::build`] with an explicit engine configuration (e.g.
    /// threads or the decoded-node cache set by the caller).
    pub fn build_with_config(
        self,
        params: &Params,
        config: EngineConfig,
    ) -> TprResult<(Box<dyn ContinuousJoinEngine>, UpdateStream, BufferPool)> {
        let pool = fresh_pool();
        let (a, b) = generate_pair(params, 0.0);
        let stream = UpdateStream::new(params, &a, &b, 0.0);
        let engine: Box<dyn ContinuousJoinEngine> = match self {
            Self::Naive => Box::new(NaiveEngine::new(pool.clone(), config, &a, &b, 0.0)?),
            Self::Etp => Box::new(EtpEngine::new(pool.clone(), config, &a, &b, 0.0)?),
            Self::Tc => Box::new(TcEngine::new(pool.clone(), config, &a, &b, 0.0)?),
            Self::Mtb => Box::new(MtbEngine::new(pool.clone(), config, &a, &b, 0.0)?),
        };
        Ok((engine, stream, pool))
    }
}

/// Maintenance cost of an engine over a measured window, amortized per
/// update (the paper's Fig. 13 metric).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintenanceCost {
    /// Average physical I/Os per update.
    pub io_per_update: f64,
    /// Average response time per update.
    pub time_per_update: Duration,
    /// Updates in the measured window.
    pub updates: u64,
}

/// Runs the full protocol (initial join at 0, ticks to `end`) and
/// reports maintenance cost amortized over updates in
/// `(measure_from, end]` — the paper measures `[T_M, 4·T_M]`.
pub fn maintenance_cost(
    kind: EngineKind,
    params: &Params,
    techniques: Techniques,
    measure_from: Time,
    end: Time,
) -> TprResult<MaintenanceCost> {
    let (mut engine, mut stream, _pool) = kind.build(params, techniques)?;
    let metrics = run_simulation(
        engine.as_mut(),
        &mut stream,
        0.0,
        end,
        measure_from,
        |_, _| Ok(()),
    )?;
    Ok(MaintenanceCost {
        io_per_update: metrics.io_per_update(),
        time_per_update: metrics.time_per_update(),
        updates: metrics.maintenance_updates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_join::techniques;

    fn tiny() -> Params {
        Params {
            dataset_size: 200,
            space: 300.0,
            object_size_pct: 1.0,
            ..Params::default()
        }
    }

    #[test]
    fn measure_reports_cold_io() {
        let params = tiny();
        let pool = fresh_pool();
        let (ta, tb, _, _) = build_pair_trees(&params, &pool).unwrap();
        let ((pairs, _), io, time) =
            measure(&pool, || cij_join::tc_join(&ta, &tb, 0.0, 60.0)).unwrap();
        assert!(io > 0, "cold run must fault pages in");
        assert!(time > Duration::ZERO);
        let _ = pairs;
    }

    #[test]
    fn engine_kinds_build_and_join() {
        let params = tiny();
        for kind in [
            EngineKind::Naive,
            EngineKind::Etp,
            EngineKind::Tc,
            EngineKind::Mtb,
        ] {
            let (mut engine, _stream, _pool) = kind.build(&params, techniques::ALL).unwrap();
            engine.run_initial_join(0.0).unwrap();
            let r0 = engine.result_at(0.0);
            // All engines see the same data → same initial answer size.
            let _ = r0;
        }
    }

    #[test]
    fn maintenance_cost_collects() {
        let params = tiny();
        let cost = maintenance_cost(EngineKind::Mtb, &params, techniques::ALL, 10.0, 30.0).unwrap();
        assert!(cost.updates > 0);
        assert!(cost.io_per_update >= 0.0);
    }

    #[test]
    fn scale_sweeps() {
        assert_eq!(Scale::Small.size_sweep(), vec![100, 1_000, 5_000, 10_000]);
        assert_eq!(Scale::Paper.default_size(), 10_000);
        assert_eq!(Scale::size_label(50_000), "50K");
        assert_eq!(Scale::size_label(123), "123");
    }
}
