//! TC processing grafted onto continuous **window queries** (§V).
//!
//! The paper argues time-constrained processing generalizes beyond joins:
//! a continuous window query is "essentially computing the intersection
//! between objects and query windows", so instead of computing each
//! object's intersection with every window over `[t_c, ∞)`, compute it
//! over `[t_c, t_c + T_M]` — the object must re-register by then anyway.
//!
//! [`ContinuousWindowQueries`] maintains any number of (static) window
//! queries over one moving-object set with exactly that discipline. It
//! reuses the object set's TPR-tree for the initial evaluation and does
//! per-update TC probes afterwards — a faithful miniature of the join
//! engines.

use std::collections::HashMap;

use cij_geom::{MovingRect, Rect, Time, TimeInterval};
use cij_tpr::{ObjectId, TprResult, TprTree};

/// Identifier of a registered window query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u32);

/// Continuous window queries over one set of moving objects, maintained
/// with TC processing.
///
/// ```
/// use std::sync::Arc;
/// use cij_core::window::{ContinuousWindowQueries, QueryId};
/// use cij_geom::{MovingRect, Rect};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut tree = TprTree::new(pool, TreeConfig::default());
/// // One object heading toward the monitored region.
/// tree.insert(
///     ObjectId(9),
///     MovingRect::rigid(Rect::new([0.0, 5.0], [1.0, 6.0]), [2.0, 0.0], 0.0),
///     0.0,
/// )?;
///
/// let mut monitor = ContinuousWindowQueries::new(60.0); // T_M
/// monitor.add_query(QueryId(0), Rect::new([50.0, 0.0], [70.0, 10.0]));
/// monitor.initial_evaluate(&tree, 0.0)?;
///
/// // Not inside yet at t = 0, but predicted inside by t = 25
/// // (front reaches x = 50 at t = 24.5) — one bounded probe covered
/// // the whole T_M window.
/// assert!(monitor.result_at(QueryId(0), 0.0).is_empty());
/// assert_eq!(monitor.result_at(QueryId(0), 25.0), vec![ObjectId(9)]);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub struct ContinuousWindowQueries {
    t_m: Time,
    queries: Vec<(QueryId, MovingRect)>,
    /// query → (object → intersection intervals within the last window).
    matches: HashMap<QueryId, HashMap<ObjectId, Vec<TimeInterval>>>,
}

impl ContinuousWindowQueries {
    /// Creates an empty monitor with maximum update interval `t_m`.
    #[must_use]
    pub fn new(t_m: Time) -> Self {
        assert!(t_m > 0.0, "T_M must be positive");
        Self {
            t_m,
            queries: Vec::new(),
            matches: HashMap::new(),
        }
    }

    /// Registers a static window query.
    pub fn add_query(&mut self, id: QueryId, window: Rect) {
        self.add_moving_query(id, MovingRect::stationary(window, 0.0));
    }

    /// Registers a moving window query (e.g. the police car's coverage
    /// circle's bounding box from the paper's introduction).
    pub fn add_moving_query(&mut self, id: QueryId, window: MovingRect) {
        debug_assert!(
            self.queries.iter().all(|(q, _)| *q != id),
            "duplicate query id {id:?}"
        );
        self.queries.push((id, window));
        self.matches.insert(id, HashMap::new());
    }

    /// Number of registered queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Evaluates all queries from scratch against the indexed set over
    /// `[now, now + T_M]` — the TC-processed initial evaluation.
    pub fn initial_evaluate(&mut self, tree: &TprTree, now: Time) -> TprResult<()> {
        for (qid, window) in &self.queries {
            let found = tree.intersect_window(window, now, now + self.t_m)?;
            let entry = self.matches.get_mut(qid).expect("registered query");
            entry.clear();
            for (oid, iv) in found {
                entry.entry(oid).or_default().push(iv);
            }
        }
        Ok(())
    }

    /// Evaluates all queries from scratch against an MTB-indexed set —
    /// §V's refinement: "we can index the objects by a MTB-tree and use
    /// even tighter time constraints for each TPR-tree as we do in
    /// MTB-Join". Each bucket tree is probed over `[now, t_eb + T_M]`
    /// (Theorem 2), which is tighter than `[now, now + T_M]` for every
    /// bucket but the current one.
    pub fn initial_evaluate_mtb(&mut self, mtb: &crate::mtb::MtbTree, now: Time) -> TprResult<()> {
        let t_m = self.t_m;
        for (qid, window) in &self.queries {
            let entry = self.matches.get_mut(qid).expect("registered query");
            entry.clear();
            for (oid, iv) in mtb.join_object(window, now, |t_eb| t_eb + t_m)? {
                entry.entry(oid).or_default().push(iv);
            }
        }
        Ok(())
    }

    /// Applies an object update: drop the object's predicted matches and
    /// re-probe every query window over `[now, now + T_M]`.
    ///
    /// A TPR-tree over the *query windows* would accelerate this further
    /// for large query sets; with the query cardinalities of §V a linear
    /// scan of windows is the honest baseline.
    pub fn apply_update(&mut self, oid: ObjectId, new_mbr: &MovingRect, now: Time) {
        for (qid, window) in &self.queries {
            let entry = self.matches.get_mut(qid).expect("registered query");
            entry.remove(&oid);
            if let Some(iv) = window.intersect_interval(new_mbr, now, now + self.t_m) {
                entry.entry(oid).or_default().push(iv);
            }
        }
    }

    /// Removes a deleted object from every query result.
    pub fn remove_object(&mut self, oid: ObjectId) {
        for entry in self.matches.values_mut() {
            entry.remove(&oid);
        }
    }

    /// The objects inside query `qid`'s window at instant `t`, sorted.
    #[must_use]
    pub fn result_at(&self, qid: QueryId, t: Time) -> Vec<ObjectId> {
        let Some(entry) = self.matches.get(&qid) else {
            return Vec::new();
        };
        let mut out: Vec<ObjectId> = entry
            .iter()
            .filter(|(_, ivs)| ivs.iter().any(|iv| iv.contains(t)))
            .map(|(oid, _)| *oid)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    use cij_tpr::TreeConfig;
    use std::sync::Arc;

    fn tree_with(objects: &[(u64, f64, f64, f64)]) -> TprTree {
        // (id, x, y, vx)
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(64),
        );
        let mut tree = TprTree::new(pool, TreeConfig::default());
        for &(id, x, y, vx) in objects {
            let mbr = MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, 0.0], 0.0);
            tree.insert(ObjectId(id), mbr, 0.0).unwrap();
        }
        tree
    }

    #[test]
    fn initial_evaluation_finds_current_and_upcoming() {
        let tree = tree_with(&[
            (1, 5.0, 5.0, 0.0),     // inside the window now
            (2, 50.0, 5.0, -1.0),   // reaches the window at t ≈ 40
            (3, 500.0, 500.0, 0.0), // never
        ]);
        let mut q = ContinuousWindowQueries::new(60.0);
        q.add_query(QueryId(0), Rect::new([0.0, 0.0], [10.0, 10.0]));
        q.initial_evaluate(&tree, 0.0).unwrap();
        assert_eq!(q.result_at(QueryId(0), 0.0), vec![ObjectId(1)]);
        assert_eq!(
            q.result_at(QueryId(0), 45.0),
            vec![ObjectId(1), ObjectId(2)]
        );
        assert!(q.result_at(QueryId(0), 45.0).len() == 2);
    }

    #[test]
    fn update_replaces_prediction() {
        let tree = tree_with(&[(1, 5.0, 5.0, 0.0)]);
        let mut q = ContinuousWindowQueries::new(60.0);
        q.add_query(QueryId(0), Rect::new([0.0, 0.0], [10.0, 10.0]));
        q.initial_evaluate(&tree, 0.0).unwrap();
        assert_eq!(q.result_at(QueryId(0), 10.0), vec![ObjectId(1)]);
        // Object 1 teleports far away at t = 10.
        let away = MovingRect::rigid(Rect::new([900.0, 900.0], [901.0, 901.0]), [0.0, 0.0], 10.0);
        q.apply_update(ObjectId(1), &away, 10.0);
        assert!(q.result_at(QueryId(0), 10.0).is_empty());
        // And comes back at t = 20.
        let back = MovingRect::rigid(Rect::new([5.0, 5.0], [6.0, 6.0]), [0.0, 0.0], 20.0);
        q.apply_update(ObjectId(1), &back, 20.0);
        assert_eq!(q.result_at(QueryId(0), 20.0), vec![ObjectId(1)]);
    }

    #[test]
    fn multiple_queries_are_independent() {
        let tree = tree_with(&[(1, 5.0, 5.0, 0.0), (2, 100.0, 100.0, 0.0)]);
        let mut q = ContinuousWindowQueries::new(60.0);
        q.add_query(QueryId(0), Rect::new([0.0, 0.0], [10.0, 10.0]));
        q.add_query(QueryId(1), Rect::new([95.0, 95.0], [105.0, 105.0]));
        q.initial_evaluate(&tree, 0.0).unwrap();
        assert_eq!(q.result_at(QueryId(0), 0.0), vec![ObjectId(1)]);
        assert_eq!(q.result_at(QueryId(1), 0.0), vec![ObjectId(2)]);
        q.remove_object(ObjectId(2));
        assert!(q.result_at(QueryId(1), 0.0).is_empty());
        assert_eq!(q.result_at(QueryId(0), 0.0), vec![ObjectId(1)]);
    }

    #[test]
    fn moving_query_window() {
        // A window chasing a static object.
        let tree = tree_with(&[(1, 50.0, 0.0, 0.0)]);
        let mut q = ContinuousWindowQueries::new(60.0);
        q.add_moving_query(
            QueryId(7),
            MovingRect::rigid(Rect::new([0.0, 0.0], [10.0, 10.0]), [2.0, 0.0], 0.0),
        );
        q.initial_evaluate(&tree, 0.0).unwrap();
        assert!(q.result_at(QueryId(7), 0.0).is_empty());
        // Window front reaches x=50 at t=20.
        assert_eq!(q.result_at(QueryId(7), 21.0), vec![ObjectId(1)]);
    }

    #[test]
    fn unknown_query_returns_empty() {
        let q = ContinuousWindowQueries::new(60.0);
        assert!(q.result_at(QueryId(9), 0.0).is_empty());
    }

    #[test]
    fn mtb_evaluation_matches_single_tree_within_tm() {
        use crate::mtb::MtbTree;
        let objects: Vec<(u64, f64, f64, f64)> = (0..200)
            .map(|i| {
                let k = i as f64;
                (i, (k * 37.0) % 900.0, (k * 53.0) % 900.0, (k % 7.0) - 3.0)
            })
            .collect();
        let tree = tree_with(&objects);
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(64),
        );
        let mut mtb = MtbTree::new(pool, TreeConfig::default(), 60.0);
        for &(id, x, y, vx) in &objects {
            let mbr = MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, 0.0], 0.0);
            mtb.insert(ObjectId(id), mbr, 0.0, 0.0).unwrap();
        }

        let mut via_tree = ContinuousWindowQueries::new(60.0);
        let mut via_mtb = ContinuousWindowQueries::new(60.0);
        for q in [&mut via_tree, &mut via_mtb] {
            q.add_query(QueryId(0), Rect::new([100.0, 100.0], [400.0, 400.0]));
            q.add_query(QueryId(1), Rect::new([600.0, 0.0], [900.0, 300.0]));
        }
        via_tree.initial_evaluate(&tree, 0.0).unwrap();
        via_mtb.initial_evaluate_mtb(&mtb, 0.0).unwrap();
        // Within the single-tree validity window [0, T_M] answers agree
        // (the MTB evaluation may additionally predict further ahead for
        // its current bucket; never less).
        for t in [0.0, 20.0, 59.0] {
            assert_eq!(
                via_tree.result_at(QueryId(0), t),
                via_mtb.result_at(QueryId(0), t),
                "q0 at t={t}"
            );
            assert_eq!(
                via_tree.result_at(QueryId(1), t),
                via_mtb.result_at(QueryId(1), t),
                "q1 at t={t}"
            );
        }
    }
}
