//! The four continuous-join engines.
//!
//! Each engine owns the indexes of both object sets (reading through one
//! shared buffer pool, like the paper's single-disk testbed), a result
//! store, and implements the same three-call protocol:
//!
//! 1. [`run_initial_join`](ContinuousJoinEngine::run_initial_join) once,
//! 2. [`advance_time`](ContinuousJoinEngine::advance_time) +
//!    [`apply_update`](ContinuousJoinEngine::apply_update) as the
//!    workload unfolds,
//! 3. [`result_at`](ContinuousJoinEngine::result_at) whenever the answer
//!    is read.
//!
//! The engines differ exactly where the paper says they differ: the time
//! window each join run computes (∞ / `t_u + T_M` / per-bucket), and
//! whether answer updates are triggered by result changes (ETP) or only
//! by object updates (all others).

use std::collections::HashSet;

use cij_geom::{MovingRect, Time, INFINITE_TIME};
use cij_join::{
    parallel_improved_join, parallel_improved_multi_join, parallel_naive_join, tp_join,
    tp_object_probe, JoinCounters, JoinJob, Techniques,
};
use cij_obs::MetricsRegistry;
use cij_storage::{BufferPool, CacheSnapshot};
use cij_tpr::{ObjectId, TprResult, TprTree, TreeConfig};
use cij_workload::{MovingObject, ObjectUpdate, SetTag};

use crate::mtb::MtbTree;
use crate::result::{PairKey, PairStatus, ResultBuffer};

/// Shared engine configuration.
///
/// Construct via [`EngineConfig::builder`] (or `..Default::default()`
/// struct update); stream-service knobs (batch capacity, WAL path,
/// outbox capacity) live in `cij-stream`'s `StreamConfig`, which embeds
/// this type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Maximum update interval `T_M`.
    pub t_m: Time,
    /// Index configuration (capacity, horizon, …).
    pub tree: TreeConfig,
    /// Improvement techniques for tree-vs-tree joins (TC and MTB
    /// engines; Fig. 7 runs TC with `techniques::NONE`, Fig. 9+ run MTB
    /// with `techniques::ALL`).
    pub techniques: Techniques,
    /// MTB buckets per `T_M` (the paper follows the Bˣ-tree: 2).
    pub buckets_per_tm: u32,
    /// Worker threads for tree-vs-tree join traversals. `1` (the
    /// default) runs the exact sequential code paths of the paper's
    /// single-disk testbed; `> 1` fans the traversal worklist out over
    /// scoped threads, with results guaranteed bit-identical to the
    /// sequential runs (see `cij_join::parallel_improved_join`).
    pub threads: usize,
    /// Whether the engine records into a `cij-obs` metrics registry
    /// (per-phase spans, I/O and cache counters, traversal totals).
    /// `false` (the default) makes every handle a no-op: no allocation,
    /// no atomics, a single branch per record call.
    pub metrics: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            t_m: 60.0,
            tree: TreeConfig::default(),
            techniques: cij_join::techniques::ALL,
            buckets_per_tm: 2,
            threads: 1,
            metrics: false,
        }
    }
}

impl EngineConfig {
    /// Starts a builder at the paper's defaults (`T_M = 60`, Table-I
    /// tree, all techniques, 2 buckets per `T_M`, 1 thread).
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: Self::default(),
        }
    }

    /// Re-opens this configuration as a builder, so call sites can
    /// tweak one knob without a struct literal:
    /// `config.to_builder().threads(4).build()`.
    #[must_use]
    pub fn to_builder(self) -> EngineConfigBuilder {
        EngineConfigBuilder { config: self }
    }
}

/// Builder for [`EngineConfig`]. Every setter has a documented default
/// (see the field docs); `build` is infallible and
/// `config.to_builder().build()` round-trips exactly.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Maximum update interval `T_M` (default 60).
    #[must_use]
    pub fn t_m(mut self, t_m: Time) -> Self {
        self.config.t_m = t_m;
        self
    }

    /// Index configuration (default [`TreeConfig::default`]).
    #[must_use]
    pub fn tree(mut self, tree: TreeConfig) -> Self {
        self.config.tree = tree;
        self
    }

    /// Improvement techniques (default [`cij_join::techniques::ALL`]).
    #[must_use]
    pub fn techniques(mut self, techniques: Techniques) -> Self {
        self.config.techniques = techniques;
        self
    }

    /// MTB buckets per `T_M` (default 2, the Bˣ-tree convention).
    #[must_use]
    pub fn buckets_per_tm(mut self, buckets: u32) -> Self {
        self.config.buckets_per_tm = buckets;
        self
    }

    /// Worker threads for join traversals (default 1 = the paper's
    /// sequential code path).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Whether the engine records observability metrics (default false =
    /// zero-overhead no-op handles).
    #[must_use]
    pub fn metrics(mut self, metrics: bool) -> Self {
        self.config.metrics = metrics;
        self
    }

    /// Capacity of the decoded-node cache above the buffer pool, in
    /// nodes per tree (default 0 = disabled, the paper-faithful mode —
    /// see [`TreeConfig::node_cache_capacity`]). Shorthand for setting
    /// the same field on the embedded tree configuration.
    #[must_use]
    pub fn node_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.tree.node_cache_capacity = capacity;
        self
    }

    /// Finishes the configuration.
    #[must_use]
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// The protocol every continuous-join engine implements.
pub trait ContinuousJoinEngine {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Computes the initial answer at time `now` (phase 1 of §II-A).
    fn run_initial_join(&mut self, now: Time) -> TprResult<()>;

    /// Processes result-change events up to `now`. Only the ETP engine
    /// does work here; for the others maintenance is purely
    /// update-driven.
    fn advance_time(&mut self, _now: Time) -> TprResult<()> {
        Ok(())
    }

    /// Applies one object update at time `now`: re-registers the object
    /// in the index and refreshes the answer (phase 2 of §II-A).
    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()>;

    /// Applies one tick's updates in order. The default simply loops
    /// [`apply_update`](Self::apply_update); composite engines (the
    /// shard coordinator) override it to group the batch per inner
    /// engine and fan the groups out in parallel while preserving each
    /// engine's op order — results are identical either way.
    fn apply_batch(&mut self, updates: &[ObjectUpdate], now: Time) -> TprResult<()> {
        for u in updates {
            self.apply_update(u, now)?;
        }
        Ok(())
    }

    /// Registers a brand-new object on side `set` at `now` (`mbr.t_ref`
    /// must be `now`) and joins it against the other side, adding the
    /// discovered pairs to the answer. Together with
    /// [`remove_object`](Self::remove_object) this is exactly one half
    /// of [`apply_update`](Self::apply_update), split so a shard router
    /// can migrate an object across engines as delete-here + insert-there
    /// within a single logical update. Engines without an interval
    /// result buffer (ETP) return [`cij_tpr::TprError::Unsupported`].
    fn insert_object(
        &mut self,
        _set: SetTag,
        _id: ObjectId,
        _mbr: MovingRect,
        _now: Time,
    ) -> TprResult<()> {
        Err(cij_tpr::TprError::Unsupported {
            what: format!("routed insert_object on {}", self.name()),
        })
    }

    /// Deregisters object `id` from side `set` (located via its current
    /// trajectory `old_mbr` registered at `last_update`) and drops every
    /// result pair involving it. The other half of a routed migration —
    /// see [`insert_object`](Self::insert_object).
    fn remove_object(
        &mut self,
        _set: SetTag,
        _id: ObjectId,
        _old_mbr: &MovingRect,
        _last_update: Time,
        _now: Time,
    ) -> TprResult<()> {
        Err(cij_tpr::TprError::Unsupported {
            what: format!("routed remove_object on {}", self.name()),
        })
    }

    /// Re-registers an object that is *already live in the system* —
    /// last updated at `registered_at ≤ now` — into this engine at
    /// `now`, and joins it against the other side. The shard
    /// coordinator's re-partition path moves objects between engines
    /// *without* a fresh trajectory update, so unlike
    /// [`insert_object`](Self::insert_object) (where `mbr.t_ref == now`)
    /// the registration must keep the object's original update time:
    /// engines that key removal by update time (MTB buckets, Bˣ
    /// partitions) file the object under `registered_at`, so the *next*
    /// producer update — which still carries the old `last_update` —
    /// finds it exactly where the unsharded engine would. Probe windows
    /// may use `now` (they end at or after the windows the original
    /// registration used, and every window is exact inside its span, so
    /// observable answers are unchanged — the invariant the rebalance
    /// differential suite pins).
    ///
    /// The default delegates to `insert_object`, which is correct for
    /// engines that locate objects purely by trajectory (Naive, TC).
    fn restore_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        _registered_at: Time,
        now: Time,
    ) -> TprResult<()> {
        self.insert_object(set, id, mbr, now)
    }

    /// Garbage-collects answer state that can never be reported again
    /// (intervals entirely before `now`). Engines with interval buffers
    /// override this; the simulation driver calls it once per tick.
    fn gc(&mut self, _now: Time) {}

    /// The pairs reported as intersecting at `t`. Valid for the current
    /// time (after `advance_time(t)`); sorted.
    fn result_at(&self, t: Time) -> Vec<PairKey>;

    /// The buffer pool the engine's indexes read through (for I/O
    /// accounting).
    fn pool(&self) -> &BufferPool;

    /// Accumulated traversal work.
    fn counters(&self) -> JoinCounters;

    /// Turns on result change tracking so
    /// [`take_result_changes`](Self::take_result_changes) can report
    /// per-pair deltas. Engines without an interval buffer (ETP) leave
    /// this a no-op and keep returning `None` below.
    fn enable_delta_tracking(&mut self) {}

    /// Drains the pairs whose predicted intersection intervals changed
    /// since the previous call (sorted). `None` means the engine does
    /// not track changes — the delta layer then falls back to diffing
    /// [`result_at`](Self::result_at) snapshots.
    fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
        None
    }

    /// The activity of one pair at instant `t` (active interval plus
    /// next future activation). Only meaningful for engines that return
    /// `Some` from [`take_result_changes`](Self::take_result_changes);
    /// the default reports "inactive, no future interval".
    fn pair_status_at(&self, _pair: PairKey, _t: Time) -> PairStatus {
        PairStatus::default()
    }

    /// Aggregate decoded-node-cache counters across the engine's indexes
    /// (both trees; for MTB, every live bucket). `None` when the engine
    /// runs without a node cache — the default, and always the case for
    /// engines whose indexes have none (Bˣ).
    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        None
    }

    /// Aggregate page-format counters (zero-copy SoA reads vs legacy
    /// decode fallbacks) across the engine's TPR-trees. Unlike
    /// [`node_cache_snapshot`](Self::node_cache_snapshot) these are
    /// tracked whether or not a node cache runs; `None` for engines whose
    /// indexes are not TPR-trees (Bˣ).
    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        None
    }

    /// The engine's metrics registry (a cheap handle). Disabled — every
    /// handle a no-op — unless the engine was built with
    /// [`EngineConfig::metrics`] set; the default implementation is for
    /// engines that never record.
    fn metrics_registry(&self) -> MetricsRegistry {
        MetricsRegistry::disabled()
    }

    /// Mirrors accumulated totals that live outside registered cells
    /// (traversal [`JoinCounters`], merged node-cache totals) into the
    /// registry so a snapshot sees them. Pool I/O counters are live
    /// registered views and need no publishing. No-op when metrics are
    /// disabled; called by the harness before reading a snapshot.
    fn publish_metrics(&self) {}
}

/// Mirrors an engine's [`JoinCounters`] and merged node-cache totals into
/// `registry` (the shared body of every `publish_metrics` impl; public so
/// engine wrappers — e.g. the shard coordinator — can reuse it for their
/// aggregated totals).
pub fn publish_engine_totals(
    registry: &MetricsRegistry,
    counters: JoinCounters,
    cache: Option<CacheSnapshot>,
    page_format: Option<CacheSnapshot>,
) {
    if !registry.is_enabled() {
        return;
    }
    registry
        .counter("join.node_pairs")
        .store(counters.node_pairs);
    registry
        .counter("join.entry_comparisons")
        .store(counters.entry_comparisons);
    registry.counter("join.ic_pruned").store(counters.ic_pruned);
    registry
        .counter("join.pairs_emitted")
        .store(counters.pairs_emitted);
    if let Some(c) = cache {
        registry.counter("engine.node_cache.hits").store(c.hits);
        registry.counter("engine.node_cache.misses").store(c.misses);
        registry
            .counter("engine.node_cache.insertions")
            .store(c.insertions);
        registry
            .counter("engine.node_cache.evictions")
            .store(c.evictions);
        registry
            .counter("engine.node_cache.invalidations")
            .store(c.invalidations);
        registry
            .counter("engine.node_cache.stale_rejections")
            .store(c.stale_rejections);
    }
    if let Some(p) = page_format {
        registry
            .counter("storage.page.zero_copy_reads")
            .store(p.zero_copy_reads);
        registry
            .counter("storage.page.decode_fallbacks")
            .store(p.decode_fallbacks);
    }
}

/// Merges two optional cache snapshots (per-tree stats into a per-engine
/// total).
fn merge_cache_stats(a: Option<CacheSnapshot>, b: Option<CacheSnapshot>) -> Option<CacheSnapshot> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.merged(&y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// The delta-tracking trait methods shared by every engine that keeps
/// its answer in a [`ResultBuffer`].
macro_rules! buffer_delta_methods {
    () => {
        fn enable_delta_tracking(&mut self) {
            self.buffer.enable_change_tracking();
        }

        fn take_result_changes(&mut self) -> Option<Vec<PairKey>> {
            self.buffer.take_changes()
        }

        fn pair_status_at(&self, pair: PairKey, t: Time) -> PairStatus {
            self.buffer.status_at(pair.0, pair.1, t)
        }
    };
}

/// Orients an (updated object, partner) pair as (A-object, B-object).
fn orient(update_side: SetTag, updated: ObjectId, partner: ObjectId) -> PairKey {
    match update_side {
        SetTag::A => (updated, partner),
        SetTag::B => (partner, updated),
    }
}

fn build_tree(
    pool: &BufferPool,
    config: TreeConfig,
    objects: &[MovingObject],
    now: Time,
) -> TprResult<TprTree> {
    let mut tree = TprTree::new(pool.clone(), config);
    for o in objects {
        tree.insert(o.id, o.mbr, now)?;
    }
    Ok(tree)
}

// ----------------------------------------------------------------------
// NaiveJoin engine (§II-C)
// ----------------------------------------------------------------------

/// The paper's naive baseline: every join run computes pairs to the
/// infinite timestamp; answer updates happen only on object updates.
pub struct NaiveEngine {
    pool: BufferPool,
    tree_a: TprTree,
    tree_b: TprTree,
    buffer: ResultBuffer,
    counters: JoinCounters,
    threads: usize,
    obs: MetricsRegistry,
}

impl NaiveEngine {
    /// Builds the engine and its two TPR-trees.
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> TprResult<Self> {
        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");
        let tree_a = build_tree(&pool, config.tree, set_a, now)?;
        let tree_b = build_tree(&pool, config.tree, set_b, now)?;
        Ok(Self {
            pool,
            tree_a,
            tree_b,
            buffer: ResultBuffer::new(),
            counters: JoinCounters::new(),
            threads: config.threads,
            obs,
        })
    }
}

impl ContinuousJoinEngine for NaiveEngine {
    fn name(&self) -> &'static str {
        "NaiveJoin"
    }

    buffer_delta_methods!();

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        let (pairs, counters) = parallel_naive_join(&self.tree_a, &self.tree_b, now, self.threads)?;
        self.counters = self.counters.merged(counters);
        for p in pairs {
            self.buffer.add(p.a, p.b, p.interval);
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        let (own, other) = match update.set {
            SetTag::A => (&mut self.tree_a, &self.tree_b),
            SetTag::B => (&mut self.tree_b, &self.tree_a),
        };
        own.update(update.id, &update.old_mbr, update.new_mbr, now)?;
        self.buffer.remove_object(update.id);
        // "Join the object with the other dataset (still using the naive
        // algorithm) from the current timestamp to the infinite
        // timestamp."
        for (partner, iv) in other.intersect_window(&update.new_mbr, now, INFINITE_TIME)? {
            let (a, b) = orient(update.set, update.id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        let (own, other) = match set {
            SetTag::A => (&mut self.tree_a, &self.tree_b),
            SetTag::B => (&mut self.tree_b, &self.tree_a),
        };
        own.insert(id, mbr, now)?;
        for (partner, iv) in other.intersect_window(&mbr, now, INFINITE_TIME)? {
            let (a, b) = orient(set, id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        _last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        let own = match set {
            SetTag::A => &mut self.tree_a,
            SetTag::B => &mut self.tree_b,
        };
        own.delete(id, old_mbr, now)?;
        self.buffer.remove_object(id);
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        self.buffer.prune_before(now);
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.buffer.active_at(t)
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        merge_cache_stats(
            self.tree_a.node_cache_stats(),
            self.tree_b.node_cache_stats(),
        )
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        Some(
            self.tree_a
                .page_format_stats()
                .merged(&self.tree_b.page_format_stats()),
        )
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        publish_engine_totals(
            &self.obs,
            self.counters,
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
    }
}

// ----------------------------------------------------------------------
// TC-Join engine (§IV-B, Theorem 1)
// ----------------------------------------------------------------------

/// Time-constrained processing on single TPR-trees: every join run is
/// capped at `t_u + T_M`.
pub struct TcEngine {
    config: EngineConfig,
    pool: BufferPool,
    tree_a: TprTree,
    tree_b: TprTree,
    buffer: ResultBuffer,
    counters: JoinCounters,
    obs: MetricsRegistry,
}

impl TcEngine {
    /// Builds the engine and its two TPR-trees.
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> TprResult<Self> {
        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");
        let tree_a = build_tree(&pool, config.tree, set_a, now)?;
        let tree_b = build_tree(&pool, config.tree, set_b, now)?;
        Ok(Self {
            config,
            pool,
            tree_a,
            tree_b,
            buffer: ResultBuffer::new(),
            counters: JoinCounters::new(),
            obs,
        })
    }
}

impl ContinuousJoinEngine for TcEngine {
    fn name(&self) -> &'static str {
        "TC-Join"
    }

    buffer_delta_methods!();

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        let window_end = now + self.config.t_m;
        let (pairs, counters) = parallel_improved_join(
            &self.tree_a,
            &self.tree_b,
            now,
            window_end,
            self.config.techniques,
            self.config.threads,
        )?;
        self.counters = self.counters.merged(counters);
        for p in pairs {
            self.buffer.add(p.a, p.b, p.interval);
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        let (own, other) = match update.set {
            SetTag::A => (&mut self.tree_a, &self.tree_b),
            SetTag::B => (&mut self.tree_b, &self.tree_a),
        };
        own.update(update.id, &update.old_mbr, update.new_mbr, now)?;
        self.buffer.remove_object(update.id);
        // Theorem 1: the result for this object only needs to be valid
        // until its own next update, at most T_M away.
        for (partner, iv) in other.intersect_window(&update.new_mbr, now, now + self.config.t_m)? {
            let (a, b) = orient(update.set, update.id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        let (own, other) = match set {
            SetTag::A => (&mut self.tree_a, &self.tree_b),
            SetTag::B => (&mut self.tree_b, &self.tree_a),
        };
        own.insert(id, mbr, now)?;
        // Theorem 1 window, exactly as in `apply_update`.
        for (partner, iv) in other.intersect_window(&mbr, now, now + self.config.t_m)? {
            let (a, b) = orient(set, id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        _last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        let own = match set {
            SetTag::A => &mut self.tree_a,
            SetTag::B => &mut self.tree_b,
        };
        own.delete(id, old_mbr, now)?;
        self.buffer.remove_object(id);
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        self.buffer.prune_before(now);
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.buffer.active_at(t)
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        merge_cache_stats(
            self.tree_a.node_cache_stats(),
            self.tree_b.node_cache_stats(),
        )
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        Some(
            self.tree_a
                .page_format_stats()
                .merged(&self.tree_b.page_format_stats()),
        )
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        publish_engine_totals(
            &self.obs,
            self.counters,
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
    }
}

// ----------------------------------------------------------------------
// ETP-Join engine (§III)
// ----------------------------------------------------------------------

/// Step past an event time when re-running TP-Join so a separation event
/// does not re-trigger itself (closed-interval semantics make a pair
/// "intersecting" at its own separation instant).
const ETP_EVENT_EPS: f64 = 1e-7;

/// The extended time-parameterized join: TP-Join re-run at every result
/// change, plus per-update influence-time probes.
pub struct EtpEngine {
    pool: BufferPool,
    tree_a: TprTree,
    tree_b: TprTree,
    current: HashSet<PairKey>,
    expiry: Time,
    counters: JoinCounters,
    /// TP-Join re-runs performed (diagnostics: the paper's argument is
    /// that this grows with result-change frequency).
    pub reruns: u64,
    obs: MetricsRegistry,
}

impl EtpEngine {
    /// Builds the engine and its two TPR-trees.
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> TprResult<Self> {
        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");
        let tree_a = build_tree(&pool, config.tree, set_a, now)?;
        let tree_b = build_tree(&pool, config.tree, set_b, now)?;
        Ok(Self {
            pool,
            tree_a,
            tree_b,
            current: HashSet::new(),
            expiry: INFINITE_TIME,
            counters: JoinCounters::new(),
            reruns: 0,
            obs,
        })
    }

    fn rerun(&mut self, t: Time) -> TprResult<()> {
        let ans = tp_join(&self.tree_a, &self.tree_b, t)?;
        self.counters = self.counters.merged(ans.counters);
        self.current = ans.current.into_iter().collect();
        self.expiry = ans.expiry;
        self.reruns += 1;
        Ok(())
    }
}

impl ContinuousJoinEngine for EtpEngine {
    fn name(&self) -> &'static str {
        "ETP-Join"
    }

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        self.rerun(now)
    }

    fn advance_time(&mut self, now: Time) -> TprResult<()> {
        // Consume result-change events up to `now`; each costs a full
        // TP-Join run (the paper's point about ETP's frequency).
        let mut guard = 0u32;
        while self.expiry <= now {
            let t = self.expiry + ETP_EVENT_EPS;
            self.rerun(t)?;
            guard += 1;
            if guard > 1_000_000 {
                unreachable!("ETP event loop failed to advance past {t}");
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        let (own, other) = match update.set {
            SetTag::A => (&mut self.tree_a, &self.tree_b),
            SetTag::B => (&mut self.tree_b, &self.tree_a),
        };
        own.update(update.id, &update.old_mbr, update.new_mbr, now)?;
        self.current
            .retain(|&(a, b)| a != update.id && b != update.id);
        // One traversal of the other tree: the object's current partners
        // and its influence time (§III).
        let probe = tp_object_probe(other, &update.new_mbr, now)?;
        self.counters = self.counters.merged(probe.counters);
        for partner in probe.current {
            self.current.insert(orient(update.set, update.id, partner));
        }
        if probe.influence < self.expiry {
            self.expiry = probe.influence;
        }
        Ok(())
    }

    fn result_at(&self, _t: Time) -> Vec<PairKey> {
        let mut out: Vec<PairKey> = self.current.iter().copied().collect();
        out.sort_unstable();
        out
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        merge_cache_stats(
            self.tree_a.node_cache_stats(),
            self.tree_b.node_cache_stats(),
        )
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        Some(
            self.tree_a
                .page_format_stats()
                .merged(&self.tree_b.page_format_stats()),
        )
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        publish_engine_totals(
            &self.obs,
            self.counters,
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
        if self.obs.is_enabled() {
            self.obs.counter("engine.etp.reruns").store(self.reruns);
        }
    }
}

// ----------------------------------------------------------------------
// MTB-Join engine (§IV-C + §IV-D)
// ----------------------------------------------------------------------

/// The paper's full proposal: MTB-trees on both sets, per-bucket time
/// constraints (Theorem 2), improvement techniques on tree-vs-tree joins.
pub struct MtbEngine {
    config: EngineConfig,
    pool: BufferPool,
    mtb_a: MtbTree,
    mtb_b: MtbTree,
    buffer: ResultBuffer,
    counters: JoinCounters,
    obs: MetricsRegistry,
}

impl MtbEngine {
    /// Builds the engine; all objects land in the bucket of `now`.
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> TprResult<Self> {
        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");
        let mut mtb_a = MtbTree::with_buckets_per_tm(
            pool.clone(),
            config.tree,
            config.t_m,
            config.buckets_per_tm,
        );
        let mut mtb_b = MtbTree::with_buckets_per_tm(
            pool.clone(),
            config.tree,
            config.t_m,
            config.buckets_per_tm,
        );
        for o in set_a {
            mtb_a.insert(o.id, o.mbr, now, now)?;
        }
        for o in set_b {
            mtb_b.insert(o.id, o.mbr, now, now)?;
        }
        Ok(Self {
            config,
            pool,
            mtb_a,
            mtb_b,
            buffer: ResultBuffer::new(),
            counters: JoinCounters::new(),
            obs,
        })
    }

    /// Access to the A-side MTB-tree (diagnostics).
    #[must_use]
    pub fn mtb_a(&self) -> &MtbTree {
        &self.mtb_a
    }

    /// Access to the B-side MTB-tree (diagnostics).
    #[must_use]
    pub fn mtb_b(&self) -> &MtbTree {
        &self.mtb_b
    }
}

impl ContinuousJoinEngine for MtbEngine {
    fn name(&self) -> &'static str {
        "MTB-Join"
    }

    buffer_delta_methods!();

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        // Tree-vs-tree improved joins between every bucket pair, each
        // with the window min(t_eb_a, t_eb_b, now) + T_M — Theorem 2
        // applied to both sides, with the extra observation that a
        // bucket's latest update can never lie in the future (`lut ≤
        // now`), which tightens the current bucket's bound to the
        // paper's own initial-join window `[now, now + T_M]`. Right
        // after construction both MTBs hold a single bucket — exactly
        // the paper's "initial join on two single TPR-trees".
        let t_m = self.config.t_m;
        let mut jobs = Vec::new();
        for (eb_a, tree_a) in self.mtb_a.buckets() {
            for (eb_b, tree_b) in self.mtb_b.buckets() {
                let window_end = eb_a.min(eb_b).min(now) + t_m;
                if window_end <= now {
                    continue;
                }
                jobs.push(JoinJob {
                    tree_a,
                    tree_b,
                    t_s: now,
                    t_e: window_end,
                });
            }
        }
        // All bucket pairs share one traversal worklist, so even a single
        // large pair (the initial-join case: one bucket per side) fans
        // out across every worker. `threads == 1` runs the jobs
        // sequentially in order — the exact pre-parallel code path.
        let results =
            parallel_improved_multi_join(&jobs, self.config.techniques, self.config.threads)?;
        for (pairs, counters) in results {
            self.counters = self.counters.merged(counters);
            for p in pairs {
                self.buffer.add(p.a, p.b, p.interval);
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        let t_m = self.config.t_m;
        let (own, other) = match update.set {
            SetTag::A => (&mut self.mtb_a, &self.mtb_b),
            SetTag::B => (&mut self.mtb_b, &self.mtb_a),
        };
        // Bucket migration: out of the old-update bucket, into `now`'s.
        own.remove(update.id, &update.old_mbr, update.last_update, now)?;
        own.insert(update.id, update.new_mbr, now, now)?;
        self.buffer.remove_object(update.id);
        // Per-bucket windows [now, min(t_eb, now) + T_M] (§IV-C plus
        // the lut ≤ now clamp, which tightens the current bucket from
        // the paper's t_eb + T_M to Theorem 1's now + T_M).
        for (partner, iv) in other.join_object(&update.new_mbr, now, |t_eb| t_eb.min(now) + t_m)? {
            let (a, b) = orient(update.set, update.id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        let t_m = self.config.t_m;
        let (own, other) = match set {
            SetTag::A => (&mut self.mtb_a, &self.mtb_b),
            SetTag::B => (&mut self.mtb_b, &self.mtb_a),
        };
        // A routed insert registers in `now`'s bucket — the same bucket
        // an `apply_update` migration lands in, so the per-bucket windows
        // below match the unsharded engine's exactly.
        own.insert(id, mbr, now, now)?;
        for (partner, iv) in other.join_object(&mbr, now, |t_eb| t_eb.min(now) + t_m)? {
            let (a, b) = orient(set, id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn restore_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        registered_at: Time,
        now: Time,
    ) -> TprResult<()> {
        let t_m = self.config.t_m;
        let (own, other) = match set {
            SetTag::A => (&mut self.mtb_a, &self.mtb_b),
            SetTag::B => (&mut self.mtb_b, &self.mtb_a),
        };
        // Bucket by the object's *original* update time: MTB buckets
        // live on a global grid, so the restored object lands in the
        // same bucket the unsharded engine holds it in — its next
        // producer update (still stamped with the old `last_update`)
        // removes it from exactly that bucket, and every Theorem-2
        // per-bucket window it participates in keeps the oracle's t_eb.
        own.insert(id, mbr, registered_at, now)?;
        for (partner, iv) in other.join_object(&mbr, now, |t_eb| t_eb.min(now) + t_m)? {
            let (a, b) = orient(set, id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        last_update: Time,
        now: Time,
    ) -> TprResult<()> {
        let own = match set {
            SetTag::A => &mut self.mtb_a,
            SetTag::B => &mut self.mtb_b,
        };
        own.remove(id, old_mbr, last_update, now)?;
        self.buffer.remove_object(id);
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        self.buffer.prune_before(now);
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.buffer.active_at(t)
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn node_cache_snapshot(&self) -> Option<CacheSnapshot> {
        merge_cache_stats(self.mtb_a.node_cache_stats(), self.mtb_b.node_cache_stats())
    }

    fn page_format_snapshot(&self) -> Option<CacheSnapshot> {
        Some(
            self.mtb_a
                .page_format_stats()
                .merged(&self.mtb_b.page_format_stats()),
        )
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        publish_engine_totals(
            &self.obs,
            self.counters,
            self.node_cache_snapshot(),
            self.page_format_snapshot(),
        );
    }
}

// ----------------------------------------------------------------------
// Bx-substrate TC engine (extension: TC processing is index-agnostic)
// ----------------------------------------------------------------------

/// TC processing on the Bˣ-tree substrate (extension experiment).
///
/// Theorems 1 and 2 say nothing about *which* index answers the bounded
/// probes — this engine runs the identical TC maintenance protocol on
/// [`cij_bx::BxTree`]s instead of TPR-trees: per update, re-register in
/// the Bˣ index (cheap B⁺-tree ops), then probe the other side over
/// `[t_u, t_u + T_M]` (velocity-enlarged Z-range scans). The initial
/// join is one probe per left-side object — the Bˣ-tree has no
/// hierarchical tree-to-tree join, which is exactly the trade-off worth
/// measuring against [`MtbEngine`].
pub struct BxEngine {
    config: EngineConfig,
    pool: BufferPool,
    bx_a: cij_bx::BxTree,
    bx_b: cij_bx::BxTree,
    /// Current registrations of A-side objects (initial join probes B
    /// once per A object; maintenance keeps this map fresh).
    reg_a: std::collections::HashMap<ObjectId, cij_geom::MovingRect>,
    buffer: ResultBuffer,
    counters: JoinCounters,
    obs: MetricsRegistry,
}

impl BxEngine {
    /// Builds the engine and both Bˣ-trees. `space`, `max_speed` and
    /// `max_extent` parameterize the Bˣ query enlargement and must bound
    /// the workload (they do for `cij-workload` streams).
    pub fn new(
        pool: BufferPool,
        config: EngineConfig,
        bx_config: cij_bx::BxConfig,
        set_a: &[MovingObject],
        set_b: &[MovingObject],
        now: Time,
    ) -> TprResult<Self> {
        let obs = MetricsRegistry::enabled_if(config.metrics);
        pool.stats().register_in(&obs, "storage.pool");
        let mut bx_a = cij_bx::BxTree::new(pool.clone(), bx_config);
        let mut bx_b = cij_bx::BxTree::new(pool.clone(), bx_config);
        let mut reg_a = std::collections::HashMap::with_capacity(set_a.len());
        for o in set_a {
            bx_a.insert(o.id, o.mbr, now)?;
            reg_a.insert(o.id, o.mbr);
        }
        for o in set_b {
            bx_b.insert(o.id, o.mbr, now)?;
        }
        Ok(Self {
            config,
            pool,
            bx_a,
            bx_b,
            reg_a,
            buffer: ResultBuffer::new(),
            counters: JoinCounters::new(),
            obs,
        })
    }

    /// The A-side index (diagnostics).
    #[must_use]
    pub fn bx_a(&self) -> &cij_bx::BxTree {
        &self.bx_a
    }
}

impl ContinuousJoinEngine for BxEngine {
    fn name(&self) -> &'static str {
        "Bx-TC-Join"
    }

    buffer_delta_methods!();

    fn run_initial_join(&mut self, now: Time) -> TprResult<()> {
        let t_m = self.config.t_m;
        for (&oid, mbr) in &self.reg_a {
            for (partner, iv) in self.bx_b.intersect_window(mbr, now, now + t_m)? {
                self.counters.pairs_emitted += 1;
                self.buffer.add(oid, partner, iv);
            }
        }
        Ok(())
    }

    fn apply_update(&mut self, update: &ObjectUpdate, now: Time) -> TprResult<()> {
        let t_m = self.config.t_m;
        let (own, other) = match update.set {
            SetTag::A => (&mut self.bx_a, &self.bx_b),
            SetTag::B => (&mut self.bx_b, &self.bx_a),
        };
        own.update(
            update.id,
            &update.old_mbr,
            update.last_update,
            update.new_mbr,
            now,
        )?;
        if update.set == SetTag::A {
            self.reg_a.insert(update.id, update.new_mbr);
        }
        self.buffer.remove_object(update.id);
        for (partner, iv) in other.intersect_window(&update.new_mbr, now, now + t_m)? {
            let (a, b) = orient(update.set, update.id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn insert_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        now: Time,
    ) -> TprResult<()> {
        let t_m = self.config.t_m;
        let (own, other) = match set {
            SetTag::A => (&mut self.bx_a, &self.bx_b),
            SetTag::B => (&mut self.bx_b, &self.bx_a),
        };
        own.insert(id, mbr, now)?;
        if set == SetTag::A {
            self.reg_a.insert(id, mbr);
        }
        for (partner, iv) in other.intersect_window(&mbr, now, now + t_m)? {
            let (a, b) = orient(set, id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn restore_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        mbr: MovingRect,
        registered_at: Time,
        now: Time,
    ) -> TprResult<()> {
        let t_m = self.config.t_m;
        let (own, other) = match set {
            SetTag::A => (&mut self.bx_a, &self.bx_b),
            SetTag::B => (&mut self.bx_b, &self.bx_a),
        };
        // File under the original update time: Bˣ partitions are keyed
        // by registration timestamp, and the next producer update still
        // carries the old `last_update`.
        own.insert(id, mbr, registered_at)?;
        if set == SetTag::A {
            self.reg_a.insert(id, mbr);
        }
        for (partner, iv) in other.intersect_window(&mbr, now, now + t_m)? {
            let (a, b) = orient(set, id, partner);
            self.buffer.add(a, b, iv);
        }
        Ok(())
    }

    fn remove_object(
        &mut self,
        set: SetTag,
        id: ObjectId,
        old_mbr: &MovingRect,
        last_update: Time,
        _now: Time,
    ) -> TprResult<()> {
        let own = match set {
            SetTag::A => &mut self.bx_a,
            SetTag::B => &mut self.bx_b,
        };
        own.remove(id, old_mbr, last_update)?;
        if set == SetTag::A {
            self.reg_a.remove(&id);
        }
        self.buffer.remove_object(id);
        Ok(())
    }

    fn gc(&mut self, now: Time) {
        self.buffer.prune_before(now);
    }

    fn result_at(&self, t: Time) -> Vec<PairKey> {
        self.buffer.active_at(t)
    }

    fn pool(&self) -> &BufferPool {
        &self.pool
    }

    fn counters(&self) -> JoinCounters {
        self.counters
    }

    fn metrics_registry(&self) -> MetricsRegistry {
        self.obs.clone()
    }

    fn publish_metrics(&self) {
        publish_engine_totals(&self.obs, self.counters, None, None);
    }
}

#[cfg(test)]
mod config_tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(EngineConfig::builder().build(), EngineConfig::default());
    }

    #[test]
    fn builder_round_trips_every_knob() {
        let config = EngineConfig::builder()
            .t_m(120.0)
            .tree(TreeConfig {
                capacity: 12,
                ..TreeConfig::default()
            })
            .techniques(cij_join::techniques::NONE)
            .buckets_per_tm(4)
            .threads(8)
            .node_cache_capacity(256)
            .metrics(true)
            .build();
        assert_eq!(config.t_m, 120.0);
        assert_eq!(config.tree.capacity, 12);
        assert_eq!(config.techniques, cij_join::techniques::NONE);
        assert_eq!(config.buckets_per_tm, 4);
        assert_eq!(config.threads, 8);
        assert_eq!(config.tree.node_cache_capacity, 256);
        assert!(config.metrics);
        assert_eq!(config.to_builder().build(), config);
    }
}
