//! The MTB-tree (§IV-C): multiple TPR-trees over time buckets.
//!
//! Theorem 2 lets a join run for object `O` stop at
//! `t(lu(otherset(O))) + T_M` — the later the other set last updated, the
//! shorter the window. A single tree's latest-update time is always
//! "just now", so the paper groups objects into *time buckets* by their
//! last update: one TPR-tree per bucket of length `T_M / m` (the paper
//! uses `m = 2`, following the Bˣ-tree). Every object in bucket
//! `[t_b, t_eb)` updated before `t_eb`, so joins against that bucket's
//! tree only need the window `[t_c, t_eb + T_M]`.
//!
//! At most `m + 1` buckets are ever live: any object older than `T_M`
//! must have re-registered into a newer bucket, emptying the old tree.

use std::collections::BTreeMap;

use cij_geom::{MovingRect, Time, TimeInterval};
use cij_storage::BufferPool;
use cij_tpr::{ObjectId, TprError, TprResult, TprTree, TreeConfig};

/// A group of TPR-trees keyed by time bucket.
///
/// ```
/// use std::sync::Arc;
/// use cij_core::MtbTree;
/// use cij_geom::{MovingRect, Rect};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let t_m = 60.0;
/// let mut mtb = MtbTree::new(pool, TreeConfig::default(), t_m);
///
/// // One object registered at t = 0, another at t = 35: different
/// // buckets (bucket length is T_M / 2 = 30).
/// let still = |x: f64, t| MovingRect::stationary(Rect::new([x, 0.0], [x + 1.0, 1.0]), t);
/// mtb.insert(ObjectId(1), still(100.0, 0.0), 0.0, 0.0)?;
/// mtb.insert(ObjectId(2), still(200.0, 35.0), 35.0, 35.0)?;
/// assert_eq!(mtb.bucket_count(), 2);
///
/// // A maintenance probe at t = 40 uses per-bucket windows
/// // [40, t_eb + T_M]: tighter for the older bucket (Theorem 2).
/// let probe = still(100.2, 40.0);
/// let found = mtb.join_object(&probe, 40.0, |t_eb| t_eb + t_m)?;
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].0, ObjectId(1));
/// assert!(found[0].1.end <= 90.0, "old bucket's window ends at 30 + 60");
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub struct MtbTree {
    pool: BufferPool,
    config: TreeConfig,
    bucket_len: Time,
    /// Live buckets: bucket index → tree. A bucket covers
    /// `[idx · bucket_len, (idx + 1) · bucket_len)`.
    buckets: BTreeMap<i64, TprTree>,
    len: usize,
}

impl MtbTree {
    /// Creates an empty MTB-tree. `t_m` is the maximum update interval;
    /// the bucket length is `t_m / m` with the paper's `m = 2`.
    #[must_use]
    pub fn new(pool: BufferPool, config: TreeConfig, t_m: Time) -> Self {
        Self::with_buckets_per_tm(pool, config, t_m, 2)
    }

    /// Creates an MTB-tree with `m` buckets per `T_M` (the paper's
    /// trade-off knob: larger `m` → tighter windows, more trees).
    ///
    /// # Panics
    /// Panics when `m == 0` or `t_m <= 0`.
    #[must_use]
    pub fn with_buckets_per_tm(pool: BufferPool, config: TreeConfig, t_m: Time, m: u32) -> Self {
        assert!(m > 0, "at least one bucket per T_M");
        assert!(t_m > 0.0, "T_M must be positive");
        Self {
            pool,
            config,
            bucket_len: t_m / f64::from(m),
            buckets: BTreeMap::new(),
            len: 0,
        }
    }

    /// Bucket index for an update at time `t`.
    #[must_use]
    pub fn bucket_of(&self, t: Time) -> i64 {
        (t / self.bucket_len).floor() as i64
    }

    /// End of bucket `idx` — the `t_eb` of the per-bucket window bound.
    #[must_use]
    pub fn bucket_end(&self, idx: i64) -> Time {
        (idx + 1) as f64 * self.bucket_len
    }

    /// Number of indexed objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no objects are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live (non-empty) buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The live buckets as `(bucket_end, tree)` pairs, oldest first.
    pub fn buckets(&self) -> impl Iterator<Item = (Time, &TprTree)> {
        self.buckets
            .iter()
            .map(|(idx, tree)| (self.bucket_end(*idx), tree))
    }

    /// Decoded-node-cache counters summed over every live bucket tree;
    /// `None` when the cache is disabled (the default configuration).
    #[must_use]
    pub fn node_cache_stats(&self) -> Option<cij_storage::CacheSnapshot> {
        self.buckets
            .values()
            .filter_map(|tree| tree.node_cache_stats())
            .reduce(|acc, s| acc.merged(&s))
    }

    /// Page-format counters (zero-copy SoA reads / legacy decode
    /// fallbacks) summed over every live bucket tree; tracked regardless
    /// of cache configuration.
    #[must_use]
    pub fn page_format_stats(&self) -> cij_storage::CacheSnapshot {
        self.buckets
            .values()
            .map(|tree| tree.page_format_stats())
            .reduce(|acc, s| acc.merged(&s))
            .unwrap_or_default()
    }

    /// Inserts `oid` whose last update happened at `updated_at`
    /// (normally `== now`).
    pub fn insert(
        &mut self,
        oid: ObjectId,
        mbr: MovingRect,
        updated_at: Time,
        now: Time,
    ) -> TprResult<()> {
        let idx = self.bucket_of(updated_at);
        let tree = self
            .buckets
            .entry(idx)
            .or_insert_with(|| TprTree::new(self.pool.clone(), self.config));
        tree.insert(oid, mbr, now)?;
        self.len += 1;
        Ok(())
    }

    /// Removes `oid`, locating it via its previous trajectory and the
    /// time of its previous update (which names its bucket — the paper
    /// assumes "the last update timestamp is sent together with the
    /// update information").
    pub fn remove(
        &mut self,
        oid: ObjectId,
        old_mbr: &MovingRect,
        updated_at: Time,
        now: Time,
    ) -> TprResult<()> {
        let idx = self.bucket_of(updated_at);
        let tree = self
            .buckets
            .get_mut(&idx)
            .ok_or(TprError::ObjectNotFound(oid))?;
        tree.delete(oid, old_mbr, now)?;
        self.len -= 1;
        if tree.is_empty() {
            self.buckets.remove(&idx);
        }
        Ok(())
    }

    /// The MTB maintenance join (§IV-C): `target`'s intersection pairs
    /// against every bucket tree, each with its own window
    /// `[now, min(t_eb + T_M stand-in: window_end(bucket))]`.
    ///
    /// `window_for(t_eb)` maps a bucket end to the window end (callers
    /// pass `t_eb + T_M`; kept as a closure so tests can probe variants).
    pub fn join_object(
        &self,
        target: &MovingRect,
        now: Time,
        window_for: impl Fn(Time) -> Time,
    ) -> TprResult<Vec<(ObjectId, TimeInterval)>> {
        let mut out = Vec::new();
        for (idx, tree) in &self.buckets {
            let t_end = window_for(self.bucket_end(*idx));
            if t_end <= now {
                continue;
            }
            out.extend(tree.intersect_window(target, now, t_end)?);
        }
        Ok(out)
    }

    /// Validates every bucket tree and the aggregate count.
    pub fn validate(&self, now: Time) -> TprResult<()> {
        let mut total = 0;
        for tree in self.buckets.values() {
            let stats = tree.validate(now)?;
            total += stats.objects;
        }
        if total != self.len {
            return Err(TprError::CorruptNode {
                detail: format!("MTB len {} != bucket sum {total}", self.len),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;
    use cij_storage::{BufferPoolConfig, InMemoryStore};
    use std::sync::Arc;

    fn pool() -> BufferPool {
        BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(256),
        )
    }

    fn mbr(x: f64, t: Time) -> MovingRect {
        MovingRect::rigid(Rect::new([x, 0.0], [x + 1.0, 1.0]), [1.0, 0.0], t)
    }

    #[test]
    fn bucket_arithmetic() {
        let m = MtbTree::new(pool(), TreeConfig::default(), 60.0);
        assert_eq!(m.bucket_of(0.0), 0);
        assert_eq!(m.bucket_of(29.9), 0);
        assert_eq!(m.bucket_of(30.0), 1);
        assert_eq!(m.bucket_of(61.0), 2);
        assert_eq!(m.bucket_end(0), 30.0);
        assert_eq!(m.bucket_end(2), 90.0);
    }

    #[test]
    fn insert_remove_across_buckets() {
        let mut m = MtbTree::new(pool(), TreeConfig::default(), 60.0);
        m.insert(ObjectId(1), mbr(0.0, 0.0), 0.0, 0.0).unwrap();
        m.insert(ObjectId(2), mbr(10.0, 35.0), 35.0, 35.0).unwrap();
        assert_eq!(m.bucket_count(), 2);
        assert_eq!(m.len(), 2);
        m.validate(35.0).unwrap();

        // Object 1 updates at t=40: moves bucket 0 → bucket 1.
        m.remove(ObjectId(1), &mbr(0.0, 0.0), 0.0, 40.0).unwrap();
        m.insert(ObjectId(1), mbr(5.0, 40.0), 40.0, 40.0).unwrap();
        assert_eq!(m.bucket_count(), 1, "bucket 0 emptied and dropped");
        assert_eq!(m.len(), 2);
        m.validate(40.0).unwrap();
    }

    #[test]
    fn remove_unknown_bucket_errors() {
        let mut m = MtbTree::new(pool(), TreeConfig::default(), 60.0);
        assert!(matches!(
            m.remove(ObjectId(1), &mbr(0.0, 0.0), 0.0, 0.0),
            Err(TprError::ObjectNotFound(_))
        ));
    }

    #[test]
    fn at_most_m_plus_one_buckets_under_heartbeat_discipline() {
        let mut m = MtbTree::new(pool(), TreeConfig::default(), 60.0);
        // 50 objects, all heartbeating every T_M.
        let mut state: Vec<(ObjectId, MovingRect, Time)> = (0..50)
            .map(|i| (ObjectId(i), mbr(i as f64 * 5.0, 0.0), 0.0))
            .collect();
        for (oid, m0, t0) in &state {
            m.insert(*oid, *m0, *t0, *t0).unwrap();
        }
        for tick in 1..=240u32 {
            let now = f64::from(tick);
            for (oid, old, t0) in state.iter_mut() {
                if now - *t0 >= 60.0 {
                    m.remove(*oid, old, *t0, now).unwrap();
                    let new = mbr((oid.0 as f64 * 7.0) % 900.0, now);
                    m.insert(*oid, new, now, now).unwrap();
                    *old = new;
                    *t0 = now;
                }
            }
            assert!(
                m.bucket_count() <= 3,
                "{} buckets live at t={now}",
                m.bucket_count()
            );
        }
        m.validate(240.0).unwrap();
    }

    #[test]
    fn join_object_unions_buckets_with_tight_windows() {
        let mut m = MtbTree::new(pool(), TreeConfig::default(), 60.0);
        // Two static-ish objects in different buckets, both near x=100.
        let o1 = MovingRect::rigid(Rect::new([100.0, 0.0], [101.0, 1.0]), [0.0, 0.0], 0.0);
        let o2 = MovingRect::rigid(Rect::new([100.0, 0.0], [101.0, 1.0]), [0.0, 0.0], 35.0);
        m.insert(ObjectId(1), o1, 0.0, 0.0).unwrap();
        m.insert(ObjectId(2), o2, 35.0, 35.0).unwrap();

        // Probe overlapping both.
        let probe = MovingRect::rigid(Rect::new([100.5, 0.0], [101.5, 1.0]), [0.0, 0.0], 40.0);
        let t_m = 60.0;
        let got = m.join_object(&probe, 40.0, |t_eb| t_eb + t_m).unwrap();
        let ids: Vec<_> = got.iter().map(|(o, _)| *o).collect();
        assert!(ids.contains(&ObjectId(1)));
        assert!(ids.contains(&ObjectId(2)));
        // Windows differ by bucket: o1 lives in bucket [0,30) → window end
        // 90; o2 in [30,60) → 120.
        for (oid, iv) in got {
            let bound = if oid == ObjectId(1) { 90.0 } else { 120.0 };
            assert!(iv.end <= bound + 1e-9, "{oid}: {iv:?} beyond {bound}");
        }
    }

    #[test]
    fn stale_bucket_windows_are_skipped() {
        let mut m = MtbTree::new(pool(), TreeConfig::default(), 60.0);
        m.insert(ObjectId(1), mbr(0.0, 0.0), 0.0, 0.0).unwrap();
        // now = 95 > bucket_end(0) + T_M = 90: nothing can be valid.
        let probe = mbr(0.0, 95.0);
        let got = m.join_object(&probe, 95.0, |t_eb| t_eb + 60.0).unwrap();
        assert!(
            got.is_empty(),
            "window entirely in the past must be skipped"
        );
    }
}
