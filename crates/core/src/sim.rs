//! Simulation driver: runs an engine against an update stream and
//! collects the paper's two metrics per phase (disk I/Os and wall-clock
//! response time), split into *initial join* and *maintenance* exactly
//! like §VI-D.

use std::time::{Duration, Instant};

use cij_geom::Time;
use cij_tpr::TprResult;
use cij_workload::UpdateStream;

use crate::engine::ContinuousJoinEngine;

/// Metrics of one simulated run.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimMetrics {
    /// Physical I/Os of the initial join.
    pub initial_io: u64,
    /// Wall time of the initial join.
    pub initial_time: Duration,
    /// Physical I/Os of the measured maintenance window.
    pub maintenance_io: u64,
    /// Wall time of the measured maintenance window.
    pub maintenance_time: Duration,
    /// Updates applied inside the measured window.
    pub maintenance_updates: u64,
    /// Ticks in the measured window.
    pub measured_ticks: u64,
}

impl SimMetrics {
    /// Average physical I/Os per update in the measured window — the
    /// y-axis of the paper's Fig. 13.
    #[must_use]
    pub fn io_per_update(&self) -> f64 {
        if self.maintenance_updates == 0 {
            0.0
        } else {
            self.maintenance_io as f64 / self.maintenance_updates as f64
        }
    }

    /// Average response time per update in the measured window.
    #[must_use]
    pub fn time_per_update(&self) -> Duration {
        if self.maintenance_updates == 0 {
            Duration::ZERO
        } else {
            self.maintenance_time / u32::try_from(self.maintenance_updates).unwrap_or(u32::MAX)
        }
    }
}

/// Runs the full continuous-join protocol:
///
/// 1. initial join at `start` (buffer cold-cleared first, as in the
///    paper's fresh measurements),
/// 2. ticks `start+1 ..= end`, applying the stream's updates each tick;
///    maintenance cost is accumulated only for ticks `> measure_from`
///    (the paper starts measuring at `T_M`, letting the bucket structure
///    reach steady state).
///
/// The caller keeps the stream and can interleave its own result checks
/// via `on_tick` (e.g. oracle comparisons in tests; `|_, _| Ok(())` in
/// benches).
pub fn run_simulation<E: ContinuousJoinEngine + ?Sized>(
    engine: &mut E,
    stream: &mut UpdateStream,
    start: Time,
    end: Time,
    measure_from: Time,
    mut on_tick: impl FnMut(&mut E, Time) -> TprResult<()>,
) -> TprResult<SimMetrics> {
    let mut metrics = SimMetrics::default();
    let stats = engine.pool().stats();
    // Per-phase spans land in the engine's registry (inert when the
    // engine was built without `EngineConfig::metrics`).
    let obs = engine.metrics_registry();

    engine.pool().clear().map_err(cij_tpr::TprError::from)?;
    let before = stats.snapshot();
    let t0 = Instant::now();
    {
        let _span = obs.span("phase.initial_join");
        engine.run_initial_join(start)?;
    }
    metrics.initial_time = t0.elapsed();
    metrics.initial_io = (stats.snapshot() - before).physical_total();
    on_tick(engine, start)?;

    let mut tick = start.floor() as i64 + 1;
    while (tick as Time) <= end {
        let now = tick as Time;
        let updates = stream.tick(now);
        let measured = now > measure_from;
        let before = stats.snapshot();
        let t0 = Instant::now();
        {
            let _span = obs.span("phase.maintenance_tick");
            engine.advance_time(now)?;
            // One batch per tick: engines default to the sequential
            // per-update loop; composite engines (the shard coordinator)
            // fan the batch out across shards with identical results.
            engine.apply_batch(&updates, now)?;
        }
        if measured {
            metrics.maintenance_time += t0.elapsed();
            metrics.maintenance_io += (stats.snapshot() - before).physical_total();
            metrics.maintenance_updates += updates.len() as u64;
            metrics.measured_ticks += 1;
        }
        engine.gc(now);
        on_tick(engine, now)?;
        tick += 1;
    }
    engine.publish_metrics();
    Ok(metrics)
}
