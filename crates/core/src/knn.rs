//! TC processing grafted onto **continuous kNN monitoring** (§V).
//!
//! §V argues TC processing applies to "a wide range of continuous query
//! types … such as continuous window queries and kNN queries": any
//! prediction about moving objects only needs to remain valid until the
//! involved objects' next update, bounded by `T_M`.
//!
//! [`ContinuousKnn`] monitors the k nearest neighbors of a set of static
//! query points over one moving-object set. Instead of re-searching the
//! index at every timestamp, each query keeps a **candidate set** with a
//! guard radius: at evaluation time `t₀` the k-th neighbor lies at
//! distance `d_k`; any object farther than `d_k + 2·v_max·(t − t₀)` at
//! `t₀` cannot enter the kNN before `t` (both the neighbor and the
//! candidate move at most `v_max`). Pre-fetching candidates out to the
//! TC horizon `d_k + 2·v_max·T_M` therefore makes the candidate set
//! sufficient for a full `T_M` — exactly Theorem 1's shape, since every
//! candidate must re-register within `T_M` anyway. Per tick the monitor
//! just re-ranks its candidates; the index is touched only on
//! (re-)evaluation and when an update lands inside a query's guard
//! radius.

use std::collections::HashMap;

use cij_geom::{MovingRect, Time};
use cij_tpr::{ObjectId, TprResult, TprTree};

use crate::window::QueryId;

/// One monitored kNN query.
#[derive(Debug, Clone, Copy)]
struct KnnQuery {
    point: [f64; 2],
    k: usize,
}

#[derive(Debug, Default)]
struct QueryState {
    /// Candidate objects with their trajectories as of the last refresh.
    candidates: HashMap<ObjectId, MovingRect>,
    /// When the candidate set was computed.
    eval_time: Time,
    /// Guard radius (plain distance, not squared) the candidates cover
    /// around the query point, measured at `eval_time`.
    guard_radius: f64,
    /// Set when an update invalidated the candidate set.
    dirty: bool,
}

/// Continuous kNN monitor with TC-bounded candidate maintenance.
///
/// ```
/// use std::sync::Arc;
/// use cij_core::knn::ContinuousKnn;
/// use cij_core::window::QueryId;
/// use cij_geom::{MovingRect, Rect};
/// use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
/// use cij_tpr::{ObjectId, TprTree, TreeConfig};
///
/// let pool = BufferPool::new(Arc::new(InMemoryStore::new()), BufferPoolConfig::default());
/// let mut tree = TprTree::new(pool, TreeConfig::default());
/// for (i, x) in [(1u64, 10.0), (2, 40.0), (3, 90.0)] {
///     tree.insert(
///         ObjectId(i),
///         MovingRect::stationary(Rect::new([x, 0.0], [x + 1.0, 1.0]), 0.0),
///         0.0,
///     )?;
/// }
///
/// let mut knn = ContinuousKnn::new(60.0, 3.0); // T_M, v_max
/// knn.add_query(QueryId(0), [0.0, 0.5], 2);
/// knn.refresh(&tree, 0.0)?;
/// let two_nearest: Vec<_> = knn.result_at(QueryId(0), 0.0)
///     .into_iter().map(|(oid, _)| oid).collect();
/// assert_eq!(two_nearest, vec![ObjectId(1), ObjectId(2)]);
/// # Ok::<(), cij_tpr::TprError>(())
/// ```
pub struct ContinuousKnn {
    t_m: Time,
    v_max: f64,
    queries: HashMap<QueryId, KnnQuery>,
    states: HashMap<QueryId, QueryState>,
}

impl ContinuousKnn {
    /// Creates a monitor. `t_m` is the maximum update interval, `v_max`
    /// the workload's maximum object speed (both workload contracts the
    /// guard-radius argument relies on).
    ///
    /// # Panics
    /// Panics on non-positive `t_m` or negative `v_max`.
    #[must_use]
    pub fn new(t_m: Time, v_max: f64) -> Self {
        assert!(t_m > 0.0, "T_M must be positive");
        assert!(v_max >= 0.0, "v_max cannot be negative");
        Self {
            t_m,
            v_max,
            queries: HashMap::new(),
            states: HashMap::new(),
        }
    }

    /// Registers a kNN query at `point`.
    ///
    /// # Panics
    /// Panics when `k == 0` or the id is already registered.
    pub fn add_query(&mut self, id: QueryId, point: [f64; 2], k: usize) {
        assert!(k > 0, "k must be positive");
        let prev = self.queries.insert(id, KnnQuery { point, k });
        assert!(prev.is_none(), "duplicate query id {id:?}");
        self.states.insert(
            id,
            QueryState {
                dirty: true,
                ..QueryState::default()
            },
        );
    }

    /// Number of registered queries.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Refreshes every stale query's candidate set from the index.
    /// Call after updates and before reading results at `now`.
    pub fn refresh(&mut self, tree: &TprTree, now: Time) -> TprResult<()> {
        for (id, q) in &self.queries {
            let state = self.states.get_mut(id).expect("state per query");
            let stale =
                state.dirty || state.candidates.len() < q.k || now - state.eval_time >= self.t_m;
            if !stale {
                continue;
            }
            // Find the k-th distance now, then fetch every object within
            // the TC guard radius (sufficient for a full T_M: neither a
            // current neighbor nor an outside challenger can bridge more
            // than 2·v_max·T_M of relative distance before re-registering).
            let knn = tree.knn_at(q.point, q.k, now)?;
            let d_k = knn.last().map_or(0.0, |(_, d2)| d2.sqrt());
            let guard = d_k + 2.0 * self.v_max * self.t_m;
            let window = cij_geom::Rect::new(
                [q.point[0] - guard, q.point[1] - guard],
                [q.point[0] + guard, q.point[1] + guard],
            );
            state.candidates.clear();
            for (oid, mbr) in tree.range_entries_at(&window, now)? {
                state.candidates.insert(oid, mbr);
            }
            state.eval_time = now;
            state.guard_radius = guard;
            state.dirty = false;
        }
        Ok(())
    }

    /// Routes an object update: queries whose guard region the object
    /// touches (old or new position) are marked stale; all candidate
    /// copies are refreshed.
    pub fn apply_update(
        &mut self,
        oid: ObjectId,
        old_mbr: &MovingRect,
        new_mbr: &MovingRect,
        now: Time,
    ) {
        for (id, q) in &self.queries {
            let state = self.states.get_mut(id).expect("state per query");
            if state.dirty {
                continue;
            }
            let was_candidate = state.candidates.contains_key(&oid);
            // Effective guard at `now` (it covers motion since eval).
            let elapsed = now - state.eval_time;
            let reach = state.guard_radius + 2.0 * self.v_max * elapsed.max(0.0);
            let touches = |m: &MovingRect| m.at(now).min_dist_sq(q.point) <= reach * reach;
            if touches(new_mbr) {
                if was_candidate || touches(old_mbr) {
                    // Still inside: just refresh the trajectory copy.
                    state.candidates.insert(oid, *new_mbr);
                } else {
                    // A new arrival inside the guard: conservative
                    // re-evaluation (it may displace the k-th neighbor
                    // and shrink the true guard).
                    state.candidates.insert(oid, *new_mbr);
                }
            } else if was_candidate {
                state.candidates.remove(&oid);
            }
        }
    }

    /// Removes a deleted object everywhere.
    pub fn remove_object(&mut self, oid: ObjectId) {
        for state in self.states.values_mut() {
            state.candidates.remove(&oid);
        }
    }

    /// The k nearest objects to query `id` at time `t` (nearest first,
    /// squared distances). `t` must lie within the candidate validity
    /// window — guaranteed when [`refresh`](Self::refresh) ran at or
    /// after `t − T_M` and updates were routed through
    /// [`apply_update`](Self::apply_update).
    #[must_use]
    pub fn result_at(&self, id: QueryId, t: Time) -> Vec<(ObjectId, f64)> {
        let (Some(q), Some(state)) = (self.queries.get(&id), self.states.get(&id)) else {
            return Vec::new();
        };
        let mut scored: Vec<(ObjectId, f64)> = state
            .candidates
            .iter()
            .map(|(oid, m)| (*oid, m.at(t).min_dist_sq(q.point)))
            .collect();
        scored.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite distances")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(q.k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::Rect;
    use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
    use cij_tpr::TreeConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    const V_MAX: f64 = 3.0;
    const T_M: f64 = 60.0;

    fn build(objects: &[(ObjectId, MovingRect)]) -> TprTree {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::with_capacity(256),
        );
        let mut tree = TprTree::new(pool, TreeConfig::default());
        for &(oid, mbr) in objects {
            tree.insert(oid, mbr, 0.0).unwrap();
        }
        tree
    }

    fn random_objects(rng: &mut StdRng, n: usize) -> Vec<(ObjectId, MovingRect)> {
        (0..n)
            .map(|i| {
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let speed = rng.gen_range(0.0..V_MAX);
                (
                    ObjectId(i as u64),
                    MovingRect::rigid(
                        Rect::new([x, y], [x + 1.0, y + 1.0]),
                        [speed * angle.cos(), speed * angle.sin()],
                        0.0,
                    ),
                )
            })
            .collect()
    }

    fn brute_knn(
        objects: &HashMap<ObjectId, MovingRect>,
        q: [f64; 2],
        k: usize,
        t: Time,
    ) -> Vec<(ObjectId, f64)> {
        let mut scored: Vec<(ObjectId, f64)> = objects
            .iter()
            .map(|(o, m)| (*o, m.at(t).min_dist_sq(q)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn knn_monitor_tracks_without_updates() {
        let mut rng = StdRng::seed_from_u64(1);
        let objects = random_objects(&mut rng, 400);
        let tree = build(&objects);
        let shadow: HashMap<_, _> = objects.iter().copied().collect();

        let mut monitor = ContinuousKnn::new(T_M, V_MAX);
        monitor.add_query(QueryId(0), [500.0, 500.0], 5);
        monitor.add_query(QueryId(1), [100.0, 900.0], 10);
        monitor.refresh(&tree, 0.0).unwrap();

        // Within one T_M, re-ranking the candidates is exact at every
        // sampled instant — no index access needed.
        for t in [0.0, 10.0, 30.0, 59.0] {
            for (qid, point, k) in [
                (QueryId(0), [500.0, 500.0], 5),
                (QueryId(1), [100.0, 900.0], 10),
            ] {
                let got = monitor.result_at(qid, t);
                let expect = brute_knn(&shadow, point, k, t);
                for (g, e) in got.iter().zip(&expect) {
                    assert!(
                        (g.1 - e.1).abs() < 1e-9,
                        "q={qid:?} t={t}: dist {} vs {}",
                        g.1,
                        e.1
                    );
                }
                assert_eq!(got.len(), k);
            }
        }
    }

    #[test]
    fn knn_monitor_follows_updates() {
        let mut rng = StdRng::seed_from_u64(2);
        let objects = random_objects(&mut rng, 300);
        let mut tree = build(&objects);
        let mut shadow: HashMap<_, _> = objects.iter().copied().collect();

        let q = [500.0, 500.0];
        let mut monitor = ContinuousKnn::new(T_M, V_MAX);
        monitor.add_query(QueryId(0), q, 8);
        monitor.refresh(&tree, 0.0).unwrap();

        for tick in 1..=90u32 {
            let now = f64::from(tick);
            // A few random updates per tick.
            for _ in 0..5 {
                let oid = ObjectId(rng.gen_range(0..300));
                let old = shadow[&oid];
                let x = rng.gen_range(0.0..1000.0);
                let y = rng.gen_range(0.0..1000.0);
                let angle = rng.gen_range(0.0..std::f64::consts::TAU);
                let speed = rng.gen_range(0.0..V_MAX);
                let new = MovingRect::rigid(
                    Rect::new([x, y], [x + 1.0, y + 1.0]),
                    [speed * angle.cos(), speed * angle.sin()],
                    now,
                );
                tree.update(oid, &old, new, now).unwrap();
                monitor.apply_update(oid, &old, &new, now);
                shadow.insert(oid, new);
            }
            monitor.refresh(&tree, now).unwrap();
            let got = monitor.result_at(QueryId(0), now);
            let expect = brute_knn(&shadow, q, 8, now);
            for (i, (g, e)) in got.iter().zip(&expect).enumerate() {
                assert!(
                    (g.1 - e.1).abs() < 1e-9,
                    "t={now} rank {i}: dist {} vs {} (got {:?}, want {:?})",
                    g.1,
                    e.1,
                    got,
                    expect
                );
            }
        }
    }

    #[test]
    fn knn_monitor_teleporting_neighbor() {
        // The nearest object teleports far away via an update; the
        // monitor must promote the next-nearest.
        let objects = vec![
            (
                ObjectId(1),
                MovingRect::stationary(Rect::square([500.0, 500.0], 1.0), 0.0),
            ),
            (
                ObjectId(2),
                MovingRect::stationary(Rect::square([510.0, 500.0], 1.0), 0.0),
            ),
            (
                ObjectId(3),
                MovingRect::stationary(Rect::square([900.0, 900.0], 1.0), 0.0),
            ),
        ];
        let mut tree = build(&objects);
        let mut monitor = ContinuousKnn::new(T_M, V_MAX);
        monitor.add_query(QueryId(0), [500.0, 500.0], 1);
        monitor.refresh(&tree, 0.0).unwrap();
        assert_eq!(monitor.result_at(QueryId(0), 0.0)[0].0, ObjectId(1));

        let old = objects[0].1;
        let new = MovingRect::stationary(Rect::square([50.0, 50.0], 1.0), 5.0);
        tree.update(ObjectId(1), &old, new, 5.0).unwrap();
        monitor.apply_update(ObjectId(1), &old, &new, 5.0);
        monitor.refresh(&tree, 5.0).unwrap();
        assert_eq!(monitor.result_at(QueryId(0), 5.0)[0].0, ObjectId(2));
    }

    #[test]
    fn knn_monitor_removed_object() {
        let objects = vec![
            (
                ObjectId(1),
                MovingRect::stationary(Rect::square([500.0, 500.0], 1.0), 0.0),
            ),
            (
                ObjectId(2),
                MovingRect::stationary(Rect::square([510.0, 500.0], 1.0), 0.0),
            ),
        ];
        let tree = build(&objects);
        let mut monitor = ContinuousKnn::new(T_M, V_MAX);
        monitor.add_query(QueryId(0), [500.0, 500.0], 1);
        monitor.refresh(&tree, 0.0).unwrap();
        monitor.remove_object(ObjectId(1));
        assert_eq!(monitor.result_at(QueryId(0), 0.0)[0].0, ObjectId(2));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let mut m = ContinuousKnn::new(T_M, V_MAX);
        m.add_query(QueryId(0), [0.0, 0.0], 0);
    }

    #[test]
    fn unknown_query_is_empty() {
        let m = ContinuousKnn::new(T_M, V_MAX);
        assert!(m.result_at(QueryId(42), 0.0).is_empty());
        assert_eq!(m.query_count(), 0);
    }
}
