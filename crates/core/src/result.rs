//! The continuously-maintained join answer.
//!
//! Pairs map to sets of disjoint time intervals during which the two
//! objects (are predicted to) intersect. The paper assumes the result
//! always fits in main memory (§II-A); maintenance removes *all* of an
//! object's pairs when it updates and re-adds what the fresh join run
//! finds, so the buffer is only ever queried at the present or future
//! (`active_at(t)` for `t ≥` the last maintenance time).

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet};

use cij_geom::{Time, TimeInterval};
use cij_tpr::ObjectId;

/// Ordered pair key: `a` from set A, `b` from set B.
pub type PairKey = (ObjectId, ObjectId);

/// The live join result: pair → disjoint, sorted intersection intervals.
///
/// ```
/// use cij_core::ResultBuffer;
/// use cij_geom::TimeInterval;
/// use cij_tpr::ObjectId;
///
/// let (a, b) = (ObjectId(1), ObjectId(101));
/// let mut buf = ResultBuffer::new();
/// buf.add(a, b, TimeInterval::new_unchecked(5.0, 12.0));
/// assert!(buf.is_active(a, b, 7.0));
/// assert!(!buf.is_active(a, b, 13.0));
///
/// // Object 1 updates at t = 7: all its predictions are dropped and the
/// // follow-up join re-adds what still holds.
/// buf.remove_object(a);
/// assert!(buf.active_at(7.0).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ResultBuffer {
    pairs: HashMap<PairKey, Vec<TimeInterval>>,
    /// Reverse index so `remove_object` is proportional to the object's
    /// own pair count, not the whole result.
    by_object: HashMap<ObjectId, HashSet<PairKey>>,
}

impl ResultBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pairs with at least one interval.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the buffer holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Records that `(a, b)` intersect during `interval`, merging with
    /// any overlapping or touching intervals already recorded.
    pub fn add(&mut self, a: ObjectId, b: ObjectId, interval: TimeInterval) {
        let key = (a, b);
        let list = match self.pairs.entry(key) {
            MapEntry::Occupied(o) => o.into_mut(),
            MapEntry::Vacant(v) => {
                self.by_object.entry(a).or_default().insert(key);
                self.by_object.entry(b).or_default().insert(key);
                v.insert(Vec::with_capacity(1))
            }
        };
        // Insert keeping the list sorted and disjoint.
        let mut merged = interval;
        let mut out = Vec::with_capacity(list.len() + 1);
        let mut placed = false;
        for &iv in list.iter() {
            if iv.end < merged.start && !placed {
                out.push(iv);
            } else if iv.start > merged.end {
                if !placed {
                    out.push(merged);
                    placed = true;
                }
                out.push(iv);
            } else {
                // Overlapping or touching: absorb.
                merged =
                    TimeInterval::new_unchecked(merged.start.min(iv.start), merged.end.max(iv.end));
            }
        }
        if !placed {
            out.push(merged);
        }
        *list = out;
    }

    /// Drops every pair involving `oid` (both sides). Called when `oid`
    /// updates: all predictions involving it are invalidated from that
    /// moment on, and the follow-up join re-adds what still holds.
    pub fn remove_object(&mut self, oid: ObjectId) {
        let Some(keys) = self.by_object.remove(&oid) else {
            return;
        };
        for key in keys {
            self.pairs.remove(&key);
            let partner = if key.0 == oid { key.1 } else { key.0 };
            if let Some(set) = self.by_object.get_mut(&partner) {
                set.remove(&key);
                if set.is_empty() {
                    self.by_object.remove(&partner);
                }
            }
        }
    }

    /// The pairs intersecting at instant `t`, sorted. This is the answer
    /// the continuous query reports at timestamp `t`.
    #[must_use]
    pub fn active_at(&self, t: Time) -> Vec<PairKey> {
        let mut out: Vec<PairKey> = self
            .pairs
            .iter()
            .filter(|(_, ivs)| ivs.iter().any(|iv| iv.contains(t)))
            .map(|(k, _)| *k)
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether `(a, b)` is reported as intersecting at `t`.
    #[must_use]
    pub fn is_active(&self, a: ObjectId, b: ObjectId, t: Time) -> bool {
        self.pairs
            .get(&(a, b))
            .is_some_and(|ivs| ivs.iter().any(|iv| iv.contains(t)))
    }

    /// Garbage-collects intervals that ended before `t` (history the
    /// continuous query will never report again).
    pub fn prune_before(&mut self, t: Time) {
        self.pairs.retain(|key, ivs| {
            ivs.retain(|iv| iv.end >= t);
            if ivs.is_empty() {
                for side in [key.0, key.1] {
                    if let Some(set) = self.by_object.get_mut(&side) {
                        set.remove(key);
                        if set.is_empty() {
                            self.by_object.remove(&side);
                        }
                    }
                }
                false
            } else {
                true
            }
        });
    }

    /// Total number of stored intervals (diagnostics).
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::INFINITE_TIME;

    fn iv(s: f64, e: f64) -> TimeInterval {
        TimeInterval::new_unchecked(s, e)
    }
    const A1: ObjectId = ObjectId(1);
    const B1: ObjectId = ObjectId(101);
    const B2: ObjectId = ObjectId(102);

    #[test]
    fn add_and_query() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(5.0, 10.0));
        assert!(buf.is_active(A1, B1, 5.0));
        assert!(buf.is_active(A1, B1, 10.0));
        assert!(!buf.is_active(A1, B1, 10.1));
        assert_eq!(buf.active_at(7.0), vec![(A1, B1)]);
        assert!(buf.active_at(4.9).is_empty());
    }

    #[test]
    fn overlapping_intervals_merge() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 5.0));
        buf.add(A1, B1, iv(4.0, 8.0));
        buf.add(A1, B1, iv(8.0, 9.0)); // touching merges too
        assert_eq!(buf.interval_count(), 1);
        assert!(buf.is_active(A1, B1, 8.5));
    }

    #[test]
    fn disjoint_intervals_coexist() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(10.0, 12.0));
        buf.add(A1, B1, iv(0.0, 2.0));
        buf.add(A1, B1, iv(5.0, 6.0));
        assert_eq!(buf.interval_count(), 3);
        assert!(buf.is_active(A1, B1, 1.0));
        assert!(!buf.is_active(A1, B1, 3.0));
        assert!(buf.is_active(A1, B1, 5.5));
        assert!(!buf.is_active(A1, B1, 8.0));
        assert!(buf.is_active(A1, B1, 11.0));
    }

    #[test]
    fn bridging_interval_collapses_neighbors() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 2.0));
        buf.add(A1, B1, iv(4.0, 6.0));
        buf.add(A1, B1, iv(1.0, 5.0)); // bridges both
        assert_eq!(buf.interval_count(), 1);
        assert!(buf.is_active(A1, B1, 3.0));
    }

    #[test]
    fn unbounded_intervals() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, TimeInterval::from(3.0));
        assert!(buf.is_active(A1, B1, 1e15));
        buf.add(A1, B1, iv(0.0, 1.0));
        assert_eq!(buf.interval_count(), 2);
        buf.add(A1, B1, iv(1.0, 5.0)); // merges with both
        assert_eq!(buf.interval_count(), 1);
        assert_eq!(buf.pairs[&(A1, B1)][0].end, INFINITE_TIME);
    }

    #[test]
    fn remove_object_clears_both_directions() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 10.0));
        buf.add(A1, B2, iv(0.0, 10.0));
        buf.add(ObjectId(2), B1, iv(0.0, 10.0));
        buf.remove_object(B1); // removes (A1,B1) and (2,B1)
        assert_eq!(buf.pair_count(), 1);
        assert!(buf.is_active(A1, B2, 5.0));
        assert!(!buf.is_active(A1, B1, 5.0));
        // Removing an unknown object is a no-op.
        buf.remove_object(ObjectId(999));
        assert_eq!(buf.pair_count(), 1);
        // Reverse index stays consistent: removing A1 clears the rest.
        buf.remove_object(A1);
        assert!(buf.is_empty());
    }

    #[test]
    fn prune_drops_expired_history() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 5.0));
        buf.add(A1, B2, iv(0.0, 100.0));
        buf.prune_before(50.0);
        assert_eq!(buf.pair_count(), 1);
        assert!(buf.is_active(A1, B2, 60.0));
        // remove_object still works after pruning (index consistency).
        buf.remove_object(B2);
        assert!(buf.is_empty());
    }

    #[test]
    fn readd_after_remove() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 10.0));
        buf.remove_object(A1);
        buf.add(A1, B1, iv(20.0, 30.0));
        assert!(!buf.is_active(A1, B1, 5.0));
        assert!(buf.is_active(A1, B1, 25.0));
    }
}
