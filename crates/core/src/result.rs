//! The continuously-maintained join answer.
//!
//! Pairs map to sets of disjoint time intervals during which the two
//! objects (are predicted to) intersect. The paper assumes the result
//! always fits in main memory (§II-A); maintenance removes *all* of an
//! object's pairs when it updates and re-adds what the fresh join run
//! finds, so the buffer is only ever queried at the present or future
//! (`active_at(t)` for `t ≥` the last maintenance time).

use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet};

use cij_geom::{Time, TimeInterval};
use cij_tpr::ObjectId;

/// Ordered pair key: `a` from set A, `b` from set B.
pub type PairKey = (ObjectId, ObjectId);

/// Activity of one pair at a queried instant, as needed by the
/// delta-extraction layer (`cij-stream`): the interval currently making
/// the pair active, and the next time it will become active if it is
/// not.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairStatus {
    /// The stored interval containing the queried instant, if any.
    pub active: Option<TimeInterval>,
    /// Start of the earliest stored interval that begins strictly after
    /// the queried instant (a future activation to schedule).
    pub next_start: Option<Time>,
}

/// The live join result: pair → disjoint, sorted intersection intervals.
///
/// ```
/// use cij_core::ResultBuffer;
/// use cij_geom::TimeInterval;
/// use cij_tpr::ObjectId;
///
/// let (a, b) = (ObjectId(1), ObjectId(101));
/// let mut buf = ResultBuffer::new();
/// buf.add(a, b, TimeInterval::new_unchecked(5.0, 12.0));
/// assert!(buf.is_active(a, b, 7.0));
/// assert!(!buf.is_active(a, b, 13.0));
///
/// // Object 1 updates at t = 7: all its predictions are dropped and the
/// // follow-up join re-adds what still holds.
/// buf.remove_object(a);
/// assert!(buf.active_at(7.0).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ResultBuffer {
    pairs: HashMap<PairKey, Vec<TimeInterval>>,
    /// Reverse index so `remove_object` is proportional to the object's
    /// own pair count, not the whole result.
    by_object: HashMap<ObjectId, HashSet<PairKey>>,
    /// Pairs whose interval set changed since the last
    /// [`take_changes`](Self::take_changes) — `None` until
    /// [`enable_change_tracking`](Self::enable_change_tracking) turns
    /// the changelog on, so engines that never stream deltas pay
    /// nothing.
    changed: Option<HashSet<PairKey>>,
}

impl ResultBuffer {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pairs with at least one interval.
    #[must_use]
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the buffer holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Turns on the changelog consumed by
    /// [`take_changes`](Self::take_changes). Idempotent; off by default.
    pub fn enable_change_tracking(&mut self) {
        if self.changed.is_none() {
            self.changed = Some(HashSet::new());
        }
    }

    /// Drains the changelog: every pair whose interval set was touched
    /// by `add` / `remove_object` / `prune_before` since the previous
    /// call, sorted for deterministic downstream processing. `None`
    /// when change tracking was never enabled.
    pub fn take_changes(&mut self) -> Option<Vec<PairKey>> {
        let set = self.changed.as_mut()?;
        let mut out: Vec<PairKey> = set.drain().collect();
        out.sort_unstable();
        Some(out)
    }

    fn mark_changed(&mut self, key: PairKey) {
        if let Some(set) = self.changed.as_mut() {
            set.insert(key);
        }
    }

    /// The activity of `(a, b)` at instant `t`: the interval containing
    /// `t` if the pair is active, and otherwise/additionally the start
    /// of its next future interval (for activation scheduling).
    #[must_use]
    pub fn status_at(&self, a: ObjectId, b: ObjectId, t: Time) -> PairStatus {
        let Some(ivs) = self.pairs.get(&(a, b)) else {
            return PairStatus::default();
        };
        // Interval lists are sorted and disjoint.
        let active = ivs.iter().copied().find(|iv| iv.contains(t));
        let next_start = ivs.iter().map(|iv| iv.start).find(|&s| s > t);
        PairStatus { active, next_start }
    }

    /// Records that `(a, b)` intersect during `interval`, merging with
    /// any overlapping or touching intervals already recorded.
    pub fn add(&mut self, a: ObjectId, b: ObjectId, interval: TimeInterval) {
        let key = (a, b);
        self.mark_changed(key);
        let list = match self.pairs.entry(key) {
            MapEntry::Occupied(o) => o.into_mut(),
            MapEntry::Vacant(v) => {
                self.by_object.entry(a).or_default().insert(key);
                self.by_object.entry(b).or_default().insert(key);
                v.insert(Vec::with_capacity(1))
            }
        };
        // Insert keeping the list sorted and disjoint.
        let mut merged = interval;
        let mut out = Vec::with_capacity(list.len() + 1);
        let mut placed = false;
        for &iv in list.iter() {
            if iv.end < merged.start && !placed {
                out.push(iv);
            } else if iv.start > merged.end {
                if !placed {
                    out.push(merged);
                    placed = true;
                }
                out.push(iv);
            } else {
                // Overlapping or touching: absorb.
                merged =
                    TimeInterval::new_unchecked(merged.start.min(iv.start), merged.end.max(iv.end));
            }
        }
        if !placed {
            out.push(merged);
        }
        *list = out;
    }

    /// Drops every pair involving `oid` (both sides). Called when `oid`
    /// updates: all predictions involving it are invalidated from that
    /// moment on, and the follow-up join re-adds what still holds.
    pub fn remove_object(&mut self, oid: ObjectId) {
        let Some(keys) = self.by_object.remove(&oid) else {
            return;
        };
        for key in keys {
            self.mark_changed(key);
            self.pairs.remove(&key);
            let partner = if key.0 == oid { key.1 } else { key.0 };
            if let Some(set) = self.by_object.get_mut(&partner) {
                set.remove(&key);
                if set.is_empty() {
                    self.by_object.remove(&partner);
                }
            }
        }
    }

    /// The pairs intersecting at instant `t`, sorted. This is the answer
    /// the continuous query reports at timestamp `t`.
    #[must_use]
    pub fn active_at(&self, t: Time) -> Vec<PairKey> {
        let mut out: Vec<PairKey> = self
            .pairs
            .iter()
            .filter(|(_, ivs)| ivs.iter().any(|iv| iv.contains(t)))
            .map(|(k, _)| *k)
            .collect();
        out.sort_unstable();
        out
    }

    /// Whether `(a, b)` is reported as intersecting at `t`.
    #[must_use]
    pub fn is_active(&self, a: ObjectId, b: ObjectId, t: Time) -> bool {
        self.pairs
            .get(&(a, b))
            .is_some_and(|ivs| ivs.iter().any(|iv| iv.contains(t)))
    }

    /// Garbage-collects intervals that ended before `t` (history the
    /// continuous query will never report again). An interval ending
    /// *exactly* at `t` is kept: `active_at(t)` still reports it
    /// (closed-interval semantics), so dropping it here would change
    /// the answer at `t` itself.
    pub fn prune_before(&mut self, t: Time) {
        let changed = &mut self.changed;
        self.pairs.retain(|key, ivs| {
            let before = ivs.len();
            ivs.retain(|iv| iv.end >= t);
            if ivs.len() != before {
                if let Some(set) = changed.as_mut() {
                    set.insert(*key);
                }
            }
            if ivs.is_empty() {
                for side in [key.0, key.1] {
                    if let Some(set) = self.by_object.get_mut(&side) {
                        set.remove(key);
                        if set.is_empty() {
                            self.by_object.remove(&side);
                        }
                    }
                }
                false
            } else {
                true
            }
        });
    }

    /// Total number of stored intervals (diagnostics).
    #[must_use]
    pub fn interval_count(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cij_geom::INFINITE_TIME;

    fn iv(s: f64, e: f64) -> TimeInterval {
        TimeInterval::new_unchecked(s, e)
    }
    const A1: ObjectId = ObjectId(1);
    const B1: ObjectId = ObjectId(101);
    const B2: ObjectId = ObjectId(102);

    #[test]
    fn add_and_query() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(5.0, 10.0));
        assert!(buf.is_active(A1, B1, 5.0));
        assert!(buf.is_active(A1, B1, 10.0));
        assert!(!buf.is_active(A1, B1, 10.1));
        assert_eq!(buf.active_at(7.0), vec![(A1, B1)]);
        assert!(buf.active_at(4.9).is_empty());
    }

    #[test]
    fn overlapping_intervals_merge() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 5.0));
        buf.add(A1, B1, iv(4.0, 8.0));
        buf.add(A1, B1, iv(8.0, 9.0)); // touching merges too
        assert_eq!(buf.interval_count(), 1);
        assert!(buf.is_active(A1, B1, 8.5));
    }

    #[test]
    fn disjoint_intervals_coexist() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(10.0, 12.0));
        buf.add(A1, B1, iv(0.0, 2.0));
        buf.add(A1, B1, iv(5.0, 6.0));
        assert_eq!(buf.interval_count(), 3);
        assert!(buf.is_active(A1, B1, 1.0));
        assert!(!buf.is_active(A1, B1, 3.0));
        assert!(buf.is_active(A1, B1, 5.5));
        assert!(!buf.is_active(A1, B1, 8.0));
        assert!(buf.is_active(A1, B1, 11.0));
    }

    #[test]
    fn bridging_interval_collapses_neighbors() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 2.0));
        buf.add(A1, B1, iv(4.0, 6.0));
        buf.add(A1, B1, iv(1.0, 5.0)); // bridges both
        assert_eq!(buf.interval_count(), 1);
        assert!(buf.is_active(A1, B1, 3.0));
    }

    #[test]
    fn unbounded_intervals() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, TimeInterval::from(3.0));
        assert!(buf.is_active(A1, B1, 1e15));
        buf.add(A1, B1, iv(0.0, 1.0));
        assert_eq!(buf.interval_count(), 2);
        buf.add(A1, B1, iv(1.0, 5.0)); // merges with both
        assert_eq!(buf.interval_count(), 1);
        assert_eq!(buf.pairs[&(A1, B1)][0].end, INFINITE_TIME);
    }

    #[test]
    fn remove_object_clears_both_directions() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 10.0));
        buf.add(A1, B2, iv(0.0, 10.0));
        buf.add(ObjectId(2), B1, iv(0.0, 10.0));
        buf.remove_object(B1); // removes (A1,B1) and (2,B1)
        assert_eq!(buf.pair_count(), 1);
        assert!(buf.is_active(A1, B2, 5.0));
        assert!(!buf.is_active(A1, B1, 5.0));
        // Removing an unknown object is a no-op.
        buf.remove_object(ObjectId(999));
        assert_eq!(buf.pair_count(), 1);
        // Reverse index stays consistent: removing A1 clears the rest.
        buf.remove_object(A1);
        assert!(buf.is_empty());
    }

    #[test]
    fn prune_drops_expired_history() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 5.0));
        buf.add(A1, B2, iv(0.0, 100.0));
        buf.prune_before(50.0);
        assert_eq!(buf.pair_count(), 1);
        assert!(buf.is_active(A1, B2, 60.0));
        // remove_object still works after pruning (index consistency).
        buf.remove_object(B2);
        assert!(buf.is_empty());
    }

    #[test]
    fn readd_after_remove() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 10.0));
        buf.remove_object(A1);
        buf.add(A1, B1, iv(20.0, 30.0));
        assert!(!buf.is_active(A1, B1, 5.0));
        assert!(buf.is_active(A1, B1, 25.0));
    }

    // ------------------------------------------------------------------
    // Edge-case semantics the delta layer (cij-stream) relies on.
    // ------------------------------------------------------------------

    #[test]
    fn default_is_an_empty_buffer() {
        let buf = ResultBuffer::default();
        assert!(buf.is_empty());
        assert_eq!(buf.pair_count(), 0);
        assert_eq!(buf.interval_count(), 0);
        assert!(buf.active_at(0.0).is_empty());
    }

    #[test]
    fn empty_buffer_ops_are_noops() {
        let mut buf = ResultBuffer::new();
        buf.prune_before(100.0);
        buf.remove_object(A1);
        assert!(buf.is_empty());
        assert_eq!(buf.status_at(A1, B1, 0.0), PairStatus::default());
    }

    #[test]
    fn pair_removed_twice_is_a_noop() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 10.0));
        buf.remove_object(A1);
        assert!(buf.is_empty());
        // Second removal of either side of the already-gone pair.
        buf.remove_object(A1);
        buf.remove_object(B1);
        assert!(buf.is_empty());
        // The buffer stays usable afterwards.
        buf.add(A1, B1, iv(1.0, 2.0));
        assert!(buf.is_active(A1, B1, 1.5));
    }

    #[test]
    fn prune_at_exact_interval_end_keeps_the_interval() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(0.0, 5.0));
        // `active_at(5.0)` reports the pair, so pruning *at* 5.0 must
        // not change the answer at 5.0.
        buf.prune_before(5.0);
        assert_eq!(buf.active_at(5.0), vec![(A1, B1)]);
        // Strictly past the end it is history and goes away.
        buf.prune_before(5.0 + 1e-9);
        assert!(buf.is_empty());
        assert!(buf.active_at(5.0).is_empty());
    }

    #[test]
    fn status_reports_active_interval_and_next_start() {
        let mut buf = ResultBuffer::new();
        buf.add(A1, B1, iv(2.0, 4.0));
        buf.add(A1, B1, iv(8.0, 9.0));
        assert_eq!(
            buf.status_at(A1, B1, 3.0),
            PairStatus {
                active: Some(iv(2.0, 4.0)),
                next_start: Some(8.0),
            }
        );
        assert_eq!(
            buf.status_at(A1, B1, 5.0),
            PairStatus {
                active: None,
                next_start: Some(8.0),
            }
        );
        assert_eq!(
            buf.status_at(A1, B1, 8.5),
            PairStatus {
                active: Some(iv(8.0, 9.0)),
                next_start: None,
            }
        );
        assert_eq!(buf.status_at(A1, B1, 10.0), PairStatus::default());
        // Boundary instants are inclusive on both ends.
        assert_eq!(buf.status_at(A1, B1, 4.0).active, Some(iv(2.0, 4.0)));
        assert_eq!(buf.status_at(A1, B1, 4.0).next_start, Some(8.0));
    }

    #[test]
    fn changelog_tracks_all_mutation_paths() {
        let mut buf = ResultBuffer::new();
        // Disabled by default: mutations report no changelog.
        buf.add(A1, B1, iv(0.0, 1.0));
        assert_eq!(buf.take_changes(), None);

        buf.enable_change_tracking();
        assert_eq!(buf.take_changes(), Some(vec![]));
        buf.add(A1, B1, iv(2.0, 3.0));
        buf.add(A1, B2, iv(0.0, 9.0));
        assert_eq!(buf.take_changes(), Some(vec![(A1, B1), (A1, B2)]));

        // remove_object dirties every pair it touches, including ones
        // whose intervals are already in the past.
        buf.remove_object(A1);
        assert_eq!(buf.take_changes(), Some(vec![(A1, B1), (A1, B2)]));
        // Removing again: nothing left to dirty.
        buf.remove_object(A1);
        assert_eq!(buf.take_changes(), Some(vec![]));

        // prune dirties exactly the pairs it modifies.
        buf.add(A1, B1, iv(0.0, 2.0));
        buf.add(A1, B2, iv(0.0, 50.0));
        let _ = buf.take_changes();
        buf.prune_before(10.0);
        assert_eq!(buf.take_changes(), Some(vec![(A1, B1)]));
        // A prune that touches nothing dirties nothing.
        buf.prune_before(10.0);
        assert_eq!(buf.take_changes(), Some(vec![]));
    }
}
