//! # cij-core — continuous intersection joins over moving objects
//!
//! The paper's contribution, assembled from the substrate crates: given
//! two sets of moving objects (each indexed by TPR-trees through a shared
//! buffer pool), continuously report every intersecting pair as objects
//! send updates.
//!
//! Four interchangeable engines implement the
//! [`ContinuousJoinEngine`] trait:
//!
//! * [`NaiveEngine`] — §II-C: unconstrained joins to the infinite
//!   timestamp; answer updates only on object updates, but each one
//!   touches nearly the whole opposing tree.
//! * [`TcEngine`] — §IV-B Theorem 1: identical structure, every join
//!   window capped at `t_u + T_M`.
//! * [`EtpEngine`] — §III: the extended time-parameterized join
//!   competitor; cheap per run but re-runs at every result change.
//! * [`MtbEngine`] — §IV-C Theorem 2 + §IV-D: objects grouped into
//!   time-bucket TPR-trees ([`MtbTree`]), per-bucket windows
//!   `[t_c, t_eb + T_M]`, improvement techniques on the initial join —
//!   the paper's full proposal.
//!
//! [`ResultBuffer`] holds the continuously-maintained answer (the paper
//! assumes it fits in main memory, §II-A), and [`window`] carries the
//! §V discussion: TC processing grafted onto continuous window queries.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod engine;
pub mod knn;
mod mtb;
mod result;
pub mod sim;
pub mod window;

pub use engine::{
    publish_engine_totals, BxEngine, ContinuousJoinEngine, EngineConfig, EngineConfigBuilder,
    EtpEngine, MtbEngine, NaiveEngine, TcEngine,
};
pub use mtb::MtbTree;
pub use result::{PairKey, PairStatus, ResultBuffer};
pub use sim::{run_simulation, SimMetrics};
