//! Counter conservation: the unified [`MetricsSnapshot`] must agree
//! **bit-exactly** with the legacy per-subsystem stats the engines have
//! always reported — `counters()` (traversal work), `node_cache_snapshot()`
//! (decoded-node cache), and `pool().stats()` (buffer-pool I/O). The
//! metrics layer is a second window onto the same atomics, never a
//! second bookkeeping path that can drift.
//!
//! Covers every engine at 1 and 4 join threads (the shard-K axis of the
//! same guarantee lives in `crates/shard/tests/metrics_conservation.rs`),
//! plus the disabled path: an engine built without `metrics` must hand
//! out a registry whose snapshot is empty.

use std::sync::Arc;

use cij_core::{
    BxEngine, ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, TcEngine,
};
use cij_geom::Time;
use cij_obs::validate_prometheus;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(256),
    )
}

fn params(seed: u64) -> Params {
    Params {
        dataset_size: 120,
        distribution: Distribution::Uniform,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

const ENGINES: [&str; 5] = ["naive", "tc", "etp", "mtb", "bx"];

fn build(kind: &str, config: EngineConfig, p: &Params) -> Box<dyn ContinuousJoinEngine> {
    let (a, b) = generate_pair(p, 0.0);
    let pool = pool();
    match kind {
        "naive" => Box::new(NaiveEngine::new(pool, config, &a, &b, 0.0).expect("naive")),
        "tc" => Box::new(TcEngine::new(pool, config, &a, &b, 0.0).expect("tc")),
        "etp" => Box::new(EtpEngine::new(pool, config, &a, &b, 0.0).expect("etp")),
        "mtb" => Box::new(MtbEngine::new(pool, config, &a, &b, 0.0).expect("mtb")),
        "bx" => {
            let bx = cij_bx::BxConfig {
                t_m: p.maximum_update_interval,
                space: p.space,
                max_speed: p.max_speed,
                max_extent: p.object_side(),
                ..Default::default()
            };
            Box::new(BxEngine::new(pool, config, bx, &a, &b, 0.0).expect("bx"))
        }
        other => panic!("unknown engine kind {other}"),
    }
}

fn drive(engine: &mut Box<dyn ContinuousJoinEngine>, p: &Params, ticks: u32) {
    let (a, b) = generate_pair(p, 0.0);
    let mut stream = UpdateStream::new(p, &a, &b, 0.0);
    engine.run_initial_join(0.0).expect("initial join");
    for tick in 1..=ticks {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        engine.advance_time(now).expect("advance");
        for u in &updates {
            engine.apply_update(u, now).expect("update");
        }
        engine.gc(now);
    }
}

#[test]
fn snapshot_totals_match_legacy_stats_bit_exactly() {
    let p = params(71);
    for kind in ENGINES {
        for threads in [1usize, 4] {
            let config = EngineConfig::builder()
                .threads(threads)
                .metrics(true)
                .node_cache_capacity(64)
                .build();
            let mut engine = build(kind, config, &p);
            drive(&mut engine, &p, 40);

            engine.publish_metrics();
            let snap = engine.metrics_registry().snapshot();
            let tag = format!("{kind} (threads={threads})");

            // Traversal counters.
            let counters = engine.counters();
            for (name, legacy) in [
                ("join.node_pairs", counters.node_pairs),
                ("join.entry_comparisons", counters.entry_comparisons),
                ("join.ic_pruned", counters.ic_pruned),
                ("join.pairs_emitted", counters.pairs_emitted),
            ] {
                assert_eq!(snap.counter(name), Some(legacy), "{tag}: {name} drifted");
            }

            // Decoded-node cache totals (bx has no TPR trees, no cache).
            if let Some(cache) = engine.node_cache_snapshot() {
                for (name, legacy) in [
                    ("engine.node_cache.hits", cache.hits),
                    ("engine.node_cache.misses", cache.misses),
                    ("engine.node_cache.insertions", cache.insertions),
                    ("engine.node_cache.evictions", cache.evictions),
                    ("engine.node_cache.invalidations", cache.invalidations),
                    ("engine.node_cache.stale_rejections", cache.stale_rejections),
                ] {
                    assert_eq!(snap.counter(name), Some(legacy), "{tag}: {name} drifted");
                }
                assert!(cache.hits > 0, "{tag}: cache saw no traffic");
            }

            // Buffer-pool I/O: registered live views over the same atomics.
            let io = engine.pool().stats().snapshot();
            for (name, legacy) in [
                ("storage.pool.physical_reads", io.physical_reads),
                ("storage.pool.physical_writes", io.physical_writes),
                ("storage.pool.logical_reads", io.logical_reads),
                ("storage.pool.logical_writes", io.logical_writes),
                ("storage.pool.allocations", io.allocations),
                ("storage.pool.frees", io.frees),
            ] {
                assert_eq!(snap.counter(name), Some(legacy), "{tag}: {name} drifted");
            }
            // Writes always reach the pool (the decoded cache is
            // write-through, so reads can be fully absorbed by it).
            assert!(io.logical_writes > 0, "{tag}: pool saw no writes");

            // The exposition of the same snapshot parses cleanly.
            let samples =
                validate_prometheus(&snap.to_prometheus()).unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert!(samples > 0, "{tag}: empty exposition");
        }
    }
}

#[test]
fn snapshot_names_are_sorted_and_stable_across_runs() {
    let p = params(72);
    let build_names = || {
        let config = EngineConfig::builder()
            .metrics(true)
            .node_cache_capacity(64)
            .build();
        let mut engine = build("mtb", config, &p);
        drive(&mut engine, &p, 20);
        engine.publish_metrics();
        let snap = engine.metrics_registry().snapshot();
        let names: Vec<String> = snap.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "counters are not name-sorted");
        names
    };
    assert_eq!(build_names(), build_names(), "metric name set is unstable");
}

#[test]
fn disabled_engines_expose_an_empty_registry() {
    let p = params(73);
    for kind in ENGINES {
        let config = EngineConfig::builder().node_cache_capacity(64).build();
        let mut engine = build(kind, config, &p);
        drive(&mut engine, &p, 10);
        engine.publish_metrics();
        let registry = engine.metrics_registry();
        assert!(!registry.is_enabled(), "{kind}: metrics default to off");
        assert!(
            registry.snapshot().is_empty(),
            "{kind}: disabled registry recorded something"
        );
    }
}
