//! Edge cases for the §V query monitors (`window.rs`, `knn.rs`): empty
//! trees, zero-extent (point) query windows, and query windows whose
//! reference time lies entirely in the future of the evaluated interval
//! (backward extrapolation).

use std::sync::Arc;

use cij_core::knn::ContinuousKnn;
use cij_core::window::{ContinuousWindowQueries, QueryId};
use cij_core::MtbTree;
use cij_geom::{MovingRect, Rect};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::{ObjectId, TprTree, TreeConfig};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(64),
    )
}

fn tree_with(objects: &[(u64, f64, f64, f64)]) -> TprTree {
    // (id, x, y, vx), unit squares.
    let mut tree = TprTree::new(pool(), TreeConfig::default());
    for &(id, x, y, vx) in objects {
        let mbr = MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, 0.0], 0.0);
        tree.insert(ObjectId(id), mbr, 0.0).unwrap();
    }
    tree
}

#[test]
fn window_queries_on_empty_tree() {
    let tree = TprTree::new(pool(), TreeConfig::default());
    let mut q = ContinuousWindowQueries::new(60.0);
    q.add_query(QueryId(0), Rect::new([0.0, 0.0], [100.0, 100.0]));
    q.initial_evaluate(&tree, 0.0).unwrap();
    assert!(q.result_at(QueryId(0), 0.0).is_empty());
    assert!(q.result_at(QueryId(0), 59.0).is_empty());

    // The MTB evaluation path must handle having no buckets at all.
    let mtb = MtbTree::new(pool(), TreeConfig::default(), 60.0);
    let mut q = ContinuousWindowQueries::new(60.0);
    q.add_query(QueryId(1), Rect::new([0.0, 0.0], [100.0, 100.0]));
    q.initial_evaluate_mtb(&mtb, 0.0).unwrap();
    assert!(q.result_at(QueryId(1), 0.0).is_empty());
}

#[test]
fn knn_on_empty_tree() {
    let tree = TprTree::new(pool(), TreeConfig::default());
    let mut knn = ContinuousKnn::new(60.0, 3.0);
    knn.add_query(QueryId(0), [50.0, 50.0], 2);
    knn.refresh(&tree, 0.0).unwrap();
    assert!(knn.result_at(QueryId(0), 0.0).is_empty());
}

#[test]
fn knn_with_fewer_objects_than_k() {
    let tree = tree_with(&[(1, 10.0, 10.0, 0.0)]);
    let mut knn = ContinuousKnn::new(60.0, 3.0);
    knn.add_query(QueryId(0), [0.0, 0.0], 5);
    knn.refresh(&tree, 0.0).unwrap();
    let result = knn.result_at(QueryId(0), 0.0);
    assert_eq!(result.len(), 1, "k capped by the population");
    assert_eq!(result[0].0, ObjectId(1));
}

#[test]
fn zero_extent_window_is_a_point_query() {
    // Object 1 covers the point, object 2 does not, object 3 sweeps
    // through it later.
    let tree = tree_with(&[(1, 5.0, 5.0, 0.0), (2, 20.0, 20.0, 0.0), (3, 0.0, 5.0, 1.0)]);
    let mut q = ContinuousWindowQueries::new(60.0);
    q.add_query(QueryId(0), Rect::new([5.5, 5.5], [5.5, 5.5]));
    q.initial_evaluate(&tree, 0.0).unwrap();
    assert_eq!(q.result_at(QueryId(0), 0.0), vec![ObjectId(1)]);
    // Object 3's square [t, t+1]×[5,6] covers x=5.5 around t≈5.
    let at5 = q.result_at(QueryId(0), 5.0);
    assert!(
        at5.contains(&ObjectId(3)),
        "sweeping object enters the point"
    );
    assert!(!q.result_at(QueryId(0), 30.0).contains(&ObjectId(3)));
}

#[test]
fn zero_extent_knn_point_on_object() {
    // The query point sits inside object 1: its min-distance is zero and
    // it must rank first with distance 0.
    let tree = tree_with(&[(1, 5.0, 5.0, 0.0), (2, 50.0, 50.0, 0.0)]);
    let mut knn = ContinuousKnn::new(60.0, 3.0);
    knn.add_query(QueryId(0), [5.5, 5.5], 2);
    knn.refresh(&tree, 0.0).unwrap();
    let result = knn.result_at(QueryId(0), 0.0);
    assert_eq!(result.len(), 2);
    assert_eq!(result[0], (ObjectId(1), 0.0));
    assert!(result[1].1 > 0.0);
}

#[test]
fn moving_window_with_t_ref_after_the_evaluated_interval() {
    // The query window's reference time is t=100; every evaluated
    // instant lies strictly in its past, so results come from backward
    // extrapolation: at t=0 the window [200,210]×[0,10] moving at
    // vx=+2 was back at [0,10]×[0,10].
    let tree = tree_with(&[(1, 5.0, 5.0, 0.0)]);
    let mut q = ContinuousWindowQueries::new(60.0);
    q.add_moving_query(
        QueryId(0),
        MovingRect::rigid(Rect::new([200.0, 0.0], [210.0, 10.0]), [2.0, 0.0], 100.0),
    );
    q.initial_evaluate(&tree, 0.0).unwrap();
    assert_eq!(
        q.result_at(QueryId(0), 0.0),
        vec![ObjectId(1)],
        "backward-extrapolated window covers the object at t=0"
    );
    // By t=10 the window has slid to [20,30] and left the object behind.
    assert!(q.result_at(QueryId(0), 10.0).is_empty());
}

#[test]
fn past_window_agrees_between_tpr_and_mtb_paths() {
    let objects: &[(u64, f64, f64, f64)] = &[
        (1, 5.0, 5.0, 0.0),
        (2, 30.0, 5.0, -1.0),
        (3, 400.0, 400.0, 0.5),
    ];
    let tree = tree_with(objects);
    let mut mtb = MtbTree::new(pool(), TreeConfig::default(), 60.0);
    for &(id, x, y, vx) in objects {
        let mbr = MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [vx, 0.0], 0.0);
        mtb.insert(ObjectId(id), mbr, 0.0, 0.0).unwrap();
    }
    let window = MovingRect::rigid(Rect::new([120.0, 0.0], [140.0, 20.0]), [2.0, 0.0], 60.0);
    let mut via_tree = ContinuousWindowQueries::new(60.0);
    let mut via_mtb = ContinuousWindowQueries::new(60.0);
    via_tree.add_moving_query(QueryId(0), window);
    via_mtb.add_moving_query(QueryId(0), window);
    via_tree.initial_evaluate(&tree, 0.0).unwrap();
    via_mtb.initial_evaluate_mtb(&mtb, 0.0).unwrap();
    for t in [0.0, 15.0, 30.0, 59.0] {
        assert_eq!(
            via_tree.result_at(QueryId(0), t),
            via_mtb.result_at(QueryId(0), t),
            "paths disagree at t={t}"
        );
    }
}
