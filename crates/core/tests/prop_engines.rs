//! Property tests at the engine level: arbitrary small workloads,
//! arbitrary engine configuration knobs — the continuous answer must
//! equal the brute-force oracle at every tick. Plus failure-path checks.

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, TcEngine};
use cij_geom::Time;
use cij_join::{brute, techniques};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::TprError;
use cij_workload::{generate_pair, Distribution, Params, SetTag, UpdateStream};
use proptest::prelude::*;

fn pool(cap: usize) -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(cap),
    )
}

fn arb_params() -> impl Strategy<Value = Params> {
    (
        20usize..80,
        prop_oneof![
            Just(Distribution::Uniform),
            Just(Distribution::Gaussian),
            Just(Distribution::Battlefield)
        ],
        1.0f64..5.0,
        0.5f64..3.0,
        any::<u64>(),
    )
        .prop_map(|(n, distribution, max_speed, size_pct, seed)| Params {
            dataset_size: n,
            distribution,
            max_speed,
            object_size_pct: size_pct,
            space: 150.0,
            seed,
            ..Params::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MTB (arbitrary bucket count, arbitrary pool size) tracks the
    /// oracle through a multi-T_M run.
    #[test]
    fn mtb_tracks_oracle(
        params in arb_params(),
        buckets in 1u32..5,
        pool_cap in prop_oneof![Just(2usize), Just(16), Just(64)],
    ) {
        let (a, b) = generate_pair(&params, 0.0);
        let config = EngineConfig { buckets_per_tm: buckets, ..Default::default() };
        let mut engine = MtbEngine::new(pool(pool_cap), config, &a, &b, 0.0).unwrap();
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        engine.run_initial_join(0.0).unwrap();
        for tick in 1..=75u32 {
            let now = Time::from(tick);
            for u in stream.tick(now) {
                engine.apply_update(&u, now).unwrap();
            }
            if tick % 5 == 0 {
                let expect = brute::brute_pairs_at(
                    &stream.snapshot(SetTag::A),
                    &stream.snapshot(SetTag::B),
                    now,
                );
                prop_assert_eq!(engine.result_at(now), expect, "t={}", now);
            }
        }
    }

    /// TC engine under arbitrary technique combinations tracks the
    /// oracle too (techniques must never change answers).
    #[test]
    fn tc_tracks_oracle_any_techniques(
        params in arb_params(),
        tech in prop_oneof![
            Just(techniques::NONE),
            Just(techniques::IC),
            Just(techniques::PS),
            Just(techniques::ALL)
        ],
    ) {
        let (a, b) = generate_pair(&params, 0.0);
        let config = EngineConfig { techniques: tech, ..Default::default() };
        let mut engine = TcEngine::new(pool(32), config, &a, &b, 0.0).unwrap();
        let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
        engine.run_initial_join(0.0).unwrap();
        for tick in 1..=40u32 {
            let now = Time::from(tick);
            for u in stream.tick(now) {
                engine.apply_update(&u, now).unwrap();
            }
            if tick % 8 == 0 {
                let expect = brute::brute_pairs_at(
                    &stream.snapshot(SetTag::A),
                    &stream.snapshot(SetTag::B),
                    now,
                );
                prop_assert_eq!(engine.result_at(now), expect, "t={}", now);
            }
        }
    }
}

#[test]
fn update_for_unknown_object_errors_cleanly() {
    let params = Params {
        dataset_size: 20,
        space: 100.0,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let mut engine = MtbEngine::new(pool(32), EngineConfig::default(), &a, &b, 0.0).unwrap();
    engine.run_initial_join(0.0).unwrap();

    // Forge an update for an object that was never inserted.
    let ghost = cij_workload::ObjectUpdate {
        id: cij_tpr::ObjectId(999_999),
        set: SetTag::A,
        old_mbr: a[0].mbr,
        last_update: 0.0,
        new_mbr: a[0].mbr,
    };
    let err = engine.apply_update(&ghost, 1.0).unwrap_err();
    assert!(matches!(err, TprError::ObjectNotFound(_)), "got {err:?}");
    // The engine is still usable afterwards.
    let real = cij_workload::ObjectUpdate {
        id: a[0].id,
        set: SetTag::A,
        old_mbr: a[0].mbr,
        last_update: 0.0,
        new_mbr: a[0].mbr.rebase(1.0),
    };
    engine.apply_update(&real, 1.0).unwrap();
    let _ = engine.result_at(1.0);
}

#[test]
fn etp_engine_single_object_sets() {
    // Degenerate cardinalities through the event machinery.
    let params = Params {
        dataset_size: 1,
        space: 50.0,
        object_size_pct: 4.0,
        ..Params::default()
    };
    let (a, b) = generate_pair(&params, 0.0);
    let mut engine = EtpEngine::new(pool(8), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    engine.run_initial_join(0.0).unwrap();
    for tick in 1..=70u32 {
        let now = Time::from(tick);
        engine.advance_time(now).unwrap();
        for u in stream.tick(now) {
            engine.apply_update(&u, now).unwrap();
        }
        let expect = brute::brute_pairs_at(
            &stream.snapshot(SetTag::A),
            &stream.snapshot(SetTag::B),
            now,
        );
        assert_eq!(engine.result_at(now), expect, "t={now}");
    }
}
