//! End-to-end engine correctness: every engine, run over a full
//! update-stream simulation, must report exactly the brute-force pairs at
//! every tick. This is the executable form of the paper's Theorems 1
//! (TC windows suffice) and 2 (per-bucket windows suffice).

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, TcEngine};
use cij_geom::Time;
use cij_join::brute;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::TprResult;
use cij_workload::{generate_pair, Distribution, Params, SetTag, UpdateStream};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(128),
    )
}

fn small_params(distribution: Distribution, seed: u64) -> Params {
    Params {
        dataset_size: 120,
        distribution,
        seed,
        // Small space so intersections actually happen at this size.
        space: 200.0,
        object_size_pct: 1.0, // side 2.0
        ..Params::default()
    }
}

/// Manual simulation loop with oracle checks (the sim driver's `on_tick`
/// cannot also borrow the stream, so the test drives the protocol
/// itself).
fn run_with_oracle<E: ContinuousJoinEngine>(
    engine: &mut E,
    params: &Params,
    ticks: u32,
) -> TprResult<()> {
    let (a, b) = generate_pair(params, 0.0);
    let mut stream = UpdateStream::new(params, &a, &b, 0.0);

    engine.run_initial_join(0.0)?;
    compare(engine, &stream, 0.0);

    for tick in 1..=ticks {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        engine.advance_time(now)?;
        for u in &updates {
            engine.apply_update(u, now)?;
        }
        compare(engine, &stream, now);
    }
    Ok(())
}

fn compare<E: ContinuousJoinEngine>(engine: &E, stream: &UpdateStream, now: Time) {
    let snap_a = stream.snapshot(SetTag::A);
    let snap_b = stream.snapshot(SetTag::B);
    let expect = brute::brute_pairs_at(&snap_a, &snap_b, now);
    let got = engine.result_at(now);
    assert_eq!(
        got,
        expect,
        "{} diverged from oracle at t={now}: {} vs {} pairs",
        engine.name(),
        got.len(),
        expect.len()
    );
}

#[test]
fn naive_engine_matches_oracle() {
    let params = small_params(Distribution::Uniform, 101);
    let (a, b) = generate_pair(&params, 0.0);
    let mut e = NaiveEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 130).unwrap();
}

#[test]
fn tc_engine_matches_oracle() {
    // 130 ticks > 2 × T_M: exercises re-registration windows end to end.
    let params = small_params(Distribution::Uniform, 102);
    let (a, b) = generate_pair(&params, 0.0);
    let mut e = TcEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 130).unwrap();
}

#[test]
fn tc_engine_without_techniques_matches_oracle() {
    let params = small_params(Distribution::Uniform, 103);
    let (a, b) = generate_pair(&params, 0.0);
    let config = EngineConfig {
        techniques: cij_join::techniques::NONE,
        ..Default::default()
    };
    let mut e = TcEngine::new(pool(), config, &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 70).unwrap();
}

#[test]
fn etp_engine_matches_oracle() {
    let params = small_params(Distribution::Uniform, 104);
    let (a, b) = generate_pair(&params, 0.0);
    let mut e = EtpEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 70).unwrap();
    assert!(e.reruns > 0, "ETP must have processed events");
}

#[test]
fn mtb_engine_matches_oracle() {
    let params = small_params(Distribution::Uniform, 105);
    let (a, b) = generate_pair(&params, 0.0);
    let mut e = MtbEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 130).unwrap();
    // After >T_M ticks the MTB must have rotated buckets.
    assert!(e.mtb_a().bucket_count() >= 1 && e.mtb_a().bucket_count() <= 3);
    e.mtb_a().validate(130.0).unwrap();
    e.mtb_b().validate(130.0).unwrap();
}

#[test]
fn mtb_engine_matches_oracle_gaussian() {
    let params = small_params(Distribution::Gaussian, 106);
    let (a, b) = generate_pair(&params, 0.0);
    let mut e = MtbEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 70).unwrap();
}

#[test]
fn mtb_engine_matches_oracle_battlefield() {
    let params = small_params(Distribution::Battlefield, 107);
    let (a, b) = generate_pair(&params, 0.0);
    let mut e = MtbEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 70).unwrap();
}

#[test]
fn mtb_engine_with_more_buckets_matches_oracle() {
    let params = small_params(Distribution::Uniform, 108);
    let (a, b) = generate_pair(&params, 0.0);
    let config = EngineConfig {
        buckets_per_tm: 4,
        ..Default::default()
    };
    let mut e = MtbEngine::new(pool(), config, &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 70).unwrap();
}

#[test]
fn all_engines_agree_with_each_other() {
    let params = small_params(Distribution::Uniform, 109);
    let (a, b) = generate_pair(&params, 0.0);
    let mut naive = NaiveEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut tc = TcEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut etp = EtpEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut mtb = MtbEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();

    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    naive.run_initial_join(0.0).unwrap();
    tc.run_initial_join(0.0).unwrap();
    etp.run_initial_join(0.0).unwrap();
    mtb.run_initial_join(0.0).unwrap();

    for tick in 1..=70 {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        for e in [
            &mut naive as &mut dyn ContinuousJoinEngine,
            &mut tc,
            &mut etp,
            &mut mtb,
        ] {
            e.advance_time(now).unwrap();
            for u in &updates {
                e.apply_update(u, now).unwrap();
            }
        }
        let r_naive = naive.result_at(now);
        assert_eq!(r_naive, tc.result_at(now), "naive vs tc at t={now}");
        assert_eq!(r_naive, etp.result_at(now), "naive vs etp at t={now}");
        assert_eq!(r_naive, mtb.result_at(now), "naive vs mtb at t={now}");
    }
}

// ----------------------------------------------------------------------
// Differential determinism: `threads > 1` must be bit-identical to the
// sequential engine — same result set at every tick of a continuous run
// and the same traversal counters (`pairs_emitted` included) — for every
// workload distribution.
// ----------------------------------------------------------------------

/// A pool for the parallel engines: lock-striped, so the differential
/// runs exercise the sharded buffer pool under real thread interleaving.
fn sharded_pool(shards: usize) -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(128, shards),
    )
}

/// Runs one engine per thread count `{1, 2, 4, 8}` in lockstep over the
/// same update stream — initial join plus `ticks` maintenance ticks —
/// asserting after every step that each parallel engine reports exactly
/// the sequential result set, and at the end that the counters
/// (`pairs_emitted` among them) are identical.
fn assert_threads_equivalent(
    params: &Params,
    a: &[cij_workload::MovingObject],
    b: &[cij_workload::MovingObject],
    ticks: u32,
    make: impl Fn(usize) -> Box<dyn ContinuousJoinEngine>,
) {
    let thread_counts = [1usize, 2, 4, 8];
    let mut engines: Vec<Box<dyn ContinuousJoinEngine>> =
        thread_counts.iter().map(|&t| make(t)).collect();
    let mut stream = UpdateStream::new(params, a, b, 0.0);

    for e in &mut engines {
        e.run_initial_join(0.0).unwrap();
    }
    let seq_initial = engines[0].result_at(0.0);
    let seq_counters = engines[0].counters();
    for (e, &t) in engines.iter().zip(&thread_counts).skip(1) {
        assert_eq!(
            e.result_at(0.0),
            seq_initial,
            "initial join differs at threads={t}"
        );
        assert_eq!(
            e.counters(),
            seq_counters,
            "initial counters differ at threads={t}"
        );
    }

    for tick in 1..=ticks {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        for e in &mut engines {
            e.advance_time(now).unwrap();
            for u in &updates {
                e.apply_update(u, now).unwrap();
            }
        }
        let seq = engines[0].result_at(now);
        for (e, &t) in engines.iter().zip(&thread_counts).skip(1) {
            assert_eq!(
                e.result_at(now),
                seq,
                "results differ at threads={t}, t={now}"
            );
        }
    }
    let seq_counters = engines[0].counters();
    // Guard against a vacuous run: the workload must have produced pairs
    // at some point (battlefield starts with none at t = 0).
    assert!(
        seq_counters.pairs_emitted > 0,
        "workload never produced pairs"
    );
    for (e, &t) in engines.iter().zip(&thread_counts).skip(1) {
        assert_eq!(
            e.counters(),
            seq_counters,
            "final counters (incl. pairs_emitted) differ at threads={t}"
        );
    }
}

fn differential_for_distribution(distribution: Distribution, seed: u64) {
    let params = small_params(distribution, seed);
    let (a, b) = generate_pair(&params, 0.0);
    assert_threads_equivalent(&params, &a, &b, 60, |threads| {
        let config = EngineConfig {
            threads,
            ..Default::default()
        };
        Box::new(MtbEngine::new(sharded_pool(8), config, &a, &b, 0.0).unwrap())
    });
}

#[test]
fn mtb_parallel_threads_match_sequential_uniform() {
    differential_for_distribution(Distribution::Uniform, 201);
}

#[test]
fn mtb_parallel_threads_match_sequential_gaussian() {
    differential_for_distribution(Distribution::Gaussian, 202);
}

#[test]
fn mtb_parallel_threads_match_sequential_battlefield() {
    differential_for_distribution(Distribution::Battlefield, 203);
}

#[test]
fn tc_parallel_threads_match_sequential() {
    let params = small_params(Distribution::Uniform, 204);
    let (a, b) = generate_pair(&params, 0.0);
    assert_threads_equivalent(&params, &a, &b, 60, |threads| {
        let config = EngineConfig {
            threads,
            ..Default::default()
        };
        Box::new(TcEngine::new(sharded_pool(8), config, &a, &b, 0.0).unwrap())
    });
}

#[test]
fn naive_parallel_threads_match_sequential() {
    let params = small_params(Distribution::Uniform, 205);
    let (a, b) = generate_pair(&params, 0.0);
    assert_threads_equivalent(&params, &a, &b, 60, |threads| {
        let config = EngineConfig {
            threads,
            ..Default::default()
        };
        Box::new(NaiveEngine::new(sharded_pool(8), config, &a, &b, 0.0).unwrap())
    });
}

#[test]
fn sim_driver_collects_metrics() {
    let params = small_params(Distribution::Uniform, 110);
    let (a, b) = generate_pair(&params, 0.0);
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    let mut e = MtbEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let metrics =
        cij_core::run_simulation(&mut e, &mut stream, 0.0, 120.0, 60.0, |_, _| Ok(())).unwrap();
    assert!(metrics.initial_io > 0, "initial join must do I/O");
    assert!(metrics.maintenance_updates > 0);
    assert_eq!(metrics.measured_ticks, 60);
    assert!(metrics.io_per_update() >= 0.0);
}

#[test]
fn bx_engine_matches_oracle() {
    // TC processing is index-agnostic: the same protocol on the Bx-tree
    // substrate must track the oracle too.
    let params = small_params(Distribution::Uniform, 120);
    let (a, b) = generate_pair(&params, 0.0);
    let bx_config = cij_bx::BxConfig {
        t_m: params.maximum_update_interval,
        space: params.space,
        max_speed: params.max_speed,
        max_extent: params.object_side(),
        ..Default::default()
    };
    let mut e =
        cij_core::BxEngine::new(pool(), EngineConfig::default(), bx_config, &a, &b, 0.0).unwrap();
    run_with_oracle(&mut e, &params, 130).unwrap();
    e.bx_a().validate().unwrap();
}

#[test]
fn gc_keeps_answers_correct_and_memory_bounded() {
    // Pruning per tick must not change any answer, and the interval
    // count must stay bounded over a long run (no history accumulation).
    let params = small_params(Distribution::Uniform, 130);
    let (a, b) = generate_pair(&params, 0.0);
    let mut engine = MtbEngine::new(pool(), EngineConfig::default(), &a, &b, 0.0).unwrap();
    let mut stream = UpdateStream::new(&params, &a, &b, 0.0);
    engine.run_initial_join(0.0).unwrap();
    for tick in 1..=200u32 {
        let now = Time::from(tick);
        for u in stream.tick(now) {
            engine.apply_update(&u, now).unwrap();
        }
        engine.gc(now);
        if tick % 20 == 0 {
            let expect = brute::brute_pairs_at(
                &stream.snapshot(SetTag::A),
                &stream.snapshot(SetTag::B),
                now,
            );
            assert_eq!(engine.result_at(now), expect, "t={now}");
        }
    }
}
