//! Cache-transparency differential: every engine, run over the same
//! update stream with the decoded-node cache on and off (and with 1 and
//! 4 join threads), must report bit-identical results at every tick and
//! identical traversal counters at the end. The cache may change *how
//! fast* nodes are read — never *what* is read.

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, EtpEngine, MtbEngine, NaiveEngine, TcEngine};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::{generate_pair, Distribution, Params, UpdateStream};

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::with_capacity(128),
    )
}

fn params(seed: u64) -> Params {
    Params {
        dataset_size: 150,
        distribution: Distribution::Uniform,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

type BoxedEngine = Box<dyn ContinuousJoinEngine>;

const ENGINES: [&str; 4] = ["naive", "tc", "etp", "mtb"];

fn build(kind: &str, config: EngineConfig, p: &Params) -> BoxedEngine {
    let (a, b) = generate_pair(p, 0.0);
    let pool = pool();
    match kind {
        "naive" => Box::new(NaiveEngine::new(pool, config, &a, &b, 0.0).expect("naive")),
        "tc" => Box::new(TcEngine::new(pool, config, &a, &b, 0.0).expect("tc")),
        "etp" => Box::new(EtpEngine::new(pool, config, &a, &b, 0.0).expect("etp")),
        "mtb" => Box::new(MtbEngine::new(pool, config, &a, &b, 0.0).expect("mtb")),
        other => panic!("unknown engine kind {other}"),
    }
}

/// Runs `engine` over `ticks` simulation steps, collecting the reported
/// pair set at every tick.
fn run(
    engine: &mut BoxedEngine,
    p: &Params,
    ticks: u32,
) -> Vec<Vec<(cij_tpr::ObjectId, cij_tpr::ObjectId)>> {
    let (a, b) = generate_pair(p, 0.0);
    let mut stream = UpdateStream::new(p, &a, &b, 0.0);
    let mut results = Vec::new();
    engine.run_initial_join(0.0).expect("initial join");
    results.push(engine.result_at(0.0));
    for tick in 1..=ticks {
        let now = Time::from(tick);
        let updates = stream.tick(now);
        engine.advance_time(now).expect("advance");
        for u in &updates {
            engine.apply_update(u, now).expect("update");
        }
        engine.gc(now);
        results.push(engine.result_at(now));
    }
    results
}

#[test]
fn cached_engines_report_identical_results_and_counters() {
    let p = params(2024);
    for kind in ENGINES {
        for threads in [1usize, 4] {
            let plain_config = EngineConfig::builder().threads(threads).build();
            let cached_config = EngineConfig::builder()
                .threads(threads)
                .node_cache_capacity(64)
                .build();
            let mut plain = build(kind, plain_config, &p);
            let mut cached = build(kind, cached_config, &p);

            let plain_results = run(&mut plain, &p, 60);
            let cached_results = run(&mut cached, &p, 60);

            assert_eq!(
                plain_results, cached_results,
                "{kind} (threads={threads}): cache changed reported pairs"
            );
            assert_eq!(
                plain.counters(),
                cached.counters(),
                "{kind} (threads={threads}): cache changed traversal counters"
            );

            // The cache knob is actually live: plain engines report no
            // cache, cached engines report one that served real traffic.
            assert!(
                plain.node_cache_snapshot().is_none(),
                "{kind}: cache-off engine must report no cache stats"
            );
            let stats = cached
                .node_cache_snapshot()
                .unwrap_or_else(|| panic!("{kind}: cache-on engine must report cache stats"));
            assert!(
                stats.hits > 0,
                "{kind} (threads={threads}): cache never hit — knob not wired?"
            );
            assert!(
                stats.insertions > 0,
                "{kind} (threads={threads}): cache never filled"
            );
        }
    }
}

#[test]
fn mtb_cache_stats_aggregate_across_buckets() {
    let p = params(7);
    let config = EngineConfig::builder().node_cache_capacity(64).build();
    let mut engine = build("mtb", config, &p);
    run(&mut engine, &p, 90); // long enough for several bucket migrations
    let stats = engine.node_cache_snapshot().expect("cache stats");
    assert!(stats.hits > 0);
    // Bucket migrations delete from old trees and insert into new ones;
    // write-through installs and page frees must both have happened.
    assert!(stats.insertions > 0);
    assert!(
        stats.hit_rate().expect("traffic happened") > 0.0,
        "hit rate should be positive, got {stats:?}"
    );
}
