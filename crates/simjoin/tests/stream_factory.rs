//! The proximity engine behind the stream service.
//!
//! `proximity_stream_factory` plugs the ε-threshold join into
//! `StreamService` unchanged: these tests pin (1) that the emitted delta
//! stream replays to exactly the engine's `result_at` at every tick and
//! that both match the brute-force oracle bit-for-bit, and (2) that a
//! WAL crash/recovery cycle lands back on the oracle's timeline — the
//! factory is deterministic, so replaying the durable batches through a
//! factory-fresh engine reproduces the pre-crash proximity answer.

use std::collections::HashSet;
use std::path::PathBuf;

use cij_core::{ContinuousJoinEngine, EngineConfig, PairKey};
use cij_geom::Time;
use cij_simjoin::{proximity_stream_factory, BruteProximityEngine, ProximityConfig};
use cij_stream::{IngestOutcome, ResultDelta, StreamConfig, StreamService};
use cij_workload::{generate_pair, Distribution, MovingObject, ObjectUpdate, Params, UpdateStream};

const EPS: f64 = 2.5;
const TICKS: u32 = 40;

fn small_params(seed: u64) -> Params {
    Params {
        dataset_size: 80,
        distribution: Distribution::Uniform,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

fn scheduled_updates(
    params: &Params,
    a: &[MovingObject],
    b: &[MovingObject],
    ticks: u32,
) -> Vec<(Time, Vec<ObjectUpdate>)> {
    let mut stream = UpdateStream::new(params, a, b, 0.0);
    (1..=ticks)
        .map(|tick| {
            let now = Time::from(tick);
            (now, stream.tick(now))
        })
        .collect()
}

/// The oracle's answer timeline over the same schedule.
fn oracle_timeline(
    eps: f64,
    a: &[MovingObject],
    b: &[MovingObject],
    schedule: &[(Time, Vec<ObjectUpdate>)],
) -> Vec<(Time, Vec<PairKey>)> {
    let mut oracle =
        BruteProximityEngine::new(ProximityConfig::new(EngineConfig::default(), eps), a, b);
    oracle.run_initial_join(0.0).unwrap();
    let mut out = Vec::with_capacity(schedule.len());
    for (now, updates) in schedule {
        for u in updates {
            oracle.apply_update(u, *now).unwrap();
        }
        oracle.gc(*now);
        out.push((*now, oracle.result_at(*now)));
    }
    out
}

fn replay_strict(set: &mut HashSet<PairKey>, delta: &ResultDelta, context: &str) {
    match delta {
        ResultDelta::PairAdded { pair, .. } => {
            assert!(set.insert(*pair), "duplicate PairAdded {pair:?} {context}");
        }
        ResultDelta::PairRemoved { pair } => {
            assert!(
                set.remove(pair),
                "PairRemoved for absent {pair:?} {context}"
            );
        }
    }
}

fn sorted(set: &HashSet<PairKey>) -> Vec<PairKey> {
    let mut v: Vec<PairKey> = set.iter().copied().collect();
    v.sort_unstable();
    v
}

#[test]
fn delta_stream_replays_to_oracle_answer_at_every_tick() {
    let params = small_params(601);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, TICKS);
    let expect = oracle_timeline(EPS, &a, &b, &schedule);

    let factory = proximity_stream_factory(EPS);
    let config = StreamConfig::builder()
        .batch_capacity(1 << 16)
        .outbox_capacity(1 << 16)
        .build();
    let mut svc = StreamService::new(config, &a, &b, 0.0, &factory).unwrap();

    let mut replayed: HashSet<PairKey> = HashSet::new();
    let mut saw_answer = false;
    for ((now, updates), (t_expect, pairs_expect)) in schedule.iter().zip(&expect) {
        assert_eq!(now, t_expect);
        for u in updates {
            assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
        }
        for d in svc.advance_to(*now).unwrap() {
            assert_eq!(d.at, *now, "delta stamped off-tick");
            replay_strict(&mut replayed, &d.delta, &format!("(t={now})"));
        }
        assert_eq!(
            &svc.result_at(*now),
            pairs_expect,
            "service answer diverges from oracle at t={now}"
        );
        assert_eq!(
            &sorted(&replayed),
            pairs_expect,
            "replayed deltas diverge from oracle at t={now}"
        );
        saw_answer |= !pairs_expect.is_empty();
    }
    assert!(saw_answer, "oracle answer always empty — vacuous test");
}

/// A WAL path in the system temp dir, removed on drop.
struct TempWal(PathBuf);

impl TempWal {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("cij-simjoin-{tag}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempWal {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn wal_crash_recovery_reconverges_with_the_oracle() {
    let params = small_params(602);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, TICKS);
    let expect = oracle_timeline(EPS, &a, &b, &schedule);

    let wal = TempWal::new("kill-recover");
    let factory = proximity_stream_factory(EPS);
    let config = StreamConfig::builder()
        .batch_capacity(1 << 16)
        .outbox_capacity(1 << 16)
        .wal_path(wal.0.clone())
        .build();

    // First life: run the whole schedule (already oracle-checked above;
    // here the WAL is the point).
    let mut svc = StreamService::new(config.clone(), &a, &b, 0.0, &factory).unwrap();
    for (now, updates) in &schedule {
        for u in updates {
            assert_eq!(svc.submit(*u, *now), IngestOutcome::Accepted);
        }
        svc.advance_to(*now).unwrap();
    }
    let journaled: Vec<Time> = schedule
        .iter()
        .filter(|(_, ups)| !ups.is_empty())
        .map(|(t, _)| *t)
        .collect();
    assert!(journaled.len() >= 3, "workload too sparse for a crash test");
    drop(svc); // crash

    // Tear the log mid-record.
    let len = std::fs::metadata(&wal.0).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal.0)
        .unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    // Second life: the recovered proximity answer is the oracle's at the
    // last durable tick …
    let (mut recovered, report) = StreamService::recover(config, &factory).unwrap();
    assert!(report.tail_truncated, "the torn tail must be detected");
    let last_durable = journaled[journaled.len() - 2];
    assert_eq!(report.last_tick, last_durable);
    assert_eq!(recovered.now(), last_durable);
    let expect_at = |t: Time| &expect.iter().find(|(tt, _)| *tt == t).unwrap().1;
    assert_eq!(&recovered.result_at(last_durable), expect_at(last_durable));

    // … and resubmitting the lost tail re-converges with the oracle
    // tick for tick.
    for (now, updates) in schedule.iter().filter(|(t, _)| *t > last_durable) {
        for u in updates {
            assert_eq!(recovered.submit(*u, *now), IngestOutcome::Accepted);
        }
        recovered.advance_to(*now).unwrap();
        assert_eq!(
            &recovered.result_at(*now),
            expect_at(*now),
            "recovered timeline diverges from oracle at t={now}"
        );
    }
}
