//! Property-based differential: the proximity engine vs the exhaustive
//! oracle over randomized workloads and thresholds.
//!
//! Velocities, extents and ε are drawn from bounded (NaN/inf-free)
//! ranges; one generator additionally **forces inflation-boundary ties**
//! — static pairs whose minimum distance is *exactly* ε (the gap and the
//! threshold are the same float) — pinning the closed-predicate
//! convention `dist ≤ ε` through candidate generation *and* refine.

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, PairKey, PairStatus};
use cij_geom::{MovingRect, Rect, Time};
use cij_simjoin::{BruteProximityEngine, ProximityConfig, ProximityJoinEngine};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::ObjectId;
use cij_workload::{MovingObject, ObjectUpdate, SetTag};
use proptest::prelude::*;

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(64, 4),
    )
}

/// One random trajectory: bounded position, extent and velocity.
fn arb_mbr() -> impl Strategy<Value = MovingRect> {
    (
        0.0f64..180.0,
        0.0f64..180.0,
        0.1f64..4.0,
        0.1f64..4.0,
        -3.0f64..3.0,
        -3.0f64..3.0,
    )
        .prop_map(|(x, y, w, h, vx, vy)| {
            MovingRect::rigid(Rect::new([x, y], [x + w, y + h]), [vx, vy], 0.0)
        })
}

fn side(ids_from: u64, mbrs: Vec<MovingRect>) -> Vec<MovingObject> {
    mbrs.into_iter()
        .enumerate()
        .map(|(i, mbr)| MovingObject {
            id: ObjectId(ids_from + i as u64),
            mbr,
        })
        .collect()
}

/// A randomized update: re-register object `idx` (A or B side) with a
/// fresh trajectory at the given tick.
type RawUpdate = (bool, usize, MovingRect);

fn arb_updates(n_per_side: usize) -> impl Strategy<Value = Vec<(Time, RawUpdate)>> {
    proptest::collection::vec((any::<bool>(), 0..n_per_side, arb_mbr(), 1u32..20), 0..24).prop_map(
        |v| {
            let mut out: Vec<(Time, RawUpdate)> = v
                .into_iter()
                .map(|(is_a, idx, mbr, tick)| (Time::from(tick), (is_a, idx, mbr)))
                .collect();
            out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            out
        },
    )
}

/// Snapshot both engines after every event and require bit-identical
/// pair sets and `PairStatus` floats.
fn check_differential(
    eps: f64,
    set_a: &[MovingObject],
    set_b: &[MovingObject],
    updates: &[(Time, RawUpdate)],
) {
    let config = ProximityConfig::new(EngineConfig::default(), eps);
    let mut engine = ProximityJoinEngine::new(pool(), config, set_a, set_b, 0.0).unwrap();
    let mut oracle = BruteProximityEngine::new(config, set_a, set_b);
    engine.run_initial_join(0.0).unwrap();
    oracle.run_initial_join(0.0).unwrap();

    // Track each object's current registration so updates carry the
    // correct old_mbr/last_update (the engine locates tree entries by
    // their registered trajectory).
    let mut reg: Vec<(MovingRect, Time)> =
        set_a.iter().chain(set_b).map(|o| (o.mbr, 0.0)).collect();
    let n = set_a.len();

    let compare = |engine: &ProximityJoinEngine, oracle: &BruteProximityEngine, t: Time| {
        let got = engine.result_at(t);
        let expect = oracle.result_at(t);
        assert_eq!(&got, &expect, "pair sets diverge at t={t}");
        for p in got {
            let gs: PairStatus = engine.pair_status_at(p, t);
            let es: PairStatus = oracle.pair_status_at(p, t);
            assert_eq!(gs, es, "status of {p:?} diverges at t={t}");
        }
    };
    compare(&engine, &oracle, 0.0);

    for (now, (is_a, idx, new_mbr)) in updates {
        let (slot, set, id) = if *is_a {
            (*idx, SetTag::A, set_a[*idx].id)
        } else {
            (n + *idx, SetTag::B, set_b[*idx].id)
        };
        let (old_mbr, last_update) = reg[slot];
        // Re-anchor the fresh trajectory at the update instant.
        let mut mbr = *new_mbr;
        mbr.t_ref = *now;
        let u = ObjectUpdate {
            id,
            set,
            old_mbr,
            last_update,
            new_mbr: mbr,
        };
        engine.apply_update(&u, *now).unwrap();
        oracle.apply_update(&u, *now).unwrap();
        engine.gc(*now);
        oracle.gc(*now);
        reg[slot] = (mbr, *now);
        compare(&engine, &oracle, *now);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random workload × random ε: engine == oracle at every event.
    #[test]
    fn random_eps_differential(
        eps in 0.0f64..40.0,
        mbrs_a in proptest::collection::vec(arb_mbr(), 6..14),
        mbrs_b in proptest::collection::vec(arb_mbr(), 6..14),
        updates in arb_updates(6),
    ) {
        let set_a = side(1, mbrs_a);
        let set_b = side(1001, mbrs_b);
        check_differential(eps, &set_a, &set_b, &updates);
    }

    /// Forced boundary ties: a static A/B pair whose gap *is* ε
    /// bit-for-bit, plus random bystanders. The tied pair must be
    /// reported (closed predicate), identically by engine and oracle.
    #[test]
    fn boundary_tie_at_exactly_eps_is_reported(
        eps in 0.25f64..8.0,
        x in 0.0f64..100.0,
        y in 0.0f64..100.0,
        mbrs_b in proptest::collection::vec(arb_mbr(), 2..6),
    ) {
        // A at [x, x+1]×[y, y+1]; B starts ~eps to the right of A's hi
        // edge, same y band. `x + 1.0 + eps` rounds, so the *threshold*
        // is taken as the representable gap `bx - a_hi` — exactly the
        // float the refine's per-axis subtraction reproduces. Per-axis
        // gaps are then (ε, 0) bit-for-bit and dist² == ε².
        let a_hi = x + 1.0;
        let a_rect = MovingRect::rigid(Rect::new([x, y], [a_hi, y + 1.0]), [0.0, 0.0], 0.0);
        let bx = a_hi + eps;
        let eps_tie = bx - a_hi;
        prop_assert!(eps_tie > 0.0);
        let b_rect = MovingRect::rigid(Rect::new([bx, y], [bx + 1.0, y + 1.0]), [0.0, 0.0], 0.0);
        let set_a = side(1, vec![a_rect]);
        let mut bs = vec![b_rect];
        bs.extend(mbrs_b);
        let set_b = side(1001, bs);

        check_differential(eps_tie, &set_a, &set_b, &[]);

        // And explicitly: the tie is in the answer for the whole window.
        let config = ProximityConfig::new(EngineConfig::default(), eps_tie);
        let mut engine = ProximityJoinEngine::new(pool(), config, &set_a, &set_b, 0.0).unwrap();
        engine.run_initial_join(0.0).unwrap();
        let tied: PairKey = (ObjectId(1), ObjectId(1001));
        prop_assert!(
            engine.result_at(0.0).contains(&tied),
            "distance-exactly-eps pair dropped (eps={})", eps_tie
        );
        let status = engine.pair_status_at(tied, 0.0);
        let iv = status.active.expect("tied pair has an active interval");
        prop_assert_eq!(iv.start, 0.0);
        prop_assert_eq!(iv.end, EngineConfig::default().t_m);
    }

    /// Just past the tie the pair must vanish: nudge the gap one step
    /// wider than ε and require absence (the predicate is ≤, not <, and
    /// inflation must not over-report after refine).
    #[test]
    fn just_beyond_eps_is_rejected(
        eps in 0.25f64..8.0,
        x in 0.0f64..100.0,
        y in 0.0f64..100.0,
    ) {
        let gap = eps + 1e-6;
        let a_rect = MovingRect::rigid(Rect::new([x, y], [x + 1.0, y + 1.0]), [0.0, 0.0], 0.0);
        let bx = x + 1.0 + gap;
        let b_rect = MovingRect::rigid(Rect::new([bx, y], [bx + 1.0, y + 1.0]), [0.0, 0.0], 0.0);
        let set_a = side(1, vec![a_rect]);
        let set_b = side(1001, vec![b_rect]);

        check_differential(eps, &set_a, &set_b, &[]);

        let config = ProximityConfig::new(EngineConfig::default(), eps);
        let mut engine = ProximityJoinEngine::new(pool(), config, &set_a, &set_b, 0.0).unwrap();
        engine.run_initial_join(0.0).unwrap();
        prop_assert!(
            engine.result_at(0.0).is_empty(),
            "pair beyond eps reported (eps={})", eps
        );
    }
}
