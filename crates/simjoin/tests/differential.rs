//! Oracle differential for the proximity join.
//!
//! The engine's contract is **bit-identical** agreement with the
//! brute-force oracle — not tolerance bands. Both sides refine with the
//! same `within_dist_sq_interval` primitive over the same window
//! `[now, now + T_M]`, so pair sets, stored intervals (observed through
//! `pair_status_at`) and activation times are exact-`assert_eq!`-equal
//! at every tick, for ε ∈ {0, small, large} × threads ∈ {1, 4}. The
//! parallel candidate sweep additionally reproduces the sequential
//! engine's answer *and traversal counters* bit-for-bit.
//!
//! A final test routes the same workload through the shard coordinator
//! (proximity engines behind `proximity_shard_factory`) and pins it to
//! the unsharded engine.

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig, PairKey, PairStatus};
use cij_geom::Time;
use cij_shard::{HashPolicy, PartitionPolicy, ShardCoordinator};
use cij_simjoin::{
    proximity_shard_factory, BruteProximityEngine, ProximityConfig, ProximityJoinEngine,
};
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_workload::{generate_pair, Distribution, MovingObject, ObjectUpdate, Params, UpdateStream};

const TICKS: u32 = 40;

fn small_params(seed: u64) -> Params {
    Params {
        dataset_size: 80,
        distribution: Distribution::Uniform,
        seed,
        space: 200.0,
        object_size_pct: 1.0,
        ..Params::default()
    }
}

fn pool() -> BufferPool {
    BufferPool::new(
        Arc::new(InMemoryStore::new()),
        BufferPoolConfig::sharded(128, 8),
    )
}

fn scheduled_updates(
    params: &Params,
    a: &[MovingObject],
    b: &[MovingObject],
    ticks: u32,
) -> Vec<(Time, Vec<ObjectUpdate>)> {
    let mut stream = UpdateStream::new(params, a, b, 0.0);
    (1..=ticks)
        .map(|tick| {
            let now = Time::from(tick);
            (now, stream.tick(now))
        })
        .collect()
}

/// One tick's observable answer: the active pairs and, for each, its
/// exact `PairStatus` (current interval + next activation) — the floats
/// the delta layer schedules on.
type Snapshot = (Time, Vec<(PairKey, PairStatus)>);

/// Drives any engine over the schedule, snapshotting after every tick.
fn drive(
    engine: &mut dyn ContinuousJoinEngine,
    schedule: &[(Time, Vec<ObjectUpdate>)],
) -> Vec<Snapshot> {
    engine.run_initial_join(0.0).unwrap();
    let mut out = Vec::with_capacity(schedule.len() + 1);
    let observe = |engine: &dyn ContinuousJoinEngine, t: Time| {
        let pairs = engine.result_at(t);
        (
            t,
            pairs
                .into_iter()
                .map(|p| (p, engine.pair_status_at(p, t)))
                .collect::<Vec<_>>(),
        )
    };
    out.push(observe(engine, 0.0));
    for (now, updates) in schedule {
        engine.advance_time(*now).unwrap();
        for u in updates {
            engine.apply_update(u, *now).unwrap();
        }
        engine.gc(*now);
        out.push(observe(engine, *now));
    }
    out
}

fn assert_snapshots_match(got: &[Snapshot], expect: &[Snapshot], context: &str) {
    assert_eq!(got.len(), expect.len());
    let mut nonempty = 0usize;
    for ((tg, pg), (te, pe)) in got.iter().zip(expect) {
        assert_eq!(tg, te);
        assert_eq!(pg, pe, "{context}: answers diverge at t={tg}");
        nonempty += usize::from(!pg.is_empty());
    }
    assert!(
        nonempty >= 3,
        "{context}: answer almost always empty — vacuous differential"
    );
}

/// Engine (threads 1 and 4) vs brute-force oracle on one workload: pair
/// sets and interval floats identical at every tick; the two engine runs
/// also agree on traversal counters and candidate/refine tallies.
fn differential_for(eps: f64, seed: u64) {
    let params = small_params(seed);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, TICKS);

    let mut oracle =
        BruteProximityEngine::new(ProximityConfig::new(EngineConfig::default(), eps), &a, &b);
    let expect = drive(&mut oracle, &schedule);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let config = ProximityConfig::new(EngineConfig::builder().threads(threads).build(), eps);
        let mut engine = ProximityJoinEngine::new(pool(), config, &a, &b, 0.0).unwrap();
        let got = drive(&mut engine, &schedule);
        assert_snapshots_match(&got, &expect, &format!("eps={eps} threads={threads}"));
        assert!(
            engine.candidates() >= engine.refine_rejects(),
            "rejects cannot exceed candidates"
        );
        runs.push((
            engine.counters(),
            engine.candidates(),
            engine.refine_rejects(),
        ));
    }
    assert_eq!(
        runs[0], runs[1],
        "eps={eps}: parallel run not bit-identical to sequential (counters/candidates)"
    );
}

#[test]
fn proximity_matches_oracle_at_eps_zero() {
    // ε = 0 degenerates to the plain intersection predicate.
    differential_for(0.0, 501);
}

#[test]
fn proximity_matches_oracle_at_small_eps() {
    // Comparable to an object side (2.0 in this parameterization).
    differential_for(2.5, 502);
}

#[test]
fn proximity_matches_oracle_at_large_eps() {
    // A sizeable fraction of the 200-unit space: dense answers, heavy
    // candidate traffic.
    differential_for(30.0, 503);
}

#[test]
fn refine_pass_actually_rejects_candidates() {
    // Sanity against silent refine-bypass: with a small ε the inflated
    // intersection join must over-approximate, so some candidates get
    // rejected — otherwise the differential above would also pass for a
    // candidates-only engine with an inflated answer.
    let params = small_params(504);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, TICKS);
    let config = ProximityConfig::new(EngineConfig::default(), 1.0);
    let mut engine = ProximityJoinEngine::new(pool(), config, &a, &b, 0.0).unwrap();
    drive(&mut engine, &schedule);
    assert!(engine.candidates() > 0, "no candidates generated");
    assert!(
        engine.refine_rejects() > 0,
        "refine never rejected — inflation is not over-approximating"
    );
}

#[test]
fn sharded_proximity_matches_unsharded() {
    let eps = 2.5;
    let params = small_params(505);
    let (a, b) = generate_pair(&params, 0.0);
    let schedule = scheduled_updates(&params, &a, &b, TICKS);

    let config = ProximityConfig::new(EngineConfig::default(), eps);
    let mut reference = ProximityJoinEngine::new(pool(), config, &a, &b, 0.0).unwrap();
    let expect = drive(&mut reference, &schedule);

    let policy = Arc::new(HashPolicy::new(3)) as Arc<dyn PartitionPolicy>;
    let factory = proximity_shard_factory(eps);
    let mut sharded = ShardCoordinator::new(
        pool(),
        EngineConfig::default(),
        policy,
        &a,
        &b,
        0.0,
        &factory,
    )
    .unwrap();
    let got = drive(&mut sharded, &schedule);
    assert_snapshots_match(&got, &expect, "sharded(k=3)");
}
