//! Engine factories that plug the proximity join into the stream service
//! and the shard coordinator.

use std::sync::Arc;

use cij_core::{ContinuousJoinEngine, EngineConfig};
use cij_geom::Time;
use cij_storage::{BufferPool, BufferPoolConfig, InMemoryStore};
use cij_tpr::TprResult;
use cij_workload::MovingObject;

use crate::{ProximityConfig, ProximityJoinEngine};

/// Buffer-pool shape used by the stream factory (matches the stream
/// suite's sharded in-memory pools; recovery rebuilds an identical pool,
/// so the factory stays deterministic).
const STREAM_POOL_PAGES: usize = 128;
const STREAM_POOL_SHARDS: usize = 8;

/// A `StreamService` engine factory for the proximity join.
///
/// Every call builds a private in-memory buffer pool and a fresh
/// [`ProximityJoinEngine`] with threshold `epsilon` — a pure function of
/// its arguments, which is what WAL recovery requires: replaying the
/// logged batches through a factory-fresh engine must reproduce the
/// pre-crash answer exactly.
///
/// ```no_run
/// # use cij_simjoin::proximity_stream_factory;
/// # use cij_stream::{StreamConfig, StreamService};
/// let factory = proximity_stream_factory(2.5);
/// let svc = StreamService::new(StreamConfig::default(), &[], &[], 0.0, &factory);
/// ```
pub fn proximity_stream_factory(
    epsilon: f64,
) -> impl Fn(
    &EngineConfig,
    &[MovingObject],
    &[MovingObject],
    Time,
) -> TprResult<Box<dyn ContinuousJoinEngine>> {
    move |config, set_a, set_b, now| {
        let pool = BufferPool::new(
            Arc::new(InMemoryStore::new()),
            BufferPoolConfig::sharded(STREAM_POOL_PAGES, STREAM_POOL_SHARDS),
        );
        let engine = ProximityJoinEngine::new(
            pool,
            ProximityConfig::new(*config, epsilon),
            set_a,
            set_b,
            now,
        )?;
        Ok(Box::new(engine) as Box<dyn ContinuousJoinEngine>)
    }
}

/// A shard-coordinator engine factory for the proximity join: the
/// coordinator hands each shard its pool slice and this builds the
/// shard-local proximity engine with threshold `epsilon`.
// The signature must spell out `cij_shard::ShardEngineFactory`'s shape
// (without depending on cij-shard), which trips the complexity lint.
#[allow(clippy::type_complexity)]
pub fn proximity_shard_factory(
    epsilon: f64,
) -> impl Fn(
    BufferPool,
    &EngineConfig,
    &[MovingObject],
    &[MovingObject],
    Time,
) -> TprResult<Box<dyn ContinuousJoinEngine + Send>> {
    move |pool, config, set_a, set_b, now| {
        let engine = ProximityJoinEngine::new(
            pool,
            ProximityConfig::new(*config, epsilon),
            set_a,
            set_b,
            now,
        )?;
        Ok(Box::new(engine) as Box<dyn ContinuousJoinEngine + Send>)
    }
}
